//! A stable, diff-friendly text form for [`Scenario`] scripts.
//!
//! The fuzzer's shrunk reproductions have to be readable in review and
//! replayable forever from the regression corpus, so a scenario
//! serializes to a line-based script ([`Scenario::to_script`]) and parses
//! back ([`Scenario::from_script`]):
//!
//! ```text
//! scenario storm-42
//! seed 42
//! backend lbm nx=12 ny=12 nz=12
//! sample_every 100ms
//! duration 3000ms
//! participant alice link=uk_janet
//! route alice visit
//! relay region parent=origin link=campus every=2
//! viewer desk link=wan via=visit budget=desktop-render every=1 relay=region
//! at 200ms loss bob 200000
//! at 500ms steer alice miscibility f64:0.3
//! ```
//!
//! Properties the corpus leans on:
//!
//! * **Stable** — serializing the same built scenario always yields the
//!   same bytes (declaration order in, declaration order out), and
//!   `to_script(from_script(s))` is a fixpoint.
//! * **Replayable** — a parsed scenario runs to the same report digest as
//!   the scenario it was serialized from (link *presets* are named, and
//!   the engine re-derives every per-link seed from the scenario seed, so
//!   nothing is lost in the text round trip).
//! * **Reviewable** — one declaration or action per line; times are
//!   plain `…ms`/`…ns`; `#` starts a comment.
//!
//! Names (participants, viewers, relays, params, sites) must be free of
//! whitespace — the generator only emits such names, and
//! [`Scenario::to_script`] panics on one that is not (a corpus file that
//! cannot parse back would be worse than a loud failure at shrink time).

use crate::scenario::{Action, BackendSpec, RelaySpec, Scenario, ViewerSpec};
use gridsteer_bus::Transport;
use lbm::LbmConfig;
use netsim::{Link, SimTime};
use pepc::PepcConfig;
use std::fmt;
use std::fmt::Write as _;
use steer_core::{LoopBudget, ParamValue};

/// A parse failure, pointing at the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ScriptError {}

fn err(line: usize, msg: impl Into<String>) -> ScriptError {
    ScriptError {
        line,
        msg: msg.into(),
    }
}

/// Render a time as `…ms` when whole milliseconds, `…ns` otherwise.
fn fmt_time(t: SimTime) -> String {
    let ns = t.as_nanos();
    if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else {
        format!("{ns}ns")
    }
}

fn parse_time(s: &str, line: usize) -> Result<SimTime, ScriptError> {
    let (digits, mul) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000u64)
    } else if let Some(d) = s.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        return Err(err(line, format!("time {s:?} needs a ns/us/ms/s suffix")));
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| err(line, format!("bad time value {s:?}")))?;
    Ok(SimTime::from_nanos(n.saturating_mul(mul)))
}

/// The named link presets the text form recognizes (seed excluded from
/// matching: the engine re-derives every per-link seed from the scenario
/// seed before use).
fn presets() -> [(&'static str, Link); 7] {
    [
        ("loopback", Link::loopback()),
        ("lan", Link::default()),
        ("campus", Link::campus()),
        ("uk_janet", Link::uk_janet()),
        ("gwin", Link::gwin()),
        ("wan", Link::wan()),
        ("transatlantic", Link::transatlantic()),
    ]
}

fn link_token(l: &Link) -> String {
    for (name, p) in presets() {
        if p.latency == l.latency
            && p.bandwidth_bps == l.bandwidth_bps
            && p.jitter == l.jitter
            && p.loss_ppm == l.loss_ppm
        {
            return name.to_string();
        }
    }
    format!(
        "custom:latency={},bw={},jitter={},loss={}",
        fmt_time(l.latency),
        l.bandwidth_bps,
        fmt_time(l.jitter),
        l.loss_ppm
    )
}

fn parse_link(tok: &str, line: usize) -> Result<Link, ScriptError> {
    for (name, p) in presets() {
        if tok == name {
            return Ok(p);
        }
    }
    let spec = tok
        .strip_prefix("custom:")
        .ok_or_else(|| err(line, format!("unknown link preset {tok:?}")))?;
    let mut b = Link::builder();
    for field in spec.split(',') {
        let (k, v) = field
            .split_once('=')
            .ok_or_else(|| err(line, format!("bad link field {field:?}")))?;
        b = match k {
            "latency" => b.latency(parse_time(v, line)?),
            "bw" => b.bandwidth_bps(
                v.parse()
                    .map_err(|_| err(line, format!("bad bandwidth {v:?}")))?,
            ),
            "jitter" => b.jitter(parse_time(v, line)?),
            "loss" => b.loss_ppm(
                v.parse()
                    .map_err(|_| err(line, format!("bad loss {v:?}")))?,
            ),
            _ => return Err(err(line, format!("unknown link field {k:?}"))),
        };
    }
    Ok(b.build())
}

fn parse_transport(tok: &str, line: usize) -> Result<Transport, ScriptError> {
    Transport::ALL
        .into_iter()
        .find(|t| t.label() == tok)
        .ok_or_else(|| err(line, format!("unknown transport {tok:?}")))
}

fn parse_budget(tok: &str, line: usize) -> Result<LoopBudget, ScriptError> {
    [
        LoopBudget::VrRender,
        LoopBudget::DesktopRender,
        LoopBudget::PostProcessing,
        LoopBudget::Simulation,
    ]
    .into_iter()
    .find(|b| b.name() == tok)
    .ok_or_else(|| err(line, format!("unknown budget {tok:?}")))
}

fn value_token(v: &ParamValue) -> String {
    match v {
        ParamValue::F64(x) => format!("f64:{x:?}"),
        ParamValue::I64(x) => format!("i64:{x}"),
        ParamValue::Bool(x) => format!("bool:{x}"),
        ParamValue::Vec3([a, b, c]) => format!("vec3:{a:?},{b:?},{c:?}"),
        ParamValue::Str(s) => format!("str:{s}"),
    }
}

fn parse_value(tok: &str, line: usize) -> Result<ParamValue, ScriptError> {
    let (kind, body) = tok
        .split_once(':')
        .ok_or_else(|| err(line, format!("steer value {tok:?} needs a kind: prefix")))?;
    let bad = |what: &str| err(line, format!("bad {what} value {body:?}"));
    match kind {
        "f64" => Ok(ParamValue::F64(body.parse().map_err(|_| bad("f64"))?)),
        "i64" => Ok(ParamValue::I64(body.parse().map_err(|_| bad("i64"))?)),
        "bool" => Ok(ParamValue::Bool(body.parse().map_err(|_| bad("bool"))?)),
        "vec3" => {
            let parts: Vec<&str> = body.split(',').collect();
            if parts.len() != 3 {
                return Err(bad("vec3"));
            }
            let mut v = [0.0f64; 3];
            for (slot, p) in v.iter_mut().zip(&parts) {
                *slot = p.parse().map_err(|_| bad("vec3"))?;
            }
            Ok(ParamValue::Vec3(v))
        }
        "str" => Ok(ParamValue::Str(body.to_string())),
        _ => Err(err(line, format!("unknown value kind {kind:?}"))),
    }
}

/// Whitespace in a name would shear the token stream apart on parse.
fn check_name(name: &str) {
    assert!(
        !name.is_empty() && !name.chars().any(|c| c.is_whitespace()),
        "script names must be non-empty and whitespace-free, got {name:?}"
    );
}

impl Scenario {
    /// Serialize to the stable text form. See the module docs for the
    /// grammar; [`Scenario::from_script`] parses it back. Panics if any
    /// name contains whitespace (unrepresentable).
    pub fn to_script(&self) -> String {
        let mut out = String::new();
        check_name(&self.name);
        let _ = writeln!(out, "scenario {}", self.name);
        let _ = writeln!(out, "seed {}", self.seed);
        match &self.backend {
            BackendSpec::Lbm(c) => {
                let _ = writeln!(out, "backend lbm nx={} ny={} nz={}", c.nx, c.ny, c.nz);
            }
            BackendSpec::Pepc(c) => {
                let _ = writeln!(out, "backend pepc n={} ranks={}", c.n_target, c.ranks);
            }
        }
        let _ = writeln!(out, "sample_every {}", fmt_time(self.sample_every));
        if self.steps_per_sample != 1 {
            let _ = writeln!(out, "steps_per_sample {}", self.steps_per_sample);
        }
        let _ = writeln!(out, "duration {}", fmt_time(self.duration));
        if self.shards != 1 {
            let _ = writeln!(out, "shards {}", self.shards);
        }
        if let Some(t) = self.checkpoint_every {
            let _ = writeln!(out, "checkpoint_every {}", fmt_time(t));
        }
        for (name, link) in &self.participants {
            check_name(name);
            let _ = writeln!(out, "participant {name} link={}", link_token(link));
        }
        // routes cover every transport assignment, including mid-run
        // joiners (BTreeMap ⇒ stable order)
        for (name, t) in &self.transports {
            check_name(name);
            let _ = writeln!(out, "route {name} {}", t.label());
        }
        for r in &self.relays {
            check_name(&r.name);
            let _ = write!(
                out,
                "relay {} parent={} link={} every={}",
                r.name,
                r.parent.as_deref().unwrap_or("origin"),
                link_token(&r.uplink),
                r.every
            );
            if let Some(b) = r.child_budget {
                let _ = write!(out, " child_budget={b}");
            }
            out.push('\n');
        }
        for v in &self.viewers {
            check_name(&v.name);
            let _ = write!(
                out,
                "viewer {} link={} via={} budget={} every={}",
                v.name,
                link_token(&v.link),
                v.transport.label(),
                v.budget.name(),
                v.every
            );
            if let Some(r) = &v.relay {
                let _ = write!(out, " relay={r}");
            }
            out.push('\n');
        }
        for (t, action) in &self.actions {
            let _ = write!(out, "at {} {}", fmt_time(*t), action.label());
            match action {
                Action::Join { name, link } => {
                    check_name(name);
                    let _ = write!(out, " {name} link={}", link_token(link));
                }
                Action::Leave { name } | Action::ViewerLeave { name } => {
                    check_name(name);
                    let _ = write!(out, " {name}");
                }
                Action::PassMaster { from, to } | Action::Migrate { from, to } => {
                    check_name(from);
                    check_name(to);
                    let _ = write!(out, " {from} {to}");
                }
                Action::Steer { who, param, value } => {
                    check_name(who);
                    check_name(param);
                    let _ = write!(out, " {who} {param} {}", value_token(value));
                }
                Action::Partition { who } | Action::Heal { who } => {
                    check_name(who);
                    let _ = write!(out, " {who}");
                }
                Action::SetLoss { who, ppm } => {
                    check_name(who);
                    let _ = write!(out, " {who} {ppm}");
                }
                Action::SetJitter { who, jitter } => {
                    check_name(who);
                    let _ = write!(out, " {who} {}", fmt_time(*jitter));
                }
                Action::ViewerJoin {
                    name,
                    link,
                    transport,
                    relay,
                } => {
                    check_name(name);
                    let _ = write!(
                        out,
                        " {name} link={} via={}",
                        link_token(link),
                        transport.label()
                    );
                    if let Some(r) = relay {
                        let _ = write!(out, " relay={r}");
                    }
                }
                Action::Crash | Action::Restore => {}
            }
            out.push('\n');
        }
        out
    }

    /// Parse the text form back into a builder-equivalent scenario.
    /// Blank lines and `#` comments are skipped, so corpus headers
    /// (`#!` metadata lines) pass through unharmed.
    pub fn from_script(text: &str) -> Result<Scenario, ScriptError> {
        let mut s = Scenario::named("scripted");
        for (i, raw) in text.lines().enumerate() {
            let lno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            let args = &toks[1..];
            let kv = |key: &str| -> Option<&str> {
                args.iter()
                    .find_map(|a| a.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
            };
            let need = |key: &str| -> Result<&str, ScriptError> {
                kv(key).ok_or_else(|| err(lno, format!("missing {key}= field")))
            };
            let pos = |idx: usize, what: &str| -> Result<&str, ScriptError> {
                args.get(idx)
                    .copied()
                    .ok_or_else(|| err(lno, format!("missing {what}")))
            };
            match toks[0] {
                "scenario" => s.name = pos(0, "name")?.to_string(),
                "seed" => {
                    s.seed = pos(0, "seed")?
                        .parse()
                        .map_err(|_| err(lno, "bad seed".to_string()))?;
                }
                "backend" => match pos(0, "backend kind")? {
                    "lbm" => {
                        let dim = |key: &str| -> Result<usize, ScriptError> {
                            need(key)?
                                .parse()
                                .map_err(|_| err(lno, format!("bad {key}")))
                        };
                        s.backend = BackendSpec::Lbm(LbmConfig {
                            nx: dim("nx")?,
                            ny: dim("ny")?,
                            nz: dim("nz")?,
                            ..Default::default()
                        });
                    }
                    "pepc" => {
                        s.backend = BackendSpec::Pepc(PepcConfig {
                            n_target: need("n")?
                                .parse()
                                .map_err(|_| err(lno, "bad n".to_string()))?,
                            ranks: need("ranks")?
                                .parse()
                                .map_err(|_| err(lno, "bad ranks".to_string()))?,
                            ..Default::default()
                        });
                    }
                    other => return Err(err(lno, format!("unknown backend {other:?}"))),
                },
                "sample_every" => s.sample_every = parse_time(pos(0, "interval")?, lno)?,
                "steps_per_sample" => {
                    s.steps_per_sample = pos(0, "count")?
                        .parse()
                        .map_err(|_| err(lno, "bad steps_per_sample".to_string()))?;
                }
                "duration" => s.duration = parse_time(pos(0, "duration")?, lno)?,
                "shards" => {
                    s.shards = pos(0, "count")?
                        .parse()
                        .map_err(|_| err(lno, "bad shards".to_string()))?;
                }
                "checkpoint_every" => {
                    s.checkpoint_every = Some(parse_time(pos(0, "interval")?, lno)?);
                }
                "participant" => {
                    let name = pos(0, "participant name")?.to_string();
                    let link = parse_link(need("link")?, lno)?;
                    s.participants.push((name, link));
                }
                "route" => {
                    let name = pos(0, "participant name")?.to_string();
                    let t = parse_transport(pos(1, "transport")?, lno)?;
                    s.transports.insert(name, t);
                }
                "relay" => {
                    let parent = match need("parent")? {
                        "origin" => None,
                        p => Some(p.to_string()),
                    };
                    s.relays.push(RelaySpec {
                        name: pos(0, "relay name")?.to_string(),
                        parent,
                        uplink: parse_link(need("link")?, lno)?,
                        every: need("every")?
                            .parse()
                            .map_err(|_| err(lno, "bad every".to_string()))?,
                        child_budget: match kv("child_budget") {
                            None => None,
                            Some(v) => Some(
                                v.parse()
                                    .map_err(|_| err(lno, "bad child_budget".to_string()))?,
                            ),
                        },
                    });
                }
                "viewer" => {
                    s.viewers.push(ViewerSpec {
                        name: pos(0, "viewer name")?.to_string(),
                        link: parse_link(need("link")?, lno)?,
                        transport: parse_transport(need("via")?, lno)?,
                        budget: parse_budget(need("budget")?, lno)?,
                        every: need("every")?
                            .parse()
                            .map_err(|_| err(lno, "bad every".to_string()))?,
                        relay: kv("relay").map(str::to_string),
                    });
                }
                "at" => {
                    let t = parse_time(pos(0, "time")?, lno)?;
                    let body = &args[1..];
                    let bpos = |idx: usize, what: &str| -> Result<&str, ScriptError> {
                        body.get(idx)
                            .copied()
                            .ok_or_else(|| err(lno, format!("missing {what}")))
                    };
                    let bkv = |key: &str| -> Option<&str> {
                        body.iter()
                            .find_map(|a| a.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
                    };
                    let action = match pos(1, "action kind")? {
                        "join" => Action::Join {
                            name: bpos(1, "name")?.to_string(),
                            link: parse_link(
                                bkv("link").ok_or_else(|| err(lno, "missing link=".to_string()))?,
                                lno,
                            )?,
                        },
                        "leave" => Action::Leave {
                            name: bpos(1, "name")?.to_string(),
                        },
                        "pass" => Action::PassMaster {
                            from: bpos(1, "from")?.to_string(),
                            to: bpos(2, "to")?.to_string(),
                        },
                        "steer" => Action::Steer {
                            who: bpos(1, "sender")?.to_string(),
                            param: bpos(2, "param")?.to_string(),
                            value: parse_value(bpos(3, "value")?, lno)?,
                        },
                        "partition" => Action::Partition {
                            who: bpos(1, "target")?.to_string(),
                        },
                        "heal" => Action::Heal {
                            who: bpos(1, "target")?.to_string(),
                        },
                        "loss" => Action::SetLoss {
                            who: bpos(1, "target")?.to_string(),
                            ppm: bpos(2, "ppm")?
                                .parse()
                                .map_err(|_| err(lno, "bad ppm".to_string()))?,
                        },
                        "jitter" => Action::SetJitter {
                            who: bpos(1, "target")?.to_string(),
                            jitter: parse_time(bpos(2, "jitter")?, lno)?,
                        },
                        "migrate" => Action::Migrate {
                            from: bpos(1, "from")?.to_string(),
                            to: bpos(2, "to")?.to_string(),
                        },
                        "viewer-leave" => Action::ViewerLeave {
                            name: bpos(1, "name")?.to_string(),
                        },
                        "viewer-join" => Action::ViewerJoin {
                            name: bpos(1, "name")?.to_string(),
                            link: parse_link(
                                bkv("link").ok_or_else(|| err(lno, "missing link=".to_string()))?,
                                lno,
                            )?,
                            transport: parse_transport(
                                bkv("via").ok_or_else(|| err(lno, "missing via=".to_string()))?,
                                lno,
                            )?,
                            relay: bkv("relay").map(str::to_string),
                        },
                        "crash" => Action::Crash,
                        "restore" => Action::Restore,
                        other => return Err(err(lno, format!("unknown action {other:?}"))),
                    };
                    s.actions.push((t, action));
                }
                other => return Err(err(lno, format!("unknown directive {other:?}"))),
            }
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich() -> Scenario {
        Scenario::named("script-rt")
            .seed(99)
            .shards(2)
            .sample_every(SimTime::from_millis(100))
            .duration(SimTime::from_millis(1500))
            .checkpoint_every(SimTime::from_millis(300))
            .participant("alice", Link::uk_janet())
            .participant_via("bob", Link::transatlantic(), Transport::Visit)
            .relay("region", Link::campus())
            .relay_under("edge", "region", Link::wan())
            .relay_every("region", 2)
            .relay_child_budget("edge", 4)
            .viewer_via("desk", Link::wan(), Transport::Ogsa)
            .viewer_at_relay("cave", "edge", Link::gwin(), Transport::Covise)
            .viewer_every("desk", 3)
            .join_at(SimTime::from_millis(150), "carol", Link::wan())
            .route("carol", Transport::Unicore)
            .steer_at(SimTime::from_millis(250), "alice", "miscibility", 0.35)
            .loss_at(SimTime::from_millis(300), "bob", 120_000)
            .jitter_at(
                SimTime::from_nanos(350_000_001),
                "desk",
                SimTime::from_millis(2),
            )
            .partition_at(SimTime::from_millis(400), "cave")
            .heal_at(SimTime::from_millis(500), "cave")
            .pass_master_at(SimTime::from_millis(600), "alice", "bob")
            .migrate_at(SimTime::from_millis(700), "london", "manchester")
            .viewer_leave_at(SimTime::from_millis(800), "desk")
            .viewer_join_relay_at(
                SimTime::from_millis(900),
                "desk",
                "region",
                Link::wan(),
                Transport::Ogsa,
            )
            .leave_at(SimTime::from_millis(950), "carol")
            .crash_at(SimTime::from_millis(1000))
            .restore_at(SimTime::from_millis(1050))
    }

    #[test]
    fn roundtrip_is_textually_stable() {
        let text = rich().to_script();
        let parsed = Scenario::from_script(&text).unwrap();
        assert_eq!(parsed.to_script(), text, "to_script∘from_script fixpoint");
    }

    #[test]
    fn roundtrip_replays_to_the_same_digest() {
        let original = rich();
        let parsed = Scenario::from_script(&original.to_script()).unwrap();
        assert_eq!(parsed.run().render(), original.run().render());
    }

    #[test]
    fn custom_links_and_odd_times_survive() {
        let odd = Link::builder()
            .latency(SimTime::from_nanos(123_456_789))
            .bandwidth_bps(7_777)
            .jitter(SimTime::from_micros(5))
            .loss_ppm(42)
            .build();
        let s = Scenario::named("custom-link")
            .participant("a", odd)
            .duration(SimTime::from_millis(300));
        let text = s.to_script();
        assert!(
            text.contains("link=custom:latency=123456789ns,bw=7777,jitter=5000ns,loss=42"),
            "unexpected link token in:\n{text}"
        );
        let parsed = Scenario::from_script(&text).unwrap();
        assert_eq!(parsed.run().digest(), s.run().digest());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "#! invariant: master\n\n# a comment\nscenario c\nseed 5\nduration 200ms\n\
                    sample_every 100ms\nparticipant a link=lan\n";
        let s = Scenario::from_script(text).unwrap();
        assert_eq!(s.label(), "c");
        assert_eq!(s.participant_names(), vec!["a"]);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn parse_errors_point_at_the_line() {
        for (text, needle) in [
            ("warp 9", "unknown directive"),
            ("at 100ms explode", "unknown action"),
            ("participant a link=hyperspace", "unknown link preset"),
            (
                "viewer v link=lan via=carrier-pigeon budget=x every=1",
                "unknown transport",
            ),
            ("at 1parsec join a link=lan", "suffix"),
            ("at 100ms steer a p q", "kind: prefix"),
        ] {
            let e = Scenario::from_script(text).unwrap_err();
            assert_eq!(e.line, 1, "for {text:?}");
            assert!(e.msg.contains(needle), "{e} (wanted {needle:?})");
        }
        let e = Scenario::from_script("scenario x\nseed nope").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn every_steer_value_kind_roundtrips() {
        for v in [
            ParamValue::F64(0.125),
            ParamValue::I64(-9),
            ParamValue::Bool(true),
            ParamValue::Vec3([1.0, -0.5, 0.25]),
            ParamValue::Str("cold".to_string()),
        ] {
            let tok = value_token(&v);
            assert_eq!(parse_value(&tok, 1).unwrap(), v, "token {tok}");
        }
    }
}
