//! # gridsteer-harness — the deterministic scenario engine
//!
//! The paper's core claim is qualitative: the steering loop stays
//! responsive while clients join, leave, pass the master token, and the
//! computation migrates mid-run (§2.4, §3.3, §4.2–4.4). This crate turns
//! that claim into checkable infrastructure: a [`Scenario`] builder wires
//! N participants, one simulation backend (LBM or PEPC), and per-client
//! fault-injectable links into a single run driven by the virtual clock —
//! no wall-clock, no sockets — and yields a [`ScenarioReport`] whose
//! canonical rendering (and hence [`ScenarioReport::digest`]) is
//! byte-stable for a given seed.
//!
//! The seed/digest contract:
//!
//! * every deterministic stream in a run (backend initial conditions, link
//!   jitter/loss, fault injection, migration transfer) derives from the one
//!   scenario seed;
//! * same built scenario + same seed ⇒ identical [`ScenarioReport::render`]
//!   bytes ⇒ identical digest;
//! * a different seed re-derives every stream, so any scenario with jitter
//!   or loss observably diverges.
//!
//! See `tests/scenarios.rs` at the workspace root for the tier-1 fault
//! matrix and the README's "Scenario harness" section for how to add one.

pub mod backend;
pub mod error;
pub mod report;
pub mod scenario;
pub mod script;

pub use backend::{LbmBackend, PepcBackend, ScenarioBackend};
pub use error::ScenarioError;
pub use gridsteer_bus::Transport;
pub use report::{MigrationRecord, RelayRecord, ScenarioReport, ViewerRecord};
pub use scenario::{Action, Scenario};
pub use script::ScriptError;
