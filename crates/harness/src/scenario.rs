//! The scenario builder DSL and the deterministic engine behind it.
//!
//! A [`Scenario`] wires N steering participants, one simulation backend,
//! and per-participant [`FaultyLink`]s into a single run driven entirely by
//! the virtual clock ([`EventQueue`]) and a seeded RNG — no wall-clock, no
//! sockets, no threads. Everything that happens mid-run (client churn,
//! master handoff, fault injection, migration) is a scripted [`Action`] at
//! a virtual time, so a scenario replays byte-identically for a given seed.
//!
//! Steering runs over the `gridsteer_bus`: every participant attaches a
//! [`SteerEndpoint`] of a chosen [`Transport`] (loopback by default;
//! VISIT / OGSA / COVISE / UNICORE via
//! [`Scenario::participant_via`] / [`Scenario::route`]) to one
//! [`SteerHub`] shared with the session, so one scenario steers the same
//! simulation over several middlewares at once — the paper's interop
//! demo. Steer commands that survive their link are *staged* through the
//! endpoint on arrival and *committed atomically at the next sample/step
//! boundary* in staging order, which keeps multi-transport digests
//! byte-stable at any `EXEC_THREADS`.
//!
//! The outbound half is symmetric: [`Scenario::viewer_via`] attaches
//! monitor-bus subscribers per transport to one [`MonitorHub`]. At every
//! step boundary the backend publishes its monitored quantities as one
//! batch; the hub filters and decimates per each viewer's negotiated
//! capability set, admitted frames ride that viewer's faulted link, and
//! every arrival is scored against the viewer's `LoopBudget` on the
//! virtual clock — so reaction-budget violations, per-transport delivery
//! counts, and a byte-stable fold of the received frames all land in the
//! [`ScenarioReport`] digest.
//!
//! ```
//! use gridsteer_harness::Scenario;
//! use netsim::{Link, SimTime};
//!
//! let report = Scenario::named("loss-demo")
//!     .seed(7)
//!     .participant("alice", Link::uk_janet())
//!     .participant("bob", Link::transatlantic())
//!     .loss_at(SimTime::from_millis(200), "bob", 200_000)
//!     .steer_at(SimTime::from_millis(500), "alice", "miscibility", 0.3)
//!     .duration(SimTime::from_secs(1))
//!     .run();
//! assert_eq!(report.digest(), Scenario::named("loss-demo")
//!     .seed(7)
//!     .participant("alice", Link::uk_janet())
//!     .participant("bob", Link::transatlantic())
//!     .loss_at(SimTime::from_millis(200), "bob", 200_000)
//!     .steer_at(SimTime::from_millis(500), "alice", "miscibility", 0.3)
//!     .duration(SimTime::from_secs(1))
//!     .run()
//!     .digest());
//! ```

use crate::backend::{LbmBackend, PepcBackend, ScenarioBackend};
use crate::report::{MigrationRecord, ScenarioReport, ViewerRecord};
use gridsteer_bus::{
    Capabilities, MonitorCaps, MonitorHub, SteerCommand, SteerEndpoint, SteerHub, Transport,
};
use lbm::LbmConfig;
use netsim::{EventQueue, FaultyLink, Link, NetModel, SimTime};
use pepc::PepcConfig;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;
use steer_core::{LoopBudget, LoopMonitor, ParamValue, SessionEvent, SteeringSession};

/// Wire size of one steer command frame.
const STEER_BYTES: usize = 64;

/// Fixed restart overhead after a migration (the UNICORE re-incarnation
/// cost, matching `steer_core::Migrator`).
const RESTART_OVERHEAD: SimTime = SimTime::from_secs(2);

/// Runaway guard on total processed events.
const MAX_EVENTS: usize = 1_000_000;

/// A scripted occurrence at a virtual time.
#[derive(Debug, Clone)]
pub enum Action {
    /// A participant joins (or rejoins) over the given link. A rejoin is a
    /// new connection: the link (and any partition/loss/jitter fault state)
    /// is replaced, while delivery statistics accumulate across
    /// connections.
    Join {
        /// Participant name.
        name: String,
        /// Steady-state link profile (its seed is re-derived from the
        /// scenario seed).
        link: Link,
    },
    /// A participant leaves; a departing master hands the token to the
    /// longest-joined remaining participant.
    Leave {
        /// Participant name.
        name: String,
    },
    /// The master passes the token explicitly.
    PassMaster {
        /// Current master.
        from: String,
        /// Recipient.
        to: String,
    },
    /// A participant sends a steer command over their (possibly faulted)
    /// link; on arrival it is staged through the sender's bus endpoint
    /// and committed at the next step boundary — or lost in transit.
    Steer {
        /// Sender.
        who: String,
        /// Parameter name.
        param: String,
        /// Requested typed value.
        value: ParamValue,
    },
    /// Sever a participant's link until healed.
    Partition {
        /// Participant name.
        who: String,
    },
    /// Restore a partitioned link.
    Heal {
        /// Participant name.
        who: String,
    },
    /// Inject extra loss (ppm) on a participant's link.
    SetLoss {
        /// Participant name.
        who: String,
        /// Loss in parts-per-million.
        ppm: u32,
    },
    /// Inject extra jitter on a participant's link.
    SetJitter {
        /// Participant name.
        who: String,
        /// Maximum extra jitter.
        jitter: SimTime,
    },
    /// Migrate the computation between named `sc2003` sites; sampling
    /// pauses for the transfer + restart gap.
    Migrate {
        /// Source site.
        from: String,
        /// Destination site.
        to: String,
    },
}

#[derive(Debug, Clone)]
enum BackendSpec {
    Lbm(LbmConfig),
    Pepc(PepcConfig),
}

/// A declared monitor-bus viewer: a subscriber receiving the backend's
/// monitored output over a chosen transport, scored against a reaction
/// budget.
#[derive(Debug, Clone)]
struct ViewerSpec {
    name: String,
    link: Link,
    transport: Transport,
    budget: LoopBudget,
    /// Requested decimation (accept every Nth admissible frame).
    every: u32,
}

/// A deterministic end-to-end steering scenario (builder).
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    seed: u64,
    backend: BackendSpec,
    participants: Vec<(String, Link)>,
    /// Steering transport per participant (absent = loopback).
    transports: BTreeMap<String, Transport>,
    /// Monitor-bus viewers, in declaration order.
    viewers: Vec<ViewerSpec>,
    actions: Vec<(SimTime, Action)>,
    sample_every: SimTime,
    steps_per_sample: usize,
    duration: SimTime,
    /// Executor pool the backend dispatches onto (`None` = the shared pool
    /// for the backend config's thread count). Never affects results.
    pool: Option<std::sync::Arc<gridsteer_exec::ExecPool>>,
}

/// One live monitor-bus viewer: its faulted link, its reaction-budget
/// scoring, and the byte-stable fold of everything it received.
struct ViewerState {
    name: String,
    transport: &'static str,
    budget: LoopBudget,
    link: FaultyLink,
    monitor: LoopMonitor,
    delivered: u64,
    dropped: u64,
    digest: u64,
}

/// One connected (or disconnected) scenario participant.
struct Client {
    name: String,
    link: FaultyLink,
    online: bool,
    /// Stats accumulated over previous connections (a rejoin replaces the
    /// link — and with it the live counters — with a fresh one).
    prior_stats: netsim::LinkStats,
}

impl Client {
    /// Lifetime delivery statistics across all of this participant's
    /// connections.
    fn total_stats(&self) -> netsim::LinkStats {
        let cur = self.link.stats();
        netsim::LinkStats {
            delivered: self.prior_stats.delivered + cur.delivered,
            dropped: self.prior_stats.dropped + cur.dropped,
        }
    }
}

enum Ev {
    Sample,
    Act(usize),
    ApplySteer {
        who: String,
        param: String,
        value: ParamValue,
    },
}

impl Scenario {
    /// A named scenario with defaults: a small LBM backend, 100 ms sample
    /// interval, one simulation step per sample, 3 s duration, seed 1.
    pub fn named(name: &str) -> Scenario {
        Scenario {
            name: name.to_string(),
            seed: 1,
            backend: BackendSpec::Lbm(LbmConfig::small()),
            participants: Vec::new(),
            transports: BTreeMap::new(),
            viewers: Vec::new(),
            actions: Vec::new(),
            sample_every: SimTime::from_millis(100),
            steps_per_sample: 1,
            duration: SimTime::from_secs(3),
            pool: None,
        }
    }

    /// Run the backend on an explicit executor pool — scenario sweeps and
    /// the `exp_*` binaries pass one shared pool so every run reuses the
    /// same persistent workers. The pool never changes results (fixed
    /// chunking; see `gridsteer_exec`).
    pub fn pool(mut self, pool: std::sync::Arc<gridsteer_exec::ExecPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The seed every deterministic stream in the run derives from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Use the LB two-fluid backend (its config seed is re-derived from
    /// the scenario seed).
    pub fn lbm(mut self, cfg: LbmConfig) -> Self {
        self.backend = BackendSpec::Lbm(cfg);
        self
    }

    /// Use the PEPC plasma backend (its config seed is re-derived from the
    /// scenario seed).
    pub fn pepc(mut self, cfg: PepcConfig) -> Self {
        self.backend = BackendSpec::Pepc(cfg);
        self
    }

    /// Add a participant present from t=0. The first participant becomes
    /// the session master. Steers over the in-process loopback transport.
    pub fn participant(mut self, name: &str, link: Link) -> Self {
        self.participants.push((name.to_string(), link));
        self
    }

    /// Add a t=0 participant steering over an explicit bus [`Transport`]
    /// (VISIT wire, OGSA service, COVISE module, UNICORE jobs…).
    pub fn participant_via(self, name: &str, link: Link, transport: Transport) -> Self {
        self.participant(name, link).route(name, transport)
    }

    /// Route a participant's steering traffic (present or future — also
    /// applies to mid-run [`Action::Join`]ers) over a bus transport.
    pub fn route(mut self, name: &str, transport: Transport) -> Self {
        self.transports.insert(name.to_string(), transport);
        self
    }

    /// Attach a monitor-bus viewer receiving the backend's monitored
    /// output over the given transport, with deliveries scored against
    /// the §4.2 desktop-render budget. Viewers are pure data-plane
    /// consumers: they do not join the steering session, but their links
    /// share the fault namespace (partition/loss/jitter actions find them
    /// by name).
    pub fn viewer_via(self, name: &str, link: Link, transport: Transport) -> Self {
        self.viewer_with_budget(name, link, transport, LoopBudget::DesktopRender)
    }

    /// Attach a viewer scored against an explicit [`LoopBudget`] (a CAVE
    /// wall wants `VrRender`; a post-processing site takes
    /// `PostProcessing`).
    pub fn viewer_with_budget(
        mut self,
        name: &str,
        link: Link,
        transport: Transport,
        budget: LoopBudget,
    ) -> Self {
        self.viewers.push(ViewerSpec {
            name: name.to_string(),
            link,
            transport,
            budget,
            every: 1,
        });
        self
    }

    /// Request decimation for a declared viewer: accept only every `n`th
    /// admissible frame (the negotiated rate — a thin client's knob).
    /// Panics if no viewer of that name was declared (a silent no-op
    /// would leave the viewer at full rate with nothing in the report to
    /// say why).
    pub fn viewer_every(mut self, name: &str, n: u32) -> Self {
        let v = self
            .viewers
            .iter_mut()
            .find(|v| v.name == name)
            .unwrap_or_else(|| panic!("viewer_every: no viewer named {name:?} declared"));
        v.every = n.max(1);
        self
    }

    /// Sample (and step) interval.
    pub fn sample_every(mut self, t: SimTime) -> Self {
        self.sample_every = t;
        self
    }

    /// Simulation steps per sample tick.
    pub fn steps_per_sample(mut self, n: usize) -> Self {
        self.steps_per_sample = n.max(1);
        self
    }

    /// Virtual run length (samples stop after this time).
    pub fn duration(mut self, t: SimTime) -> Self {
        self.duration = t;
        self
    }

    /// Schedule a raw [`Action`] at virtual time `t`.
    pub fn at(mut self, t: SimTime, action: Action) -> Self {
        self.actions.push((t, action));
        self
    }

    /// Sugar: a participant joins mid-run.
    pub fn join_at(self, t: SimTime, name: &str, link: Link) -> Self {
        self.at(
            t,
            Action::Join {
                name: name.to_string(),
                link,
            },
        )
    }

    /// Sugar: a participant leaves mid-run.
    pub fn leave_at(self, t: SimTime, name: &str) -> Self {
        self.at(
            t,
            Action::Leave {
                name: name.to_string(),
            },
        )
    }

    /// Sugar: an f64 steer command is sent.
    pub fn steer_at(self, t: SimTime, who: &str, param: &str, value: f64) -> Self {
        self.steer_value_at(t, who, param, ParamValue::F64(value))
    }

    /// Sugar: a typed steer command is sent.
    pub fn steer_value_at(self, t: SimTime, who: &str, param: &str, value: ParamValue) -> Self {
        self.at(
            t,
            Action::Steer {
                who: who.to_string(),
                param: param.to_string(),
                value,
            },
        )
    }

    /// Sugar: the master passes the token.
    pub fn pass_master_at(self, t: SimTime, from: &str, to: &str) -> Self {
        self.at(
            t,
            Action::PassMaster {
                from: from.to_string(),
                to: to.to_string(),
            },
        )
    }

    /// Sugar: partition a participant's link.
    pub fn partition_at(self, t: SimTime, who: &str) -> Self {
        self.at(
            t,
            Action::Partition {
                who: who.to_string(),
            },
        )
    }

    /// Sugar: heal a participant's link.
    pub fn heal_at(self, t: SimTime, who: &str) -> Self {
        self.at(
            t,
            Action::Heal {
                who: who.to_string(),
            },
        )
    }

    /// Sugar: inject extra loss on a participant's link.
    pub fn loss_at(self, t: SimTime, who: &str, ppm: u32) -> Self {
        self.at(
            t,
            Action::SetLoss {
                who: who.to_string(),
                ppm,
            },
        )
    }

    /// Sugar: inject extra jitter on a participant's link.
    pub fn jitter_at(self, t: SimTime, who: &str, jitter: SimTime) -> Self {
        self.at(
            t,
            Action::SetJitter {
                who: who.to_string(),
                jitter,
            },
        )
    }

    /// Sugar: migrate the computation between `sc2003` sites.
    pub fn migrate_at(self, t: SimTime, from: &str, to: &str) -> Self {
        self.at(
            t,
            Action::Migrate {
                from: from.to_string(),
                to: to.to_string(),
            },
        )
    }

    /// Execute the scenario and return its report. Running the same built
    /// scenario twice yields byte-identical reports.
    pub fn run(&self) -> ScenarioReport {
        assert!(
            self.sample_every > SimTime::ZERO,
            "sample interval must be positive"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let backend_seed = rng.next_u64();
        let mut backend: Box<dyn ScenarioBackend> = match &self.backend {
            BackendSpec::Lbm(cfg) => {
                let mut cfg = cfg.clone();
                cfg.seed = backend_seed;
                Box::new(LbmBackend::new(cfg))
            }
            BackendSpec::Pepc(cfg) => {
                let mut cfg = cfg.clone();
                cfg.seed = backend_seed;
                Box::new(PepcBackend::new(cfg))
            }
        };
        if let Some(pool) = &self.pool {
            backend.set_pool(pool.clone());
        }
        // one bus hub per run: the session shares its registry, every
        // participant attaches an endpoint of their routed transport
        let hub = SteerHub::new(backend.param_specs());
        let mut session = SteeringSession::with_registry(hub.registry());
        let mut endpoints: BTreeMap<String, Box<dyn SteerEndpoint>> = BTreeMap::new();
        let mut engine_events: Vec<String> = Vec::new();
        let (net, sites) = NetModel::sc2003();
        let mut clients: Vec<Client> = Vec::new();
        for (name, link) in &self.participants {
            join_client(
                JoinCtx {
                    clients: &mut clients,
                    session: &mut session,
                    endpoints: &mut endpoints,
                    hub: &hub,
                    transports: &self.transports,
                    engine_events: &mut engine_events,
                    now: SimTime::ZERO,
                },
                name,
                link,
                &mut rng,
            );
        }

        // the monitor hub: the backend publishes its step-boundary output
        // here, and every declared viewer subscribes over its transport
        // with a negotiated capability set (logged — part of the digest)
        let mhub = MonitorHub::new();
        let mut viewers: Vec<ViewerState> = Vec::new();
        for spec in &self.viewers {
            let negotiated = mhub.attach_endpoint(
                &spec.name,
                spec.transport.attach_monitor(&spec.name),
                &MonitorCaps::full("scenario-viewer", 64).every(spec.every),
            );
            engine_events.push(format!(
                "{} attach-viewer {} budget={} {}",
                SimTime::ZERO,
                spec.name,
                spec.budget.name(),
                negotiated.render()
            ));
            let mut base = spec.link.clone();
            base.seed = rng.next_u64();
            let fault_seed = rng.next_u64();
            viewers.push(ViewerState {
                name: spec.name.clone(),
                transport: spec.transport.label(),
                budget: spec.budget,
                link: FaultyLink::new(base, fault_seed),
                monitor: LoopMonitor::new(spec.budget),
                delivered: 0,
                dropped: 0,
                digest: 0xcbf2_9ce4_8422_2325,
            });
        }

        let mut queue: EventQueue<Ev> = EventQueue::new();
        for (i, (t, _)) in self.actions.iter().enumerate() {
            queue.schedule(*t, Ev::Act(i));
        }
        if self.sample_every <= self.duration {
            queue.schedule(self.sample_every, Ev::Sample);
        }

        let mut post = LoopMonitor::new(LoopBudget::PostProcessing);
        let mut migrations: Vec<MigrationRecord> = Vec::new();
        let mut broadcasts = 0u64;
        let mut skipped = 0u64;
        let mut steers_applied = 0u64;
        let mut steers_lost = 0u64;
        let mut pause_until = SimTime::ZERO;
        let mut processed = 0usize;

        while let Some(ev) = queue.pop() {
            processed += 1;
            if processed > MAX_EVENTS {
                engine_events.push(format!("{} runaway-guard", ev.at));
                break;
            }
            let now = ev.at;
            match ev.payload {
                Ev::Sample => {
                    if now + self.sample_every <= self.duration {
                        queue.schedule(now + self.sample_every, Ev::Sample);
                    }
                    if now < pause_until {
                        skipped += 1;
                        continue;
                    }
                    // the step boundary: staged batches apply atomically,
                    // in staging order, before the physics advances
                    commit_staged(
                        &hub,
                        &mut session,
                        backend.as_mut(),
                        &mut steers_applied,
                        &mut steers_lost,
                        &mut engine_events,
                        now,
                    );
                    backend.advance(self.steps_per_sample);
                    let bytes = backend.sample_bytes();
                    session.broadcast_sample(bytes);
                    broadcasts += 1;
                    let mut earliest: Option<SimTime> = None;
                    let mut latest: Option<SimTime> = None;
                    for c in clients.iter_mut().filter(|c| c.online) {
                        if let Some(arrival) = c.link.deliver(now, bytes) {
                            post.record(arrival.saturating_since(now));
                            earliest = Some(earliest.map_or(arrival, |e: SimTime| {
                                if arrival < e {
                                    arrival
                                } else {
                                    e
                                }
                            }));
                            latest = Some(latest.map_or(arrival, |l: SimTime| l.max(arrival)));
                        }
                    }
                    if let (Some(lo), Some(hi)) = (earliest, latest) {
                        post.record_skew(hi.saturating_since(lo));
                    }
                    // the data plane: the backend publishes its monitored
                    // quantities (one batch per step boundary), the hub
                    // fans out per negotiated caps, and each viewer's
                    // admitted frames ride its faulted link — every
                    // arrival scored against that viewer's budget.
                    // Viewer-less scenarios skip the whole path: sampling
                    // the monitor surface costs full-lattice passes.
                    if !viewers.is_empty() {
                        backend.publish_monitor(&mhub);
                    }
                    for v in viewers.iter_mut() {
                        for frame in mhub.recv(&v.name) {
                            match v.link.deliver(now, frame.wire_size()) {
                                Some(arrival) => {
                                    v.monitor.record(arrival.saturating_since(now));
                                    v.delivered += 1;
                                    v.digest = frame.fold_fnv(v.digest);
                                }
                                None => v.dropped += 1,
                            }
                        }
                    }
                }
                Ev::Act(i) => {
                    let action = self.actions[i].1.clone();
                    apply_action(ActionCtx {
                        action,
                        now,
                        clients: &mut clients,
                        viewers: &mut viewers,
                        session: &mut session,
                        backend: backend.as_mut(),
                        queue: &mut queue,
                        rng: &mut rng,
                        net: &net,
                        sites: &sites,
                        engine_events: &mut engine_events,
                        migrations: &mut migrations,
                        steers_lost: &mut steers_lost,
                        pause_until: &mut pause_until,
                        endpoints: &mut endpoints,
                        hub: &hub,
                        transports: &self.transports,
                    });
                }
                Ev::ApplySteer { who, param, value } => match session.index_of(&who) {
                    Some(_) => {
                        let ep = endpoints
                            .get_mut(&who)
                            .expect("joined participants have endpoints");
                        // ship through the middleware; staged until the
                        // next step boundary
                        if let Err(e) = ep.set_batch(vec![SteerCommand::new(&param, value)]) {
                            steers_lost += 1;
                            engine_events
                                .push(format!("{now} steer-unroutable {who} {param}: {e}"));
                        }
                    }
                    None => {
                        steers_lost += 1;
                        engine_events.push(format!("{now} steer-sender-left {who}"));
                    }
                },
            }
        }

        // trailing boundary: steers arriving after the last sample tick
        // still commit before the report is cut
        commit_staged(
            &hub,
            &mut session,
            backend.as_mut(),
            &mut steers_applied,
            &mut steers_lost,
            &mut engine_events,
            self.duration,
        );

        let mut latencies = post.samples().to_vec();
        latencies.sort();
        let pct = |q: f64| -> SimTime {
            if latencies.is_empty() {
                SimTime::ZERO
            } else {
                latencies[((latencies.len() - 1) as f64 * q).round() as usize]
            }
        };
        let loop_report = post.report();
        let viewer_records: Vec<ViewerRecord> = viewers
            .iter()
            .map(|v| {
                let lr = v.monitor.report();
                let stats = mhub.stats_of(&v.name).unwrap_or_default();
                ViewerRecord {
                    name: v.name.clone(),
                    transport: v.transport,
                    budget: v.budget.name(),
                    delivered: v.delivered,
                    dropped: v.dropped,
                    decimated: stats.decimated,
                    filtered: stats.filtered,
                    budget_violations: lr.violations,
                    max_latency: lr.max,
                    frames_digest: format!("{:016x}", v.digest),
                }
            })
            .collect();
        ScenarioReport {
            name: self.name.clone(),
            seed: self.seed,
            backend: backend.kind(),
            broadcasts,
            broadcasts_skipped: skipped,
            p50: pct(0.5),
            p90: pct(0.9),
            p99: pct(0.99),
            max: loop_report.max,
            max_skew: loop_report.max_skew,
            within_budget: loop_report.within_budget,
            within_skew: loop_report.within_skew,
            post_budget_violations: loop_report.violations,
            steers_applied,
            steers_lost,
            monitor_frames: mhub.frames_published(),
            viewers: viewer_records,
            migrations,
            links: clients
                .iter()
                .map(|c| (c.name.clone(), c.total_stats()))
                .collect(),
            session_events: session.events().iter().map(render_event).collect(),
            engine_events,
            final_progress: backend.progress(),
        }
    }
}

/// Everything one action application touches (bundled to keep the
/// dispatcher signature sane).
struct ActionCtx<'a> {
    action: Action,
    now: SimTime,
    clients: &'a mut Vec<Client>,
    viewers: &'a mut Vec<ViewerState>,
    session: &'a mut SteeringSession,
    backend: &'a mut dyn ScenarioBackend,
    queue: &'a mut EventQueue<Ev>,
    rng: &'a mut StdRng,
    net: &'a NetModel,
    sites: &'a std::collections::HashMap<String, netsim::SiteId>,
    engine_events: &'a mut Vec<String>,
    migrations: &'a mut Vec<MigrationRecord>,
    steers_lost: &'a mut u64,
    pause_until: &'a mut SimTime,
    endpoints: &'a mut BTreeMap<String, Box<dyn SteerEndpoint>>,
    hub: &'a SteerHub,
    transports: &'a BTreeMap<String, Transport>,
}

fn apply_action(ctx: ActionCtx<'_>) {
    let ActionCtx {
        action,
        now,
        clients,
        viewers,
        session,
        backend,
        queue,
        rng,
        net,
        sites,
        engine_events,
        migrations,
        steers_lost,
        pause_until,
        endpoints,
        hub,
        transports,
    } = ctx;
    match action {
        Action::Join { name, link } => {
            join_client(
                JoinCtx {
                    clients,
                    session,
                    endpoints,
                    hub,
                    transports,
                    engine_events,
                    now,
                },
                &name,
                &link,
                rng,
            );
        }
        Action::Leave { name } => {
            if session.leave_by_name(&name) {
                if let Some(c) = clients.iter_mut().find(|c| c.name == name) {
                    c.online = false;
                }
            } else {
                engine_events.push(format!("{now} leave-miss {name}"));
            }
        }
        Action::PassMaster { from, to } => match (session.index_of(&from), session.index_of(&to)) {
            (Some(f), Some(t)) => {
                if !session.pass_master(f, t) {
                    engine_events.push(format!("{now} pass-refused {from}->{to}"));
                }
            }
            _ => engine_events.push(format!("{now} pass-miss {from}->{to}")),
        },
        Action::Steer { who, param, value } => {
            match clients.iter_mut().find(|c| c.name == who && c.online) {
                Some(c) => match c.link.deliver(now, STEER_BYTES) {
                    Some(arrival) => {
                        queue.schedule(arrival, Ev::ApplySteer { who, param, value });
                    }
                    None => {
                        *steers_lost += 1;
                        engine_events.push(format!("{now} steer-lost {who} {param}"));
                    }
                },
                None => {
                    *steers_lost += 1;
                    engine_events.push(format!("{now} steer-offline {who} {param}"));
                }
            }
        }
        Action::Partition { who } => match fault_link(clients, viewers, &who) {
            Some(link) => {
                link.partition();
                engine_events.push(format!("{now} partition {who}"));
            }
            None => engine_events.push(format!("{now} fault-miss {who}")),
        },
        Action::Heal { who } => match fault_link(clients, viewers, &who) {
            Some(link) => {
                link.heal();
                engine_events.push(format!("{now} heal {who}"));
            }
            None => engine_events.push(format!("{now} fault-miss {who}")),
        },
        Action::SetLoss { who, ppm } => match fault_link(clients, viewers, &who) {
            Some(link) => {
                link.set_extra_loss_ppm(ppm);
                engine_events.push(format!("{now} loss {who} {ppm}ppm"));
            }
            None => engine_events.push(format!("{now} fault-miss {who}")),
        },
        Action::SetJitter { who, jitter } => match fault_link(clients, viewers, &who) {
            Some(link) => {
                link.set_extra_jitter(jitter);
                engine_events.push(format!("{now} jitter {who} {jitter}"));
            }
            None => engine_events.push(format!("{now} fault-miss {who}")),
        },
        Action::Migrate { from, to } => match (sites.get(&from), sites.get(&to)) {
            (Some(&a), Some(&b)) => {
                let bytes = backend.checkpoint_roundtrip();
                let mut link = net.link(a, b);
                link.seed = rng.next_u64();
                let arrival = link
                    .deliver(now, bytes)
                    .unwrap_or_else(|| link.nominal_arrival(now, bytes));
                let gap = arrival.saturating_since(now) + RESTART_OVERHEAD;
                *pause_until = (now + gap).max(*pause_until);
                engine_events.push(format!(
                    "{now} migrate {from}->{to} bytes={bytes} gap={gap}"
                ));
                migrations.push(MigrationRecord {
                    from,
                    to,
                    bytes,
                    gap,
                });
            }
            _ => engine_events.push(format!("{now} migrate-miss {from}->{to}")),
        },
    }
}

/// Resolve a fault-action target: participants and viewers share one
/// name space for link faults (participants win a collision).
fn fault_link<'a>(
    clients: &'a mut [Client],
    viewers: &'a mut [ViewerState],
    who: &str,
) -> Option<&'a mut FaultyLink> {
    if let Some(c) = clients.iter_mut().find(|c| c.name == who) {
        return Some(&mut c.link);
    }
    viewers
        .iter_mut()
        .find(|v| v.name == who)
        .map(|v| &mut v.link)
}

/// Apply every staged bus batch atomically at a step boundary: commands
/// flow through the session (master/bounds checks, audit events) and into
/// the backend, in global staging order.
fn commit_staged(
    hub: &SteerHub,
    session: &mut SteeringSession,
    backend: &mut dyn ScenarioBackend,
    steers_applied: &mut u64,
    steers_lost: &mut u64,
    engine_events: &mut Vec<String>,
    now: SimTime,
) {
    if hub.pending() == 0 {
        return;
    }
    hub.commit_with(|batch, cmd| match session.index_of(&batch.origin) {
        Some(idx) => match session.steer_value(idx, &cmd.param, &cmd.value) {
            Ok(applied) => {
                backend.apply_steer(&cmd.param, &applied);
                *steers_applied += 1;
                Ok(applied)
            }
            // refusals are already in the session audit log
            Err(e) => Err(e),
        },
        None => {
            *steers_lost += 1;
            engine_events.push(format!("{now} steer-sender-left {}", batch.origin));
            Err("sender left before commit".into())
        }
    });
}

/// Everything a join touches (session, link table, bus attachment).
struct JoinCtx<'a> {
    clients: &'a mut Vec<Client>,
    session: &'a mut SteeringSession,
    endpoints: &'a mut BTreeMap<String, Box<dyn SteerEndpoint>>,
    hub: &'a SteerHub,
    transports: &'a BTreeMap<String, Transport>,
    engine_events: &'a mut Vec<String>,
    now: SimTime,
}

/// Join (or rejoin) a participant: session membership, a faulted link
/// whose deterministic streams derive from the scenario RNG, and — on
/// first join — a bus endpoint of the participant's routed transport,
/// with its capability handshake logged (part of the report digest).
fn join_client(ctx: JoinCtx<'_>, name: &str, link: &Link, rng: &mut StdRng) {
    let JoinCtx {
        clients,
        session,
        endpoints,
        hub,
        transports,
        engine_events,
        now,
    } = ctx;
    if session.index_of(name).is_none() {
        session.join(name);
    }
    if !endpoints.contains_key(name) {
        let transport = transports.get(name).copied().unwrap_or_default();
        let mut ep = transport.attach(hub, name);
        let negotiated = ep.negotiate(&Capabilities::full("scenario-client", 64));
        engine_events.push(format!("{now} attach {name} {}", negotiated.render()));
        endpoints.insert(name.to_string(), ep);
    }
    let mut base = link.clone();
    base.seed = rng.next_u64();
    let fault_seed = rng.next_u64();
    let fresh = FaultyLink::new(base, fault_seed);
    match clients.iter_mut().find(|c| c.name == name) {
        Some(c) => {
            // a rejoin is a new connection: the given link replaces the old
            // one, clearing any partition/loss/jitter state; delivery stats
            // accumulate across connections
            let old = c.link.stats();
            c.prior_stats.delivered += old.delivered;
            c.prior_stats.dropped += old.dropped;
            c.link = fresh;
            c.online = true;
        }
        None => {
            clients.push(Client {
                name: name.to_string(),
                link: fresh,
                online: true,
                prior_stats: netsim::LinkStats::default(),
            });
        }
    }
}

/// Canonical, stable rendering of a session event for reports/digests.
fn render_event(e: &SessionEvent) -> String {
    match e {
        SessionEvent::Joined(n) => format!("Joined({n})"),
        SessionEvent::Left(n) => format!("Left({n})"),
        SessionEvent::MasterPassed { from, to } => format!("MasterPassed({from}->{to})"),
        SessionEvent::Steered { who, param, value } => {
            format!("Steered({who},{param},{})", value.render())
        }
        SessionEvent::SteerRefused { who, param, reason } => {
            format!("SteerRefused({who},{param},{reason})")
        }
        SessionEvent::SampleBroadcast { seq, bytes } => format!("Sample({seq},{bytes})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lbm() -> LbmConfig {
        LbmConfig {
            nx: 6,
            ny: 6,
            nz: 6,
            threads: 1,
            ..Default::default()
        }
    }

    fn tiny(name: &str) -> Scenario {
        Scenario::named(name)
            .lbm(tiny_lbm())
            .participant("alice", Link::uk_janet())
            .participant("bob", Link::gwin())
            .duration(SimTime::from_secs(1))
    }

    #[test]
    fn produces_expected_broadcast_count() {
        let r = tiny("count").run();
        // samples at 100ms..1000ms inclusive
        assert_eq!(r.broadcasts, 10);
        assert_eq!(r.total_deliveries(), 20);
        assert_eq!(r.final_progress, 10);
        assert!(r.within_budget);
    }

    #[test]
    fn same_build_same_digest() {
        let a = tiny("det").jitter_at(SimTime::ZERO, "bob", SimTime::from_millis(5));
        let r1 = a.run();
        let r2 = a.run();
        assert_eq!(r1.render(), r2.render());
        assert_eq!(r1.digest(), r2.digest());
    }

    #[test]
    fn different_seed_different_behaviour() {
        let base = tiny("seeds").loss_at(SimTime::ZERO, "bob", 300_000);
        let r1 = base.clone().seed(10).run();
        let r2 = base.seed(11).run();
        assert_ne!(r1.digest(), r2.digest());
    }

    #[test]
    fn master_steer_is_applied() {
        let r = tiny("steer")
            .steer_at(SimTime::from_millis(250), "alice", "miscibility", 0.25)
            .run();
        assert_eq!(r.steers_applied, 1);
        assert!(r
            .session_events
            .iter()
            .any(|e| e.starts_with("Steered(alice,miscibility")));
    }

    #[test]
    fn viewer_steer_is_refused_not_lost() {
        let r = tiny("refuse")
            .steer_at(SimTime::from_millis(250), "bob", "miscibility", 0.25)
            .run();
        assert_eq!(r.steers_applied, 0);
        assert_eq!(r.steers_lost, 0);
        assert!(r
            .session_events
            .iter()
            .any(|e| e.starts_with("SteerRefused(bob")));
    }

    #[test]
    fn partitioned_steer_is_lost() {
        let r = tiny("part-steer")
            .partition_at(SimTime::from_millis(100), "alice")
            .steer_at(SimTime::from_millis(250), "alice", "miscibility", 0.25)
            .run();
        assert_eq!(r.steers_applied, 0);
        assert_eq!(r.steers_lost, 1);
        assert!(r.engine_events.iter().any(|e| e.contains("steer-lost")));
    }

    #[test]
    fn unknown_names_are_logged_not_fatal() {
        let r = tiny("misses")
            .partition_at(SimTime::from_millis(100), "ghost")
            .leave_at(SimTime::from_millis(200), "ghost")
            .steer_at(SimTime::from_millis(300), "ghost", "miscibility", 0.5)
            .migrate_at(SimTime::from_millis(400), "london", "atlantis")
            .run();
        assert!(r.engine_events.iter().any(|e| e.contains("fault-miss")));
        assert!(r.engine_events.iter().any(|e| e.contains("leave-miss")));
        assert!(r.engine_events.iter().any(|e| e.contains("steer-offline")));
        assert!(r.engine_events.iter().any(|e| e.contains("migrate-miss")));
    }

    #[test]
    fn migration_pauses_sampling_and_is_recorded() {
        let r = tiny("mig")
            .duration(SimTime::from_secs(4))
            .migrate_at(SimTime::from_millis(150), "london", "manchester")
            .run();
        assert_eq!(r.migrations.len(), 1);
        assert!(r.broadcasts_skipped > 0, "blackout must skip samples");
        assert!(r.migrations_within_budget());
        assert!(r.migrations[0].bytes > 0);
    }

    #[test]
    fn late_joiner_shows_up_in_links_and_events() {
        let r = tiny("late")
            .join_at(SimTime::from_millis(500), "carol", Link::transatlantic())
            .run();
        assert!(r.links.iter().any(|(n, s)| n == "carol" && s.delivered > 0));
        assert!(r.session_events.contains(&"Joined(carol)".to_string()));
        let carol = &r.links.iter().find(|(n, _)| n == "carol").unwrap().1;
        let alice = &r.links.iter().find(|(n, _)| n == "alice").unwrap().1;
        assert!(carol.offered() < alice.offered());
    }

    #[test]
    fn rejoin_replaces_link_and_clears_faults() {
        // bob is partitioned, leaves, and rejoins over a fresh link: the
        // rejoin must shed the stale partition and receive samples again,
        // while his lifetime stats keep the pre-rejoin drops.
        let r = tiny("rejoin")
            .duration(SimTime::from_secs(3))
            .partition_at(SimTime::from_millis(200), "bob")
            .leave_at(SimTime::from_millis(500), "bob")
            .join_at(SimTime::from_millis(1000), "bob", Link::transatlantic())
            .run();
        let bob = &r.links.iter().find(|(n, _)| n == "bob").unwrap().1;
        assert!(
            bob.delivered > 1,
            "rejoined client must receive samples again: {bob:?}"
        );
        assert!(bob.dropped > 0, "pre-rejoin drops must stay counted");
        assert_eq!(
            r.session_events
                .iter()
                .filter(|e| *e == "Joined(bob)")
                .count(),
            2
        );
    }

    #[test]
    fn explicit_pool_does_not_change_digest() {
        // the pool is an execution detail: any thread count, same bytes —
        // including across a mid-run migration (checkpoint restore keeps
        // the scenario's pool)
        let base = tiny("pool")
            .duration(SimTime::from_secs(4))
            .steer_at(SimTime::from_millis(300), "alice", "miscibility", 0.4)
            .migrate_at(SimTime::from_millis(600), "london", "manchester");
        let r1 = base.clone().run();
        let r8 = base.clone().pool(gridsteer_exec::shared(8)).run();
        let r_serial = base.pool(gridsteer_exec::shared(1)).run();
        assert_eq!(r1.digest(), r8.digest());
        assert_eq!(r1.digest(), r_serial.digest());
    }

    #[test]
    fn pepc_backend_runs_and_steers() {
        let r = Scenario::named("pepc")
            .pepc(PepcConfig {
                n_target: 40,
                ranks: 1,
                ..PepcConfig::small()
            })
            .participant("alice", Link::uk_janet())
            .duration(SimTime::from_secs(1))
            .steer_at(SimTime::from_millis(300), "alice", "damping", 0.4)
            .run();
        assert_eq!(r.backend, "pepc");
        assert_eq!(r.steers_applied, 1);
        assert!(r.broadcasts > 0);
    }

    #[test]
    fn out_of_bounds_steer_rejected_by_registry() {
        let r = tiny("bounds")
            .steer_at(SimTime::from_millis(200), "alice", "miscibility", 7.0)
            .run();
        assert_eq!(r.steers_applied, 0);
        assert!(r
            .session_events
            .iter()
            .any(|e| e.starts_with("SteerRefused(alice")));
    }

    #[test]
    fn viewers_receive_monitor_frames_and_score_budgets() {
        let r = tiny("viewers")
            .viewer_via("desk", Link::uk_janet(), Transport::Visit)
            .viewer_via("grids", Link::gwin(), Transport::Covise)
            .run();
        assert_eq!(r.monitor_frames, 60, "6 channels x 10 sample ticks");
        let desk = r.viewer("desk").unwrap();
        assert_eq!(desk.delivered, 60, "full caps: every frame");
        assert_eq!(desk.budget, "desktop-render");
        assert_eq!(desk.budget_violations, 0, "janet latency is way inside");
        assert_eq!(desk.transport, "visit");
        let grids = r.viewer("grids").unwrap();
        assert_eq!(grids.delivered, 20, "grids-only caps: 2 of 6 channels");
        assert_eq!(grids.filtered, 40, "scalars+vec3 filtered out");
        assert_ne!(desk.frames_digest, grids.frames_digest);
        assert!(r.viewers_within_budget());
        assert!(r
            .engine_events
            .iter()
            .any(|e| e.contains("attach-viewer grids budget=desktop-render transport=covise")));
    }

    #[test]
    fn viewer_decimation_and_faults_apply() {
        let r = tiny("viewer-faults")
            .viewer_via("thin", Link::uk_janet(), Transport::Loopback)
            .viewer_every("thin", 3)
            .viewer_via("cut", Link::gwin(), Transport::Unicore)
            .partition_at(SimTime::from_millis(150), "cut")
            .heal_at(SimTime::from_millis(650), "cut")
            .run();
        let thin = r.viewer("thin").unwrap();
        assert_eq!(thin.delivered, 20, "every 3rd of 60");
        assert_eq!(thin.decimated, 40);
        let cut = r.viewer("cut").unwrap();
        assert!(cut.dropped >= 24, "5 partitioned ticks x 6 frames: {cut:?}");
        assert!(cut.delivered > 0, "deliveries resume after heal");
        assert!(r.engine_events.iter().any(|e| e.contains("partition cut")));
    }

    #[test]
    fn viewer_runs_replay_byte_identically_across_pools() {
        let build = || {
            tiny("viewer-det")
                .viewer_via("a", Link::uk_janet(), Transport::Visit)
                .viewer_via("b", Link::transatlantic(), Transport::Ogsa)
                .loss_at(SimTime::ZERO, "b", 300_000)
                .steer_at(SimTime::from_millis(400), "alice", "miscibility", 0.3)
        };
        let r1 = build().run();
        let r2 = build().run();
        assert_eq!(r1.render(), r2.render());
        let r8 = build().pool(gridsteer_exec::shared(8)).run();
        assert_eq!(r1.digest(), r8.digest());
        let b = r1.viewer("b").unwrap();
        assert!(b.dropped > 0, "30% loss must drop monitor frames: {b:?}");
    }

    #[test]
    fn pepc_viewer_gets_plasma_channels() {
        let r = Scenario::named("pepc-viewer")
            .pepc(PepcConfig {
                n_target: 40,
                ranks: 1,
                ..PepcConfig::small()
            })
            .participant("alice", Link::uk_janet())
            .viewer_via("v", Link::gwin(), Transport::Visit)
            .duration(SimTime::from_secs(1))
            .run();
        assert_eq!(r.monitor_frames, 30, "3 scalar channels x 10 ticks");
        assert_eq!(r.viewer("v").unwrap().delivered, 30);
    }

    #[test]
    fn zero_sample_interval_panics() {
        let s = tiny("bad").sample_every(SimTime::ZERO);
        // AssertUnwindSafe: the optional pool handle holds sync primitives
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || s.run())).is_err());
    }
}
