//! The scenario builder DSL and the deterministic engine behind it.
//!
//! A [`Scenario`] wires N steering participants, one simulation backend,
//! and per-participant [`FaultyLink`]s into a single run driven entirely by
//! the virtual clock ([`EventQueue`]) and a seeded RNG — no wall-clock, no
//! sockets, no threads. Everything that happens mid-run (client churn,
//! master handoff, fault injection, migration) is a scripted [`Action`] at
//! a virtual time, so a scenario replays byte-identically for a given seed.
//!
//! Steering runs over the `gridsteer_bus`: every participant attaches a
//! [`SteerEndpoint`] of a chosen [`Transport`] (loopback by default;
//! VISIT / OGSA / COVISE / UNICORE via
//! [`Scenario::participant_via`] / [`Scenario::route`]) to one
//! [`SteerHub`] shared with the session, so one scenario steers the same
//! simulation over several middlewares at once — the paper's interop
//! demo. Steer commands that survive their link are *staged* through the
//! endpoint on arrival and *committed atomically at the next sample/step
//! boundary* in staging order, which keeps multi-transport digests
//! byte-stable at any `EXEC_THREADS`.
//!
//! The outbound half is symmetric: [`Scenario::viewer_via`] attaches
//! monitor-bus subscribers per transport to one [`MonitorHub`]. At every
//! step boundary the backend publishes its monitored quantities as one
//! batch; the hub filters and decimates per each viewer's negotiated
//! capability set, admitted frames ride that viewer's faulted link, and
//! every arrival is scored against the viewer's `LoopBudget` on the
//! virtual clock — so reaction-budget violations, per-transport delivery
//! counts, and a byte-stable fold of the received frames all land in the
//! [`ScenarioReport`] digest.
//!
//! ```
//! use gridsteer_harness::Scenario;
//! use netsim::{Link, SimTime};
//!
//! let report = Scenario::named("loss-demo")
//!     .seed(7)
//!     .participant("alice", Link::uk_janet())
//!     .participant("bob", Link::transatlantic())
//!     .loss_at(SimTime::from_millis(200), "bob", 200_000)
//!     .steer_at(SimTime::from_millis(500), "alice", "miscibility", 0.3)
//!     .duration(SimTime::from_secs(1))
//!     .run();
//! assert_eq!(report.digest(), Scenario::named("loss-demo")
//!     .seed(7)
//!     .participant("alice", Link::uk_janet())
//!     .participant("bob", Link::transatlantic())
//!     .loss_at(SimTime::from_millis(200), "bob", 200_000)
//!     .steer_at(SimTime::from_millis(500), "alice", "miscibility", 0.3)
//!     .duration(SimTime::from_secs(1))
//!     .run()
//!     .digest());
//! ```

use crate::backend::{LbmBackend, PepcBackend, ScenarioBackend};
use crate::error::ScenarioError;
use crate::report::{MigrationRecord, RelayRecord, ScenarioReport, ViewerRecord};
use gridsteer_bus::{
    Capabilities, LoopbackMonitor, MonitorCaps, MonitorEndpoint, MonitorHub, MonitorStats,
    RelayHub, RelayPolicy, SteerCommand, SteerEndpoint, SteerHub, Transport,
};
use gridsteer_ckpt::Snapshot;
use lbm::LbmConfig;
use netsim::{EventQueue, FaultyLink, Link, NetModel, SimTime};
use pepc::PepcConfig;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;
use steer_core::{LoopBudget, LoopMonitor, ParamValue, SessionEvent, SteeringSession};

/// Wire size of one steer command frame.
const STEER_BYTES: usize = 64;

/// Fixed restart overhead after a migration (the UNICORE re-incarnation
/// cost, matching `steer_core::Migrator`).
const RESTART_OVERHEAD: SimTime = SimTime::from_secs(2);

/// Runaway guard on total processed events.
const MAX_EVENTS: usize = 1_000_000;

/// A scripted occurrence at a virtual time.
#[derive(Debug, Clone)]
pub enum Action {
    /// A participant joins (or rejoins) over the given link. A rejoin is a
    /// new connection: the link (and any partition/loss/jitter fault state)
    /// is replaced, while delivery statistics accumulate across
    /// connections.
    Join {
        /// Participant name.
        name: String,
        /// Steady-state link profile (its seed is re-derived from the
        /// scenario seed).
        link: Link,
    },
    /// A participant leaves; a departing master hands the token to the
    /// longest-joined remaining participant.
    Leave {
        /// Participant name.
        name: String,
    },
    /// The master passes the token explicitly.
    PassMaster {
        /// Current master.
        from: String,
        /// Recipient.
        to: String,
    },
    /// A participant sends a steer command over their (possibly faulted)
    /// link; on arrival it is staged through the sender's bus endpoint
    /// and committed at the next step boundary — or lost in transit.
    Steer {
        /// Sender.
        who: String,
        /// Parameter name.
        param: String,
        /// Requested typed value.
        value: ParamValue,
    },
    /// Sever a participant's link until healed.
    Partition {
        /// Participant name.
        who: String,
    },
    /// Restore a partitioned link.
    Heal {
        /// Participant name.
        who: String,
    },
    /// Inject extra loss (ppm) on a participant's link.
    SetLoss {
        /// Participant name.
        who: String,
        /// Loss in parts-per-million.
        ppm: u32,
    },
    /// Inject extra jitter on a participant's link.
    SetJitter {
        /// Participant name.
        who: String,
        /// Maximum extra jitter.
        jitter: SimTime,
    },
    /// Migrate the computation between named `sc2003` sites; sampling
    /// pauses for the transfer + restart gap.
    Migrate {
        /// Source site.
        from: String,
        /// Destination site.
        to: String,
    },
    /// A monitor-bus viewer detaches mid-run: its subscription is pruned
    /// from the hub (or relay tier) it was attached to, its final
    /// delivery statistics are frozen into the report, and no further
    /// frames reach it.
    ViewerLeave {
        /// Viewer name.
        name: String,
    },
    /// A monitor-bus viewer attaches (or re-attaches) mid-run, at the
    /// origin or under a named relay tier — where the late joiner is
    /// served cached keyframes without the request travelling upstream.
    ViewerJoin {
        /// Viewer name.
        name: String,
        /// Link profile (its seed is re-derived from the scenario seed).
        link: Link,
        /// Monitor transport.
        transport: Transport,
        /// Relay tier to attach under (`None` = the origin hub).
        relay: Option<String>,
    },
    /// The simulation process dies: backend, steer hub, sessions and
    /// monitor hubs are lost; sample ticks black out (counted in
    /// `broadcasts_skipped`) until a [`Action::Restore`]. The crash
    /// itself is deliberately silent — no engine event, no counter — so
    /// that a recovery from an up-to-date checkpoint leaves the report
    /// byte-identical to an uncrashed run.
    Crash,
    /// Restart from the latest checkpoint chain (requires
    /// [`Scenario::checkpoint_every`]): the full snapshot plus every
    /// delta is decoded and the whole process state — backend fields,
    /// steer hub, session shards, monitor hub, relay tiers — is rebuilt
    /// from it. Steering clients and viewers reconnect over their
    /// declared transports; sequence numbering and delivery schedules
    /// resume exactly where the checkpoint cut them. Panics if no crash
    /// is in progress or no checkpoint was ever cut (builder misuse).
    Restore,
}

impl Action {
    /// Stable kind label — validation messages, the fuzzer's action-mix
    /// histogram, and the script text form all use these names.
    pub fn label(&self) -> &'static str {
        match self {
            Action::Join { .. } => "join",
            Action::Leave { .. } => "leave",
            Action::PassMaster { .. } => "pass",
            Action::Steer { .. } => "steer",
            Action::Partition { .. } => "partition",
            Action::Heal { .. } => "heal",
            Action::SetLoss { .. } => "loss",
            Action::SetJitter { .. } => "jitter",
            Action::Migrate { .. } => "migrate",
            Action::ViewerLeave { .. } => "viewer-leave",
            Action::ViewerJoin { .. } => "viewer-join",
            Action::Crash => "crash",
            Action::Restore => "restore",
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum BackendSpec {
    Lbm(LbmConfig),
    Pepc(PepcConfig),
}

/// A declared monitor-bus viewer: a subscriber receiving the backend's
/// monitored output over a chosen transport, scored against a reaction
/// budget.
#[derive(Debug, Clone)]
pub(crate) struct ViewerSpec {
    pub(crate) name: String,
    pub(crate) link: Link,
    pub(crate) transport: Transport,
    pub(crate) budget: LoopBudget,
    /// Requested decimation (accept every Nth admissible frame).
    pub(crate) every: u32,
    /// Relay tier this viewer hangs off (`None` = the origin hub).
    pub(crate) relay: Option<String>,
}

/// A declared relay tier: a [`RelayHub`] fed over its own (faultable)
/// uplink, fanning the stream to children — deeper relays or viewers.
#[derive(Debug, Clone)]
pub(crate) struct RelaySpec {
    pub(crate) name: String,
    /// Parent relay name (`None` = fed directly by the origin hub).
    pub(crate) parent: Option<String>,
    pub(crate) uplink: Link,
    /// This tier's decimation rate (forward every Nth frame).
    pub(crate) every: u32,
    /// Default per-delivery send budget for children at this tier.
    pub(crate) child_budget: Option<usize>,
}

/// A deterministic end-to-end steering scenario (builder).
#[derive(Debug, Clone)]
pub struct Scenario {
    pub(crate) name: String,
    pub(crate) seed: u64,
    pub(crate) backend: BackendSpec,
    pub(crate) participants: Vec<(String, Link)>,
    /// Steering transport per participant (absent = loopback).
    pub(crate) transports: BTreeMap<String, Transport>,
    /// Monitor-bus viewers, in declaration order.
    pub(crate) viewers: Vec<ViewerSpec>,
    /// Relay tiers, in declaration order (parents before children).
    pub(crate) relays: Vec<RelaySpec>,
    /// Steering-session shards sharing one parameter authority.
    pub(crate) shards: usize,
    pub(crate) actions: Vec<(SimTime, Action)>,
    pub(crate) sample_every: SimTime,
    pub(crate) steps_per_sample: usize,
    pub(crate) duration: SimTime,
    /// Cut a process checkpoint at the first sample tick at/after every
    /// multiple of this interval (`None` = no checkpoints).
    pub(crate) checkpoint_every: Option<SimTime>,
    /// Executor pool the backend dispatches onto (`None` = the shared pool
    /// for the backend config's thread count). Never affects results.
    pub(crate) pool: Option<std::sync::Arc<gridsteer_exec::ExecPool>>,
}

/// One live monitor-bus viewer: its faulted link, its reaction-budget
/// scoring, and the byte-stable fold of everything it received.
struct ViewerState {
    name: String,
    transport: &'static str,
    /// The transport variant itself — a restore reconnects the viewer's
    /// monitor endpoint through it.
    kind: Transport,
    budget: LoopBudget,
    link: FaultyLink,
    monitor: LoopMonitor,
    delivered: u64,
    dropped: u64,
    digest: u64,
    /// Index into the engine's relay table (`None` = origin-attached).
    relay: Option<usize>,
    /// Oracle probe: hub-assigned seq of the last frame this viewer saw.
    last_seq: Option<u64>,
    /// Oracle probe: skip the seq-monotonicity check for the first
    /// delivery batch after an attach or a restore — keyframe-cache
    /// serves and stale-restore rewinds legitimately replay old seqs.
    fresh_attach: bool,
    /// False after a [`Action::ViewerLeave`] detached the subscription.
    online: bool,
    /// Hub-side statistics frozen at detach time (a live viewer reads
    /// them from its hub when the report is cut).
    final_stats: Option<MonitorStats>,
}

/// One live relay tier: its hub, its faulted uplink, and when the last
/// uplink batch landed (the departure base for this tier's children).
struct RelayNode {
    name: String,
    /// Index of the parent relay (`None` = fed by the origin hub).
    parent: Option<usize>,
    uplink: FaultyLink,
    hub: RelayHub,
    arrival: Option<SimTime>,
    uplink_dropped: u64,
}

/// One connected (or disconnected) scenario participant.
struct Client {
    name: String,
    link: FaultyLink,
    online: bool,
    /// Stats accumulated over previous connections (a rejoin replaces the
    /// link — and with it the live counters — with a fresh one).
    prior_stats: netsim::LinkStats,
}

impl Client {
    /// Lifetime delivery statistics across all of this participant's
    /// connections.
    fn total_stats(&self) -> netsim::LinkStats {
        let cur = self.link.stats();
        netsim::LinkStats {
            delivered: self.prior_stats.delivered + cur.delivered,
            dropped: self.prior_stats.dropped + cur.dropped,
        }
    }
}

enum Ev {
    Sample,
    Act(usize),
    ApplySteer {
        who: String,
        param: String,
        value: ParamValue,
    },
}

impl Scenario {
    /// A named scenario with defaults: a small LBM backend, 100 ms sample
    /// interval, one simulation step per sample, 3 s duration, seed 1.
    pub fn named(name: &str) -> Scenario {
        Scenario {
            name: name.to_string(),
            seed: 1,
            backend: BackendSpec::Lbm(LbmConfig::small()),
            participants: Vec::new(),
            transports: BTreeMap::new(),
            viewers: Vec::new(),
            relays: Vec::new(),
            shards: 1,
            actions: Vec::new(),
            sample_every: SimTime::from_millis(100),
            steps_per_sample: 1,
            duration: SimTime::from_secs(3),
            checkpoint_every: None,
            pool: None,
        }
    }

    /// Run the backend on an explicit executor pool — scenario sweeps and
    /// the `exp_*` binaries pass one shared pool so every run reuses the
    /// same persistent workers. The pool never changes results (fixed
    /// chunking; see `gridsteer_exec`).
    pub fn pool(mut self, pool: std::sync::Arc<gridsteer_exec::ExecPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The seed every deterministic stream in the run derives from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Use the LB two-fluid backend (its config seed is re-derived from
    /// the scenario seed).
    pub fn lbm(mut self, cfg: LbmConfig) -> Self {
        self.backend = BackendSpec::Lbm(cfg);
        self
    }

    /// Use the PEPC plasma backend (its config seed is re-derived from the
    /// scenario seed).
    pub fn pepc(mut self, cfg: PepcConfig) -> Self {
        self.backend = BackendSpec::Pepc(cfg);
        self
    }

    /// Add a participant present from t=0. The first participant becomes
    /// the session master. Steers over the in-process loopback transport.
    pub fn participant(mut self, name: &str, link: Link) -> Self {
        self.participants.push((name.to_string(), link));
        self
    }

    /// Add a t=0 participant steering over an explicit bus [`Transport`]
    /// (VISIT wire, OGSA service, COVISE module, UNICORE jobs…).
    pub fn participant_via(self, name: &str, link: Link, transport: Transport) -> Self {
        self.participant(name, link).route(name, transport)
    }

    /// Route a participant's steering traffic (present or future — also
    /// applies to mid-run [`Action::Join`]ers) over a bus transport.
    pub fn route(mut self, name: &str, transport: Transport) -> Self {
        self.transports.insert(name.to_string(), transport);
        self
    }

    /// Attach a monitor-bus viewer receiving the backend's monitored
    /// output over the given transport, with deliveries scored against
    /// the §4.2 desktop-render budget. Viewers are pure data-plane
    /// consumers: they do not join the steering session, but their links
    /// share the fault namespace (partition/loss/jitter actions find them
    /// by name).
    pub fn viewer_via(self, name: &str, link: Link, transport: Transport) -> Self {
        self.viewer_with_budget(name, link, transport, LoopBudget::DesktopRender)
    }

    /// Attach a viewer scored against an explicit [`LoopBudget`] (a CAVE
    /// wall wants `VrRender`; a post-processing site takes
    /// `PostProcessing`).
    pub fn viewer_with_budget(
        mut self,
        name: &str,
        link: Link,
        transport: Transport,
        budget: LoopBudget,
    ) -> Self {
        self.viewers.push(ViewerSpec {
            name: name.to_string(),
            link,
            transport,
            budget,
            every: 1,
            relay: None,
        });
        self
    }

    /// Attach a viewer under a declared relay tier instead of the origin
    /// hub: its frames arrive via the relay's uplink and the relay's own
    /// decimation/budget policy, and a late joiner is served keyframes
    /// from the relay's edge cache. Scored against the desktop-render
    /// budget.
    pub fn viewer_at_relay(
        mut self,
        name: &str,
        relay: &str,
        link: Link,
        transport: Transport,
    ) -> Self {
        self.viewers.push(ViewerSpec {
            name: name.to_string(),
            link,
            transport,
            budget: LoopBudget::DesktopRender,
            every: 1,
            relay: Some(relay.to_string()),
        });
        self
    }

    /// Declare a relay tier fed directly by the origin hub over the
    /// given uplink. Children (viewers via [`Scenario::viewer_at_relay`],
    /// deeper relays via [`Scenario::relay_under`]) fan out from it.
    pub fn relay(mut self, name: &str, uplink: Link) -> Self {
        self.relays.push(RelaySpec {
            name: name.to_string(),
            parent: None,
            uplink,
            every: 1,
            child_budget: None,
        });
        self
    }

    /// Declare a relay tier fed by another relay — tree composition. The
    /// parent must be declared first (tiers are pumped in declaration
    /// order, parents before children).
    pub fn relay_under(mut self, name: &str, parent: &str, uplink: Link) -> Self {
        self.relays.push(RelaySpec {
            name: name.to_string(),
            parent: Some(parent.to_string()),
            uplink,
            every: 1,
            child_budget: None,
        });
        self
    }

    /// Set a declared relay's decimation rate: forward only every `n`th
    /// frame downstream (keyframes always pass). Panics if no relay of
    /// that name was declared.
    pub fn relay_every(mut self, name: &str, n: u32) -> Self {
        let r = self
            .relays
            .iter_mut()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("relay_every: no relay named {name:?} declared"));
        r.every = n.max(1);
        self
    }

    /// Set a declared relay's default per-child send budget: at most
    /// this many frames per delivery per child, oldest shed first.
    /// Panics if no relay of that name was declared.
    pub fn relay_child_budget(mut self, name: &str, budget: usize) -> Self {
        let r = self
            .relays
            .iter_mut()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("relay_child_budget: no relay named {name:?} declared"));
        r.child_budget = Some(budget);
        self
    }

    /// Split the steering session into `n` shards: disjoint participant
    /// sets (round-robin by join order), each with its own master and
    /// audit log, all sharing one parameter authority through the same
    /// [`SteerHub`] registry. `1` (the default) is the classic single
    /// session; with more shards, session events are prefixed `s{i}`.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Request decimation for a declared viewer: accept only every `n`th
    /// admissible frame (the negotiated rate — a thin client's knob).
    /// Panics if no viewer of that name was declared (a silent no-op
    /// would leave the viewer at full rate with nothing in the report to
    /// say why).
    pub fn viewer_every(mut self, name: &str, n: u32) -> Self {
        let v = self
            .viewers
            .iter_mut()
            .find(|v| v.name == name)
            .unwrap_or_else(|| panic!("viewer_every: no viewer named {name:?} declared"));
        v.every = n.max(1);
        self
    }

    /// Sample (and step) interval.
    pub fn sample_every(mut self, t: SimTime) -> Self {
        self.sample_every = t;
        self
    }

    /// Simulation steps per sample tick.
    pub fn steps_per_sample(mut self, n: usize) -> Self {
        self.steps_per_sample = n.max(1);
        self
    }

    /// Virtual run length (samples stop after this time).
    pub fn duration(mut self, t: SimTime) -> Self {
        self.duration = t;
        self
    }

    /// Cut a process checkpoint every `t` of virtual time (at the end of
    /// the first sample tick at/after each due point). The first cut is
    /// a full snapshot in the `gridsteer_ckpt` wire format; later cuts
    /// are dirty-chunk deltas against the previous one. Cutting is
    /// side-effect free: it draws no randomness, logs nothing, and never
    /// changes the report — a run with checkpoints enabled digests
    /// byte-identically to one without.
    pub fn checkpoint_every(mut self, t: SimTime) -> Self {
        assert!(t > SimTime::ZERO, "checkpoint interval must be positive");
        self.checkpoint_every = Some(t);
        self
    }

    /// Schedule a raw [`Action`] at virtual time `t`.
    pub fn at(mut self, t: SimTime, action: Action) -> Self {
        self.actions.push((t, action));
        self
    }

    /// Sugar: a participant joins mid-run.
    pub fn join_at(self, t: SimTime, name: &str, link: Link) -> Self {
        self.at(
            t,
            Action::Join {
                name: name.to_string(),
                link,
            },
        )
    }

    /// Sugar: a participant leaves mid-run.
    pub fn leave_at(self, t: SimTime, name: &str) -> Self {
        self.at(
            t,
            Action::Leave {
                name: name.to_string(),
            },
        )
    }

    /// Sugar: an f64 steer command is sent.
    pub fn steer_at(self, t: SimTime, who: &str, param: &str, value: f64) -> Self {
        self.steer_value_at(t, who, param, ParamValue::F64(value))
    }

    /// Sugar: a typed steer command is sent.
    pub fn steer_value_at(self, t: SimTime, who: &str, param: &str, value: ParamValue) -> Self {
        self.at(
            t,
            Action::Steer {
                who: who.to_string(),
                param: param.to_string(),
                value,
            },
        )
    }

    /// Sugar: the master passes the token.
    pub fn pass_master_at(self, t: SimTime, from: &str, to: &str) -> Self {
        self.at(
            t,
            Action::PassMaster {
                from: from.to_string(),
                to: to.to_string(),
            },
        )
    }

    /// Sugar: partition a participant's link.
    pub fn partition_at(self, t: SimTime, who: &str) -> Self {
        self.at(
            t,
            Action::Partition {
                who: who.to_string(),
            },
        )
    }

    /// Sugar: heal a participant's link.
    pub fn heal_at(self, t: SimTime, who: &str) -> Self {
        self.at(
            t,
            Action::Heal {
                who: who.to_string(),
            },
        )
    }

    /// Sugar: inject extra loss on a participant's link.
    pub fn loss_at(self, t: SimTime, who: &str, ppm: u32) -> Self {
        self.at(
            t,
            Action::SetLoss {
                who: who.to_string(),
                ppm,
            },
        )
    }

    /// Sugar: inject extra jitter on a participant's link.
    pub fn jitter_at(self, t: SimTime, who: &str, jitter: SimTime) -> Self {
        self.at(
            t,
            Action::SetJitter {
                who: who.to_string(),
                jitter,
            },
        )
    }

    /// Sugar: the simulation process crashes at `t`.
    pub fn crash_at(self, t: SimTime) -> Self {
        self.at(t, Action::Crash)
    }

    /// Sugar: the process restarts from the latest checkpoint at `t`.
    pub fn restore_at(self, t: SimTime) -> Self {
        self.at(t, Action::Restore)
    }

    /// Sugar: migrate the computation between `sc2003` sites.
    pub fn migrate_at(self, t: SimTime, from: &str, to: &str) -> Self {
        self.at(
            t,
            Action::Migrate {
                from: from.to_string(),
                to: to.to_string(),
            },
        )
    }

    /// Sugar: a monitor viewer detaches mid-run.
    pub fn viewer_leave_at(self, t: SimTime, name: &str) -> Self {
        self.at(
            t,
            Action::ViewerLeave {
                name: name.to_string(),
            },
        )
    }

    /// Sugar: a monitor viewer attaches to the origin hub mid-run.
    pub fn viewer_join_at(self, t: SimTime, name: &str, link: Link, transport: Transport) -> Self {
        self.at(
            t,
            Action::ViewerJoin {
                name: name.to_string(),
                link,
                transport,
                relay: None,
            },
        )
    }

    /// Sugar: a monitor viewer attaches under a relay tier mid-run.
    pub fn viewer_join_relay_at(
        self,
        t: SimTime,
        name: &str,
        relay: &str,
        link: Link,
        transport: Transport,
    ) -> Self {
        self.at(
            t,
            Action::ViewerJoin {
                name: name.to_string(),
                link,
                transport,
                relay: Some(relay.to_string()),
            },
        )
    }

    /// Check the built script for structural defects — duplicate
    /// declarations, dangling relay references, actions scheduled past the
    /// duration, a restore with no checkpoint chain or no crash in effect.
    /// [`Scenario::run`] calls this first and panics with the error; the
    /// fuzzer calls it directly to keep its valid/invalid boundary crisp.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.sample_every <= SimTime::ZERO {
            return Err(ScenarioError::ZeroSampleInterval);
        }
        let mut participant_names: Vec<&str> = Vec::new();
        for (name, _) in &self.participants {
            if participant_names.contains(&name.as_str()) {
                return Err(ScenarioError::DuplicateParticipant(name.clone()));
            }
            participant_names.push(name);
        }
        let mut viewer_names: Vec<&str> = Vec::new();
        for v in &self.viewers {
            if viewer_names.contains(&v.name.as_str()) {
                return Err(ScenarioError::DuplicateViewer(v.name.clone()));
            }
            viewer_names.push(&v.name);
        }
        let mut relay_names: Vec<&str> = Vec::new();
        for r in &self.relays {
            if relay_names.contains(&r.name.as_str()) {
                return Err(ScenarioError::DuplicateRelay(r.name.clone()));
            }
            if let Some(parent) = &r.parent {
                // declaration order is pump order: parents must come first
                if !relay_names.contains(&parent.as_str()) {
                    return Err(ScenarioError::UnknownRelayParent {
                        relay: r.name.clone(),
                        parent: parent.clone(),
                    });
                }
            }
            relay_names.push(&r.name);
        }
        // fault actions resolve targets across one shared namespace
        for v in &viewer_names {
            if participant_names.contains(v) {
                return Err(ScenarioError::NameCollision(v.to_string()));
            }
        }
        for r in &relay_names {
            if participant_names.contains(r) || viewer_names.contains(r) {
                return Err(ScenarioError::NameCollision(r.to_string()));
            }
        }
        for v in &self.viewers {
            if let Some(relay) = &v.relay {
                if !relay_names.contains(&relay.as_str()) {
                    return Err(ScenarioError::UnknownRelay {
                        viewer: v.name.clone(),
                        relay: relay.clone(),
                    });
                }
            }
        }
        // replay the schedule in engine order (time, then insertion) to
        // check the crash/restore protocol statically
        let mut order: Vec<usize> = (0..self.actions.len()).collect();
        order.sort_by_key(|&i| self.actions[i].0);
        let mut crashed = false;
        for &i in &order {
            let (t, action) = &self.actions[i];
            if *t > self.duration {
                return Err(ScenarioError::ActionAfterEnd {
                    at: *t,
                    action: action.label(),
                    duration: self.duration,
                });
            }
            match action {
                Action::Crash => crashed = true,
                Action::Restore => {
                    if self.checkpoint_every.is_none() {
                        return Err(ScenarioError::RestoreWithoutCheckpoint);
                    }
                    if !crashed {
                        return Err(ScenarioError::RestoreWithoutCrash { at: *t });
                    }
                    crashed = false;
                }
                Action::ViewerJoin {
                    name,
                    relay: Some(relay),
                    ..
                } if !relay_names.contains(&relay.as_str()) => {
                    return Err(ScenarioError::UnknownRelay {
                        viewer: name.clone(),
                        relay: relay.clone(),
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The scenario's name.
    pub fn label(&self) -> &str {
        &self.name
    }

    /// The scheduled actions, in insertion order (script introspection for
    /// the fuzzer/shrinker).
    pub fn actions(&self) -> &[(SimTime, Action)] {
        &self.actions
    }

    /// The sample interval.
    pub fn sample_interval(&self) -> SimTime {
        self.sample_every
    }

    /// The scripted run length.
    pub fn duration_of(&self) -> SimTime {
        self.duration
    }

    /// The checkpoint cadence, if checkpointing is on.
    pub fn checkpoint_interval(&self) -> Option<SimTime> {
        self.checkpoint_every
    }

    /// Number of sample ticks the engine will schedule: every run ends
    /// with `broadcasts + broadcasts_skipped` equal to this (the fuzzer's
    /// loop-accounting invariant).
    pub fn ticks(&self) -> u64 {
        if self.sample_every <= SimTime::ZERO {
            return 0;
        }
        self.duration.as_nanos() / self.sample_every.as_nanos()
    }

    /// Number of session shards the run is split into.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Declared t=0 participant names, in declaration order.
    pub fn participant_names(&self) -> Vec<&str> {
        self.participants.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Declared viewer names, in declaration order.
    pub fn viewer_names(&self) -> Vec<&str> {
        self.viewers.iter().map(|v| v.name.as_str()).collect()
    }

    /// Declared relay names, in declaration order.
    pub fn relay_names(&self) -> Vec<&str> {
        self.relays.iter().map(|r| r.name.as_str()).collect()
    }

    /// A copy without the `idx`th scheduled action (shrinker hook; no-op
    /// copy if out of range).
    pub fn without_action(&self, idx: usize) -> Scenario {
        let mut s = self.clone();
        if idx < s.actions.len() {
            s.actions.remove(idx);
        }
        s
    }

    /// A copy without one t=0 participant declaration (shrinker hook).
    /// Actions that reference the name stay — the engine logs them as
    /// misses, which is valid behaviour.
    pub fn without_participant(&self, name: &str) -> Scenario {
        let mut s = self.clone();
        s.participants.retain(|(n, _)| n != name);
        s.transports.remove(name);
        s
    }

    /// A copy without one declared viewer (shrinker hook).
    pub fn without_viewer(&self, name: &str) -> Scenario {
        let mut s = self.clone();
        s.viewers.retain(|v| v.name != name);
        s
    }

    /// A copy without one declared relay tier (shrinker hook). The copy
    /// may fail [`Scenario::validate`] if children still reference the
    /// tier — the shrinker skips such candidates.
    pub fn without_relay(&self, name: &str) -> Scenario {
        let mut s = self.clone();
        s.relays.retain(|r| r.name != name);
        s
    }

    /// A copy with checkpointing off (shrinker hook). The copy fails
    /// validation if a restore action remains.
    pub fn without_checkpoints(&self) -> Scenario {
        let mut s = self.clone();
        s.checkpoint_every = None;
        s
    }

    /// Execute the scenario and return its report. Running the same built
    /// scenario twice yields byte-identical reports.
    pub fn run(&self) -> ScenarioReport {
        if let Err(e) = self.validate() {
            panic!("scenario {:?} is malformed: {e}", self.name);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let backend_seed = rng.next_u64();
        let mut backend: Box<dyn ScenarioBackend> = match &self.backend {
            BackendSpec::Lbm(cfg) => {
                let mut cfg = cfg.clone();
                cfg.seed = backend_seed;
                Box::new(LbmBackend::new(cfg))
            }
            BackendSpec::Pepc(cfg) => {
                let mut cfg = cfg.clone();
                cfg.seed = backend_seed;
                Box::new(PepcBackend::new(cfg))
            }
        };
        if let Some(pool) = &self.pool {
            backend.set_pool(pool.clone());
        }
        // one bus hub per run: every session shard shares its registry
        // (one parameter authority), every participant attaches an
        // endpoint of their routed transport. Shards own disjoint
        // participant sets, assigned round-robin by join order.
        let hub = SteerHub::new(backend.param_specs());
        let mut sessions: Vec<SteeringSession> = (0..self.shards)
            .map(|_| SteeringSession::with_registry(hub.registry()))
            .collect();
        let mut shard_of: BTreeMap<String, usize> = BTreeMap::new();
        let mut next_shard = 0usize;
        let mut endpoints: BTreeMap<String, Box<dyn SteerEndpoint>> = BTreeMap::new();
        let mut engine_events: Vec<String> = Vec::new();
        let (net, sites) = NetModel::sc2003();
        let mut clients: Vec<Client> = Vec::new();
        for (name, link) in &self.participants {
            join_client(
                JoinCtx {
                    clients: &mut clients,
                    sessions: &mut sessions,
                    shard_of: &mut shard_of,
                    next_shard: &mut next_shard,
                    endpoints: &mut endpoints,
                    hub: &hub,
                    transports: &self.transports,
                    engine_events: &mut engine_events,
                    now: SimTime::ZERO,
                },
                name,
                link,
                &mut rng,
            );
        }

        // the monitor hub: the backend publishes its step-boundary output
        // here, and every declared viewer subscribes over its transport
        // with a negotiated capability set (logged — part of the digest)
        let mhub = MonitorHub::new();
        // relay tiers first (parents must exist before children attach):
        // each relay subscribes on its parent surface as an ordinary
        // endpoint — the engine drains that collector and ships the batch
        // over the relay's own faulted uplink
        let mut relays: Vec<RelayNode> = Vec::new();
        for spec in &self.relays {
            let parent = spec.parent.as_ref().map(|p| {
                relays.iter().position(|r| r.name == *p).unwrap_or_else(|| {
                    panic!(
                        "relay_under: parent {p:?} of {:?} must be declared first",
                        spec.name
                    )
                })
            });
            let relay_hub = RelayHub::new(RelayPolicy {
                deliver_every: spec.every,
                default_child_budget: spec.child_budget,
            });
            let negotiated = match parent {
                None => mhub.attach_endpoint(
                    &spec.name,
                    Box::new(LoopbackMonitor::new()),
                    &RelayHub::uplink_caps(),
                ),
                Some(p) => relays[p].hub.attach_child_with_budget(
                    &spec.name,
                    Box::new(LoopbackMonitor::new()),
                    &RelayHub::uplink_caps(),
                    None,
                ),
            };
            engine_events.push(format!(
                "{} attach-relay {} parent={} {}",
                SimTime::ZERO,
                spec.name,
                spec.parent.as_deref().unwrap_or("origin"),
                negotiated.render()
            ));
            let mut base = spec.uplink.clone();
            base.seed = rng.next_u64();
            let fault_seed = rng.next_u64();
            relays.push(RelayNode {
                name: spec.name.clone(),
                parent,
                uplink: FaultyLink::new(base, fault_seed),
                hub: relay_hub,
                arrival: None,
                uplink_dropped: 0,
            });
        }
        let mut viewers: Vec<ViewerState> = Vec::new();
        for spec in &self.viewers {
            attach_viewer(
                &mut viewers,
                &mhub,
                &relays,
                &mut engine_events,
                &mut rng,
                spec,
                SimTime::ZERO,
            );
        }

        let mut queue: EventQueue<Ev> = EventQueue::new();
        for (i, (t, _)) in self.actions.iter().enumerate() {
            queue.schedule(*t, Ev::Act(i));
        }
        if self.sample_every <= self.duration {
            queue.schedule(self.sample_every, Ev::Sample);
        }

        let mut post = LoopMonitor::new(LoopBudget::PostProcessing);
        let mut migrations: Vec<MigrationRecord> = Vec::new();
        let mut broadcasts = 0u64;
        let mut skipped = 0u64;
        let mut steers_applied = 0u64;
        let mut steers_lost = 0u64;
        let mut pause_until = SimTime::ZERO;
        let mut processed = 0usize;
        // invariant-oracle probes: structural properties checked as the
        // run unfolds. Not part of the rendered report (digests are
        // unchanged) — the fuzzer reads them off the report afterwards.
        let mut probe_violations: Vec<String> = Vec::new();
        // crash-recovery state: while `crashed`, sample ticks black out;
        // the checkpoint chain is one full snapshot blob plus deltas
        let mut crashed = false;
        let mut ckpt_chain: Vec<Vec<u8>> = Vec::new();
        let mut last_snap: Option<Snapshot> = None;
        let mut last_ckpt: Option<SimTime> = None;

        while let Some(ev) = queue.pop() {
            processed += 1;
            if processed > MAX_EVENTS {
                engine_events.push(format!("{} runaway-guard", ev.at));
                break;
            }
            let now = ev.at;
            match ev.payload {
                Ev::Sample => {
                    if now + self.sample_every <= self.duration {
                        queue.schedule(now + self.sample_every, Ev::Sample);
                    }
                    if crashed || now < pause_until {
                        skipped += 1;
                        continue;
                    }
                    // the step boundary: staged batches apply atomically,
                    // in staging order, before the physics advances
                    commit_staged(
                        &hub,
                        &mut sessions,
                        &shard_of,
                        backend.as_mut(),
                        &mut steers_applied,
                        &mut steers_lost,
                        &mut engine_events,
                        now,
                    );
                    // oracle probe: the steering invariant — exactly one
                    // master per non-empty shard — must hold at every
                    // observable step boundary
                    for (si, s) in sessions.iter().enumerate() {
                        let masters = s.master_count();
                        if masters != usize::from(!s.is_empty()) {
                            probe_violations.push(format!(
                                "{now} shard {si}: {masters} masters among {} participants",
                                s.len()
                            ));
                        }
                    }
                    backend.advance(self.steps_per_sample);
                    let bytes = backend.sample_bytes();
                    for s in sessions.iter_mut() {
                        s.broadcast_sample(bytes);
                    }
                    broadcasts += 1;
                    let mut earliest: Option<SimTime> = None;
                    let mut latest: Option<SimTime> = None;
                    for c in clients.iter_mut().filter(|c| c.online) {
                        if let Some(arrival) = c.link.deliver(now, bytes) {
                            post.record(arrival.saturating_since(now));
                            earliest = Some(earliest.map_or(arrival, |e: SimTime| {
                                if arrival < e {
                                    arrival
                                } else {
                                    e
                                }
                            }));
                            latest = Some(latest.map_or(arrival, |l: SimTime| l.max(arrival)));
                        }
                    }
                    if let (Some(lo), Some(hi)) = (earliest, latest) {
                        post.record_skew(hi.saturating_since(lo));
                    }
                    // the data plane: the backend publishes its monitored
                    // quantities (one batch per step boundary), the hub
                    // fans out per negotiated caps, and each viewer's
                    // admitted frames ride its faulted link — every
                    // arrival scored against that viewer's budget.
                    // Viewer-less scenarios skip the whole path: sampling
                    // the monitor surface costs full-lattice passes.
                    if !viewers.is_empty() || !relays.is_empty() {
                        backend.publish_monitor(&mhub);
                    }
                    // relay tick, top-down (parents precede children by
                    // declaration): drain the tier's collector on its
                    // parent surface, ship the whole batch as one
                    // envelope over the faulted uplink, and on arrival
                    // fan it out to the tier's children
                    for i in 0..relays.len() {
                        let parent = relays[i].parent;
                        let (frames, depart) = match parent {
                            None => (mhub.recv(&relays[i].name), now),
                            Some(p) => (
                                relays[p].hub.recv_child(&relays[i].name),
                                relays[p].arrival.unwrap_or(now),
                            ),
                        };
                        if frames.is_empty() {
                            continue;
                        }
                        let bytes: usize = frames.iter().map(|f| f.wire_size()).sum();
                        match relays[i].uplink.deliver(depart, bytes) {
                            Some(arrival) => {
                                relays[i].arrival = Some(arrival);
                                relays[i].hub.ingest(&frames);
                            }
                            None => relays[i].uplink_dropped += frames.len() as u64,
                        }
                    }
                    for v in viewers.iter_mut() {
                        if !v.online {
                            continue;
                        }
                        let (frames, depart) = match v.relay {
                            None => (mhub.recv(&v.name), now),
                            Some(i) => (
                                relays[i].hub.recv_child(&v.name),
                                relays[i].arrival.unwrap_or(now),
                            ),
                        };
                        let had_frames = !frames.is_empty();
                        for frame in frames {
                            match v.link.deliver(depart, frame.wire_size()) {
                                Some(arrival) => {
                                    // oracle probe: hub seqs must reach a
                                    // subscriber strictly increasing
                                    // (gaps from decimation/loss are fine)
                                    if !v.fresh_attach {
                                        if let Some(prev) = v.last_seq {
                                            if frame.seq <= prev {
                                                probe_violations.push(format!(
                                                    "{now} viewer {}: seq {} after {}",
                                                    v.name, frame.seq, prev
                                                ));
                                            }
                                        }
                                    }
                                    v.last_seq = Some(frame.seq);
                                    v.monitor.record(arrival.saturating_since(now));
                                    v.delivered += 1;
                                    v.digest = frame.fold_fnv(v.digest);
                                }
                                None => v.dropped += 1,
                            }
                        }
                        if had_frames {
                            v.fresh_attach = false;
                        }
                    }
                    // checkpoint cut, at the very end of the tick: the
                    // boundary state (post-commit, post-advance,
                    // post-fanout, queues drained) is exactly what a
                    // restore resumes from. Cutting reads state under
                    // locks and nothing else — no RNG draws, no events.
                    if let Some(interval) = self.checkpoint_every {
                        let due = last_ckpt.map_or(interval, |t| t + interval);
                        if now >= due {
                            let mut snap = Snapshot::new(ckpt_chain.len() as u64, now.as_nanos());
                            save_process(
                                &mut snap,
                                backend.as_ref(),
                                &hub,
                                &sessions,
                                &mhub,
                                &relays,
                            );
                            let blob = match &last_snap {
                                None => snap.encode(),
                                Some(base) => snap.encode_delta(base),
                            };
                            ckpt_chain.push(blob);
                            last_snap = Some(snap);
                            last_ckpt = Some(now);
                        }
                    }
                }
                Ev::Act(i) => {
                    let action = self.actions[i].1.clone();
                    apply_action(ActionCtx {
                        action,
                        now,
                        clients: &mut clients,
                        viewers: &mut viewers,
                        relays: &mut relays,
                        mhub: &mhub,
                        sessions: &mut sessions,
                        shard_of: &mut shard_of,
                        next_shard: &mut next_shard,
                        backend: backend.as_mut(),
                        queue: &mut queue,
                        rng: &mut rng,
                        net: &net,
                        sites: &sites,
                        engine_events: &mut engine_events,
                        migrations: &mut migrations,
                        steers_lost: &mut steers_lost,
                        pause_until: &mut pause_until,
                        endpoints: &mut endpoints,
                        hub: &hub,
                        transports: &self.transports,
                        crashed: &mut crashed,
                        ckpt_chain: &ckpt_chain,
                    });
                }
                Ev::ApplySteer { who, param, value } => {
                    match shard_of.get(&who).and_then(|&s| sessions[s].index_of(&who)) {
                        Some(_) => {
                            let ep = endpoints
                                .get_mut(&who)
                                .expect("joined participants have endpoints");
                            // ship through the middleware; staged until the
                            // next step boundary
                            if let Err(e) = ep.set_batch(vec![SteerCommand::new(&param, value)]) {
                                steers_lost += 1;
                                engine_events
                                    .push(format!("{now} steer-unroutable {who} {param}: {e}"));
                            }
                        }
                        None => {
                            steers_lost += 1;
                            engine_events.push(format!("{now} steer-sender-left {who}"));
                        }
                    }
                }
            }
        }

        // trailing boundary: steers arriving after the last sample tick
        // still commit before the report is cut
        commit_staged(
            &hub,
            &mut sessions,
            &shard_of,
            backend.as_mut(),
            &mut steers_applied,
            &mut steers_lost,
            &mut engine_events,
            self.duration,
        );

        let mut latencies = post.samples().to_vec();
        latencies.sort();
        let pct = |q: f64| -> SimTime {
            if latencies.is_empty() {
                SimTime::ZERO
            } else {
                latencies[((latencies.len() - 1) as f64 * q).round() as usize]
            }
        };
        let loop_report = post.report();
        let viewer_records: Vec<ViewerRecord> = viewers
            .iter()
            .map(|v| {
                let lr = v.monitor.report();
                // detached viewers report the stats frozen at leave time
                let stats = v.final_stats.unwrap_or_else(|| {
                    match v.relay {
                        None => mhub.stats_of(&v.name),
                        Some(i) => relays[i].hub.stats_of_child(&v.name),
                    }
                    .unwrap_or_default()
                });
                ViewerRecord {
                    name: v.name.clone(),
                    transport: v.transport,
                    budget: v.budget.name(),
                    delivered: v.delivered,
                    dropped: v.dropped,
                    decimated: stats.decimated,
                    filtered: stats.filtered,
                    budget_violations: lr.violations,
                    max_latency: lr.max,
                    frames_digest: format!("{:016x}", v.digest),
                }
            })
            .collect();
        let relay_records: Vec<RelayRecord> = relays
            .iter()
            .map(|r| {
                let rep = r.hub.report();
                RelayRecord {
                    name: r.name.clone(),
                    parent: r.parent.map(|p| relays[p].name.clone()),
                    ingested: rep.ingested,
                    forwarded: rep.forwarded,
                    decimated: rep.decimated,
                    shed: rep.shed,
                    keyframes_served: rep.keyframes_served,
                    uplink_dropped: r.uplink_dropped,
                }
            })
            .collect();
        let session_events: Vec<String> = if self.shards == 1 {
            sessions[0].events().iter().map(render_event).collect()
        } else {
            sessions
                .iter()
                .enumerate()
                .flat_map(|(i, s)| {
                    s.events()
                        .iter()
                        .map(move |e| format!("s{i} {}", render_event(e)))
                })
                .collect()
        };
        ScenarioReport {
            name: self.name.clone(),
            seed: self.seed,
            backend: backend.kind(),
            broadcasts,
            broadcasts_skipped: skipped,
            p50: pct(0.5),
            p90: pct(0.9),
            p99: pct(0.99),
            max: loop_report.max,
            max_skew: loop_report.max_skew,
            within_budget: loop_report.within_budget,
            within_skew: loop_report.within_skew,
            post_budget_violations: loop_report.violations,
            steers_applied,
            steers_lost,
            monitor_frames: mhub.frames_published(),
            viewers: viewer_records,
            relays: relay_records,
            migrations,
            links: clients
                .iter()
                .map(|c| (c.name.clone(), c.total_stats()))
                .collect(),
            session_events,
            engine_events,
            final_progress: backend.progress(),
            probe_violations: {
                probe_violations.extend(hub.probe_violations());
                probe_violations
            },
        }
    }
}

/// Everything one action application touches (bundled to keep the
/// dispatcher signature sane).
struct ActionCtx<'a> {
    action: Action,
    now: SimTime,
    clients: &'a mut Vec<Client>,
    viewers: &'a mut Vec<ViewerState>,
    relays: &'a mut Vec<RelayNode>,
    mhub: &'a MonitorHub,
    sessions: &'a mut Vec<SteeringSession>,
    shard_of: &'a mut BTreeMap<String, usize>,
    next_shard: &'a mut usize,
    backend: &'a mut dyn ScenarioBackend,
    queue: &'a mut EventQueue<Ev>,
    rng: &'a mut StdRng,
    net: &'a NetModel,
    sites: &'a std::collections::HashMap<String, netsim::SiteId>,
    engine_events: &'a mut Vec<String>,
    migrations: &'a mut Vec<MigrationRecord>,
    steers_lost: &'a mut u64,
    pause_until: &'a mut SimTime,
    endpoints: &'a mut BTreeMap<String, Box<dyn SteerEndpoint>>,
    hub: &'a SteerHub,
    transports: &'a BTreeMap<String, Transport>,
    crashed: &'a mut bool,
    ckpt_chain: &'a [Vec<u8>],
}

fn apply_action(ctx: ActionCtx<'_>) {
    let ActionCtx {
        action,
        now,
        clients,
        viewers,
        relays,
        mhub,
        sessions,
        shard_of,
        next_shard,
        backend,
        queue,
        rng,
        net,
        sites,
        engine_events,
        migrations,
        steers_lost,
        pause_until,
        endpoints,
        hub,
        transports,
        crashed,
        ckpt_chain,
    } = ctx;
    match action {
        Action::Join { name, link } => {
            join_client(
                JoinCtx {
                    clients,
                    sessions,
                    shard_of,
                    next_shard,
                    endpoints,
                    hub,
                    transports,
                    engine_events,
                    now,
                },
                &name,
                &link,
                rng,
            );
        }
        Action::Leave { name } => {
            let left = shard_of
                .get(&name)
                .is_some_and(|&s| sessions[s].leave_by_name(&name));
            if left {
                if let Some(c) = clients.iter_mut().find(|c| c.name == name) {
                    c.online = false;
                }
            } else {
                engine_events.push(format!("{now} leave-miss {name}"));
            }
        }
        Action::PassMaster { from, to } => {
            match (shard_of.get(&from).copied(), shard_of.get(&to).copied()) {
                (Some(a), Some(b)) if a != b => {
                    // shards own disjoint participant sets: the token
                    // never crosses a shard boundary
                    engine_events.push(format!("{now} pass-shard-miss {from}->{to}"));
                }
                (Some(a), Some(_)) => {
                    let session = &mut sessions[a];
                    match (session.index_of(&from), session.index_of(&to)) {
                        (Some(f), Some(t)) => {
                            if !session.pass_master(f, t) {
                                engine_events.push(format!("{now} pass-refused {from}->{to}"));
                            }
                        }
                        _ => engine_events.push(format!("{now} pass-miss {from}->{to}")),
                    }
                }
                _ => engine_events.push(format!("{now} pass-miss {from}->{to}")),
            }
        }
        Action::Steer { who, param, value } => {
            match clients.iter_mut().find(|c| c.name == who && c.online) {
                Some(c) => match c.link.deliver(now, STEER_BYTES) {
                    Some(arrival) => {
                        queue.schedule(arrival, Ev::ApplySteer { who, param, value });
                    }
                    None => {
                        *steers_lost += 1;
                        engine_events.push(format!("{now} steer-lost {who} {param}"));
                    }
                },
                None => {
                    *steers_lost += 1;
                    engine_events.push(format!("{now} steer-offline {who} {param}"));
                }
            }
        }
        Action::Partition { who } => match fault_link(clients, viewers, relays, &who) {
            Some(link) => {
                link.partition();
                engine_events.push(format!("{now} partition {who}"));
            }
            None => engine_events.push(format!("{now} fault-miss {who}")),
        },
        Action::Heal { who } => match fault_link(clients, viewers, relays, &who) {
            Some(link) => {
                link.heal();
                engine_events.push(format!("{now} heal {who}"));
            }
            None => engine_events.push(format!("{now} fault-miss {who}")),
        },
        Action::SetLoss { who, ppm } => match fault_link(clients, viewers, relays, &who) {
            Some(link) => {
                link.set_extra_loss_ppm(ppm);
                engine_events.push(format!("{now} loss {who} {ppm}ppm"));
            }
            None => engine_events.push(format!("{now} fault-miss {who}")),
        },
        Action::SetJitter { who, jitter } => match fault_link(clients, viewers, relays, &who) {
            Some(link) => {
                link.set_extra_jitter(jitter);
                engine_events.push(format!("{now} jitter {who} {jitter}"));
            }
            None => engine_events.push(format!("{now} fault-miss {who}")),
        },
        Action::Migrate { from, to } => match (sites.get(&from), sites.get(&to)) {
            (Some(&a), Some(&b)) => {
                let bytes = backend.checkpoint_roundtrip();
                let mut link = net.link(a, b);
                link.seed = rng.next_u64();
                let arrival = link
                    .deliver(now, bytes)
                    .unwrap_or_else(|| link.nominal_arrival(now, bytes));
                let gap = arrival.saturating_since(now) + RESTART_OVERHEAD;
                *pause_until = (now + gap).max(*pause_until);
                engine_events.push(format!(
                    "{now} migrate {from}->{to} bytes={bytes} gap={gap}"
                ));
                migrations.push(MigrationRecord {
                    from,
                    to,
                    bytes,
                    gap,
                });
            }
            _ => engine_events.push(format!("{now} migrate-miss {from}->{to}")),
        },
        Action::ViewerLeave { name } => {
            match viewers.iter_mut().find(|v| v.name == name && v.online) {
                Some(v) => {
                    v.final_stats = match v.relay {
                        None => mhub.detach(&name),
                        Some(i) => relays[i].hub.detach_child(&name),
                    };
                    v.online = false;
                    engine_events.push(format!("{now} viewer-leave {name}"));
                }
                None => engine_events.push(format!("{now} viewer-leave-miss {name}")),
            }
        }
        Action::Crash => {
            // the process dies silently: no event, no counter — transparent
            // recovery means the report cannot record the crash itself
            *crashed = true;
        }
        Action::Restore => {
            assert!(*crashed, "restore_at without a preceding crash_at");
            restore_process(RestoreCtx {
                chain: ckpt_chain,
                backend,
                hub,
                sessions,
                endpoints,
                transports,
                mhub,
                relays,
                viewers,
            });
            // a stale restore rewinds hub seq numbering — the first
            // delivery batch each viewer sees afterwards may replay
            // seqs, which is recovery, not a monotonicity violation
            for v in viewers.iter_mut() {
                v.last_seq = None;
                v.fresh_attach = true;
            }
            *crashed = false;
        }
        Action::ViewerJoin {
            name,
            link,
            transport,
            relay,
        } => {
            let known_relay = relay
                .as_ref()
                .is_none_or(|r| relays.iter().any(|n| n.name == *r));
            if viewers.iter().any(|v| v.name == name && v.online) || !known_relay {
                engine_events.push(format!("{now} viewer-join-miss {name}"));
            } else {
                attach_viewer(
                    viewers,
                    mhub,
                    relays,
                    engine_events,
                    rng,
                    &ViewerSpec {
                        name,
                        link,
                        transport,
                        budget: LoopBudget::DesktopRender,
                        every: 1,
                        relay,
                    },
                    now,
                );
            }
        }
    }
}

/// Serialize the whole simulation-process state into one snapshot:
/// backend fields (raw float bits), the steer hub (registry, staged
/// batches, counters), every session shard, the monitor hub and each
/// relay tier. Pure reads — the running state is not perturbed.
fn save_process(
    snap: &mut Snapshot,
    backend: &dyn ScenarioBackend,
    hub: &SteerHub,
    sessions: &[SteeringSession],
    mhub: &MonitorHub,
    relays: &[RelayNode],
) {
    backend.save_sections(snap);
    hub.save_sections(snap, "steer");
    for (i, s) in sessions.iter().enumerate() {
        s.save_sections(snap, &format!("session/{i}"));
    }
    mhub.save_sections(snap, "monitor");
    for r in relays {
        r.hub.save_sections(snap, &format!("relay/{}", r.name));
    }
}

/// Everything a process restore rebuilds.
struct RestoreCtx<'a> {
    chain: &'a [Vec<u8>],
    backend: &'a mut dyn ScenarioBackend,
    hub: &'a SteerHub,
    sessions: &'a mut [SteeringSession],
    endpoints: &'a mut BTreeMap<String, Box<dyn SteerEndpoint>>,
    transports: &'a BTreeMap<String, Transport>,
    mhub: &'a MonitorHub,
    relays: &'a [RelayNode],
    viewers: &'a [ViewerState],
}

/// Rebuild the crashed process from its checkpoint chain: decode the
/// full snapshot, apply every delta, then restore state behind the
/// existing shared handles (backend in place, hub registry and state,
/// session shards, monitor hub, relay tiers). Steering clients and
/// monitor viewers reconnect — fresh endpoints over their declared
/// transports, negotiated against the *saved* capability sets — so
/// sequence numbering and delivery schedules continue exactly where the
/// checkpoint cut them. Draws no randomness and logs nothing: recovery
/// from an up-to-date checkpoint is invisible in the report.
fn restore_process(ctx: RestoreCtx<'_>) {
    let RestoreCtx {
        chain,
        backend,
        hub,
        sessions,
        endpoints,
        transports,
        mhub,
        relays,
        viewers,
    } = ctx;
    assert!(
        !chain.is_empty(),
        "restore_at: no checkpoint was cut — set checkpoint_every on the scenario"
    );
    let mut snap = Snapshot::decode(&chain[0]).expect("checkpoint chain head decodes");
    for delta in &chain[1..] {
        snap = Snapshot::decode_delta(delta, &snap).expect("checkpoint delta chain applies");
    }
    backend
        .restore_sections(&snap)
        .expect("backend state restores");
    hub.restore_sections(&snap, "steer")
        .expect("steer hub restores");
    for (i, s) in sessions.iter_mut().enumerate() {
        *s = SteeringSession::restore_sections(&snap, &format!("session/{i}"), hub.registry())
            .expect("session shard restores");
    }
    // the steering clients are remote and reconnect: fresh endpoints,
    // re-subscribed to the restored hub (the old subscriptions died with
    // the process). The handshake is the same one the original attach
    // negotiated, so nothing new reaches the report.
    for (name, ep) in endpoints.iter_mut() {
        let transport = transports.get(name).copied().unwrap_or_default();
        let mut fresh = transport.attach(hub, name);
        fresh.negotiate(&Capabilities::full("scenario-client", 64));
        *ep = fresh;
    }
    // monitor side: relay tiers re-feed through loopback collectors,
    // viewers reconnect over their declared transports; both negotiate
    // against the saved caps inside restore_sections
    let relay_names: Vec<&str> = relays.iter().map(|r| r.name.as_str()).collect();
    let mut resolver = |sub: &str, _caps: &MonitorCaps| -> Box<dyn MonitorEndpoint> {
        if relay_names.contains(&sub) {
            Box::new(LoopbackMonitor::new())
        } else {
            viewers
                .iter()
                .find(|v| v.name == sub)
                .map(|v| v.kind.attach_monitor(sub))
                .unwrap_or_else(|| Box::new(LoopbackMonitor::new()))
        }
    };
    mhub.restore_sections(&snap, "monitor", &mut resolver)
        .expect("monitor hub restores");
    for r in relays {
        r.hub
            .restore_sections(&snap, &format!("relay/{}", r.name), &mut resolver)
            .expect("relay tier restores");
    }
}

/// Resolve a fault-action target: participants, viewers, and relay
/// uplinks share one name space for link faults (participants win a
/// collision, then viewers).
fn fault_link<'a>(
    clients: &'a mut [Client],
    viewers: &'a mut [ViewerState],
    relays: &'a mut [RelayNode],
    who: &str,
) -> Option<&'a mut FaultyLink> {
    if let Some(c) = clients.iter_mut().find(|c| c.name == who) {
        return Some(&mut c.link);
    }
    if let Some(v) = viewers.iter_mut().find(|v| v.name == who) {
        return Some(&mut v.link);
    }
    relays
        .iter_mut()
        .find(|r| r.name == who)
        .map(|r| &mut r.uplink)
}

/// Attach (or re-attach) a monitor viewer at the origin hub or under a
/// relay tier, logging the capability handshake and deriving the link's
/// deterministic streams from the scenario RNG. A re-attach after a
/// [`Action::ViewerLeave`] reuses the viewer's record: delivery counters
/// and the frame digest keep accumulating across connections.
fn attach_viewer(
    viewers: &mut Vec<ViewerState>,
    mhub: &MonitorHub,
    relays: &[RelayNode],
    engine_events: &mut Vec<String>,
    rng: &mut StdRng,
    spec: &ViewerSpec,
    now: SimTime,
) {
    let relay_idx = spec.relay.as_ref().map(|r| {
        relays
            .iter()
            .position(|n| n.name == *r)
            .unwrap_or_else(|| panic!("viewer {:?}: no relay named {r:?} declared", spec.name))
    });
    let caps = MonitorCaps::full("scenario-viewer", 64).every(spec.every);
    let ep = spec.transport.attach_monitor(&spec.name);
    let negotiated = match relay_idx {
        None => mhub.attach_endpoint(&spec.name, ep, &caps),
        Some(i) => relays[i].hub.attach_child(&spec.name, ep, &caps),
    };
    let via = match &spec.relay {
        None => String::new(),
        Some(r) => format!("via={r} "),
    };
    engine_events.push(format!(
        "{} attach-viewer {} {}budget={} {}",
        now,
        spec.name,
        via,
        spec.budget.name(),
        negotiated.render()
    ));
    let mut base = spec.link.clone();
    base.seed = rng.next_u64();
    let fault_seed = rng.next_u64();
    let link = FaultyLink::new(base, fault_seed);
    match viewers.iter_mut().find(|v| v.name == spec.name) {
        Some(v) => {
            v.link = link;
            v.kind = spec.transport;
            v.relay = relay_idx;
            v.last_seq = None;
            v.fresh_attach = true;
            v.online = true;
            v.final_stats = None;
        }
        None => viewers.push(ViewerState {
            name: spec.name.clone(),
            transport: spec.transport.label(),
            kind: spec.transport,
            budget: spec.budget,
            link,
            monitor: LoopMonitor::new(spec.budget),
            delivered: 0,
            dropped: 0,
            digest: 0xcbf2_9ce4_8422_2325,
            relay: relay_idx,
            last_seq: None,
            fresh_attach: true,
            online: true,
            final_stats: None,
        }),
    }
}

/// Apply every staged bus batch atomically at a step boundary: commands
/// flow through the origin's session shard (master/bounds checks, audit
/// events) and into the backend, in global staging order.
#[allow(clippy::too_many_arguments)] // one call site, mirrors run()'s locals
fn commit_staged(
    hub: &SteerHub,
    sessions: &mut [SteeringSession],
    shard_of: &BTreeMap<String, usize>,
    backend: &mut dyn ScenarioBackend,
    steers_applied: &mut u64,
    steers_lost: &mut u64,
    engine_events: &mut Vec<String>,
    now: SimTime,
) {
    if hub.pending() == 0 {
        return;
    }
    hub.commit_with(|batch, cmd| {
        let resolved = shard_of
            .get(&batch.origin)
            .copied()
            .and_then(|s| sessions[s].index_of(&batch.origin).map(|idx| (s, idx)));
        match resolved {
            Some((s, idx)) => match sessions[s].steer_value(idx, &cmd.param, &cmd.value) {
                Ok(applied) => {
                    backend.apply_steer(&cmd.param, &applied);
                    *steers_applied += 1;
                    Ok(applied)
                }
                // refusals are already in the session audit log
                Err(e) => Err(e),
            },
            None => {
                *steers_lost += 1;
                engine_events.push(format!("{now} steer-sender-left {}", batch.origin));
                Err("sender left before commit".into())
            }
        }
    });
}

/// Everything a join touches (session shards, link table, bus
/// attachment).
struct JoinCtx<'a> {
    clients: &'a mut Vec<Client>,
    sessions: &'a mut Vec<SteeringSession>,
    shard_of: &'a mut BTreeMap<String, usize>,
    next_shard: &'a mut usize,
    endpoints: &'a mut BTreeMap<String, Box<dyn SteerEndpoint>>,
    hub: &'a SteerHub,
    transports: &'a BTreeMap<String, Transport>,
    engine_events: &'a mut Vec<String>,
    now: SimTime,
}

/// Join (or rejoin) a participant: session membership (first join
/// assigns a shard round-robin; a rejoin returns to the same shard), a
/// faulted link whose deterministic streams derive from the scenario
/// RNG, and — on first join — a bus endpoint of the participant's routed
/// transport, with its capability handshake logged (part of the report
/// digest).
fn join_client(ctx: JoinCtx<'_>, name: &str, link: &Link, rng: &mut StdRng) {
    let JoinCtx {
        clients,
        sessions,
        shard_of,
        next_shard,
        endpoints,
        hub,
        transports,
        engine_events,
        now,
    } = ctx;
    let shard = *shard_of.entry(name.to_string()).or_insert_with(|| {
        let s = *next_shard % sessions.len();
        *next_shard += 1;
        s
    });
    let session = &mut sessions[shard];
    if session.index_of(name).is_none() {
        session.join(name);
    }
    if !endpoints.contains_key(name) {
        let transport = transports.get(name).copied().unwrap_or_default();
        let mut ep = transport.attach(hub, name);
        let negotiated = ep.negotiate(&Capabilities::full("scenario-client", 64));
        engine_events.push(format!("{now} attach {name} {}", negotiated.render()));
        endpoints.insert(name.to_string(), ep);
    }
    let mut base = link.clone();
    base.seed = rng.next_u64();
    let fault_seed = rng.next_u64();
    let fresh = FaultyLink::new(base, fault_seed);
    match clients.iter_mut().find(|c| c.name == name) {
        Some(c) => {
            // a rejoin is a new connection: the given link replaces the old
            // one, clearing any partition/loss/jitter state; delivery stats
            // accumulate across connections
            let old = c.link.stats();
            c.prior_stats.delivered += old.delivered;
            c.prior_stats.dropped += old.dropped;
            c.link = fresh;
            c.online = true;
        }
        None => {
            clients.push(Client {
                name: name.to_string(),
                link: fresh,
                online: true,
                prior_stats: netsim::LinkStats::default(),
            });
        }
    }
}

/// Canonical, stable rendering of a session event for reports/digests.
fn render_event(e: &SessionEvent) -> String {
    match e {
        SessionEvent::Joined(n) => format!("Joined({n})"),
        SessionEvent::Left(n) => format!("Left({n})"),
        SessionEvent::MasterPassed { from, to } => format!("MasterPassed({from}->{to})"),
        SessionEvent::Steered { who, param, value } => {
            format!("Steered({who},{param},{})", value.render())
        }
        SessionEvent::SteerRefused { who, param, reason } => {
            format!("SteerRefused({who},{param},{reason})")
        }
        SessionEvent::SampleBroadcast { seq, bytes } => format!("Sample({seq},{bytes})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lbm() -> LbmConfig {
        LbmConfig {
            nx: 6,
            ny: 6,
            nz: 6,
            threads: 1,
            ..Default::default()
        }
    }

    fn tiny(name: &str) -> Scenario {
        Scenario::named(name)
            .lbm(tiny_lbm())
            .participant("alice", Link::uk_janet())
            .participant("bob", Link::gwin())
            .duration(SimTime::from_secs(1))
    }

    #[test]
    fn produces_expected_broadcast_count() {
        let r = tiny("count").run();
        // samples at 100ms..1000ms inclusive
        assert_eq!(r.broadcasts, 10);
        assert_eq!(r.total_deliveries(), 20);
        assert_eq!(r.final_progress, 10);
        assert!(r.within_budget);
    }

    #[test]
    fn same_build_same_digest() {
        let a = tiny("det").jitter_at(SimTime::ZERO, "bob", SimTime::from_millis(5));
        let r1 = a.run();
        let r2 = a.run();
        assert_eq!(r1.render(), r2.render());
        assert_eq!(r1.digest(), r2.digest());
    }

    #[test]
    fn different_seed_different_behaviour() {
        let base = tiny("seeds").loss_at(SimTime::ZERO, "bob", 300_000);
        let r1 = base.clone().seed(10).run();
        let r2 = base.seed(11).run();
        assert_ne!(r1.digest(), r2.digest());
    }

    #[test]
    fn master_steer_is_applied() {
        let r = tiny("steer")
            .steer_at(SimTime::from_millis(250), "alice", "miscibility", 0.25)
            .run();
        assert_eq!(r.steers_applied, 1);
        assert!(r
            .session_events
            .iter()
            .any(|e| e.starts_with("Steered(alice,miscibility")));
    }

    #[test]
    fn viewer_steer_is_refused_not_lost() {
        let r = tiny("refuse")
            .steer_at(SimTime::from_millis(250), "bob", "miscibility", 0.25)
            .run();
        assert_eq!(r.steers_applied, 0);
        assert_eq!(r.steers_lost, 0);
        assert!(r
            .session_events
            .iter()
            .any(|e| e.starts_with("SteerRefused(bob")));
    }

    #[test]
    fn partitioned_steer_is_lost() {
        let r = tiny("part-steer")
            .partition_at(SimTime::from_millis(100), "alice")
            .steer_at(SimTime::from_millis(250), "alice", "miscibility", 0.25)
            .run();
        assert_eq!(r.steers_applied, 0);
        assert_eq!(r.steers_lost, 1);
        assert!(r.engine_events.iter().any(|e| e.contains("steer-lost")));
    }

    #[test]
    fn unknown_names_are_logged_not_fatal() {
        let r = tiny("misses")
            .partition_at(SimTime::from_millis(100), "ghost")
            .leave_at(SimTime::from_millis(200), "ghost")
            .steer_at(SimTime::from_millis(300), "ghost", "miscibility", 0.5)
            .migrate_at(SimTime::from_millis(400), "london", "atlantis")
            .run();
        assert!(r.engine_events.iter().any(|e| e.contains("fault-miss")));
        assert!(r.engine_events.iter().any(|e| e.contains("leave-miss")));
        assert!(r.engine_events.iter().any(|e| e.contains("steer-offline")));
        assert!(r.engine_events.iter().any(|e| e.contains("migrate-miss")));
    }

    #[test]
    fn migration_pauses_sampling_and_is_recorded() {
        let r = tiny("mig")
            .duration(SimTime::from_secs(4))
            .migrate_at(SimTime::from_millis(150), "london", "manchester")
            .run();
        assert_eq!(r.migrations.len(), 1);
        assert!(r.broadcasts_skipped > 0, "blackout must skip samples");
        assert!(r.migrations_within_budget());
        assert!(r.migrations[0].bytes > 0);
    }

    #[test]
    fn late_joiner_shows_up_in_links_and_events() {
        let r = tiny("late")
            .join_at(SimTime::from_millis(500), "carol", Link::transatlantic())
            .run();
        assert!(r.links.iter().any(|(n, s)| n == "carol" && s.delivered > 0));
        assert!(r.session_events.contains(&"Joined(carol)".to_string()));
        let carol = &r.links.iter().find(|(n, _)| n == "carol").unwrap().1;
        let alice = &r.links.iter().find(|(n, _)| n == "alice").unwrap().1;
        assert!(carol.offered() < alice.offered());
    }

    #[test]
    fn rejoin_replaces_link_and_clears_faults() {
        // bob is partitioned, leaves, and rejoins over a fresh link: the
        // rejoin must shed the stale partition and receive samples again,
        // while his lifetime stats keep the pre-rejoin drops.
        let r = tiny("rejoin")
            .duration(SimTime::from_secs(3))
            .partition_at(SimTime::from_millis(200), "bob")
            .leave_at(SimTime::from_millis(500), "bob")
            .join_at(SimTime::from_millis(1000), "bob", Link::transatlantic())
            .run();
        let bob = &r.links.iter().find(|(n, _)| n == "bob").unwrap().1;
        assert!(
            bob.delivered > 1,
            "rejoined client must receive samples again: {bob:?}"
        );
        assert!(bob.dropped > 0, "pre-rejoin drops must stay counted");
        assert_eq!(
            r.session_events
                .iter()
                .filter(|e| *e == "Joined(bob)")
                .count(),
            2
        );
    }

    #[test]
    fn explicit_pool_does_not_change_digest() {
        // the pool is an execution detail: any thread count, same bytes —
        // including across a mid-run migration (checkpoint restore keeps
        // the scenario's pool)
        let base = tiny("pool")
            .duration(SimTime::from_secs(4))
            .steer_at(SimTime::from_millis(300), "alice", "miscibility", 0.4)
            .migrate_at(SimTime::from_millis(600), "london", "manchester");
        let r1 = base.clone().run();
        let r8 = base.clone().pool(gridsteer_exec::shared(8)).run();
        let r_serial = base.pool(gridsteer_exec::shared(1)).run();
        assert_eq!(r1.digest(), r8.digest());
        assert_eq!(r1.digest(), r_serial.digest());
    }

    #[test]
    fn pepc_backend_runs_and_steers() {
        let r = Scenario::named("pepc")
            .pepc(PepcConfig {
                n_target: 40,
                ranks: 1,
                ..PepcConfig::small()
            })
            .participant("alice", Link::uk_janet())
            .duration(SimTime::from_secs(1))
            .steer_at(SimTime::from_millis(300), "alice", "damping", 0.4)
            .run();
        assert_eq!(r.backend, "pepc");
        assert_eq!(r.steers_applied, 1);
        assert!(r.broadcasts > 0);
    }

    #[test]
    fn out_of_bounds_steer_rejected_by_registry() {
        let r = tiny("bounds")
            .steer_at(SimTime::from_millis(200), "alice", "miscibility", 7.0)
            .run();
        assert_eq!(r.steers_applied, 0);
        assert!(r
            .session_events
            .iter()
            .any(|e| e.starts_with("SteerRefused(alice")));
    }

    #[test]
    fn viewers_receive_monitor_frames_and_score_budgets() {
        let r = tiny("viewers")
            .viewer_via("desk", Link::uk_janet(), Transport::Visit)
            .viewer_via("grids", Link::gwin(), Transport::Covise)
            .run();
        assert_eq!(r.monitor_frames, 60, "6 channels x 10 sample ticks");
        let desk = r.viewer("desk").unwrap();
        assert_eq!(desk.delivered, 60, "full caps: every frame");
        assert_eq!(desk.budget, "desktop-render");
        assert_eq!(desk.budget_violations, 0, "janet latency is way inside");
        assert_eq!(desk.transport, "visit");
        let grids = r.viewer("grids").unwrap();
        assert_eq!(grids.delivered, 20, "grids-only caps: 2 of 6 channels");
        assert_eq!(grids.filtered, 40, "scalars+vec3 filtered out");
        assert_ne!(desk.frames_digest, grids.frames_digest);
        assert!(r.viewers_within_budget());
        assert!(r
            .engine_events
            .iter()
            .any(|e| e.contains("attach-viewer grids budget=desktop-render transport=covise")));
    }

    #[test]
    fn viewer_decimation_and_faults_apply() {
        let r = tiny("viewer-faults")
            .viewer_via("thin", Link::uk_janet(), Transport::Loopback)
            .viewer_every("thin", 3)
            .viewer_via("cut", Link::gwin(), Transport::Unicore)
            .partition_at(SimTime::from_millis(150), "cut")
            .heal_at(SimTime::from_millis(650), "cut")
            .run();
        let thin = r.viewer("thin").unwrap();
        assert_eq!(thin.delivered, 20, "every 3rd of 60");
        assert_eq!(thin.decimated, 40);
        let cut = r.viewer("cut").unwrap();
        assert!(cut.dropped >= 24, "5 partitioned ticks x 6 frames: {cut:?}");
        assert!(cut.delivered > 0, "deliveries resume after heal");
        assert!(r.engine_events.iter().any(|e| e.contains("partition cut")));
    }

    #[test]
    fn viewer_runs_replay_byte_identically_across_pools() {
        let build = || {
            tiny("viewer-det")
                .viewer_via("a", Link::uk_janet(), Transport::Visit)
                .viewer_via("b", Link::transatlantic(), Transport::Ogsa)
                .loss_at(SimTime::ZERO, "b", 300_000)
                .steer_at(SimTime::from_millis(400), "alice", "miscibility", 0.3)
        };
        let r1 = build().run();
        let r2 = build().run();
        assert_eq!(r1.render(), r2.render());
        let r8 = build().pool(gridsteer_exec::shared(8)).run();
        assert_eq!(r1.digest(), r8.digest());
        let b = r1.viewer("b").unwrap();
        assert!(b.dropped > 0, "30% loss must drop monitor frames: {b:?}");
    }

    #[test]
    fn pepc_viewer_gets_plasma_channels() {
        let r = Scenario::named("pepc-viewer")
            .pepc(PepcConfig {
                n_target: 40,
                ranks: 1,
                ..PepcConfig::small()
            })
            .participant("alice", Link::uk_janet())
            .viewer_via("v", Link::gwin(), Transport::Visit)
            .duration(SimTime::from_secs(1))
            .run();
        assert_eq!(r.monitor_frames, 30, "3 scalar channels x 10 ticks");
        assert_eq!(r.viewer("v").unwrap().delivered, 30);
    }

    #[test]
    fn viewer_leave_freezes_deliveries() {
        let r = tiny("churn")
            .viewer_via("v", Link::uk_janet(), Transport::Visit)
            .viewer_leave_at(SimTime::from_millis(450), "v")
            .viewer_leave_at(SimTime::from_millis(500), "ghost")
            .run();
        let v = r.viewer("v").unwrap();
        assert_eq!(v.delivered, 24, "4 ticks x 6 channels before the leave");
        assert!(r.engine_events.iter().any(|e| e.contains("viewer-leave v")));
        assert!(r
            .engine_events
            .iter()
            .any(|e| e.contains("viewer-leave-miss ghost")));
    }

    #[test]
    fn viewer_rejoin_resumes_and_accumulates() {
        let r = tiny("viewer-rejoin")
            .viewer_via("v", Link::uk_janet(), Transport::Visit)
            .viewer_leave_at(SimTime::from_millis(350), "v")
            .viewer_join_at(
                SimTime::from_millis(650),
                "v",
                Link::gwin(),
                Transport::Loopback,
            )
            .run();
        let v = r.viewer("v").unwrap();
        assert_eq!(
            v.delivered,
            18 + 24,
            "3 ticks before the leave + 4 after the rejoin, x 6 channels"
        );
        // a second join while online is refused
        let r2 = tiny("viewer-rejoin-dup")
            .viewer_via("v", Link::uk_janet(), Transport::Visit)
            .viewer_join_at(
                SimTime::from_millis(300),
                "v",
                Link::gwin(),
                Transport::Loopback,
            )
            .run();
        assert!(r2
            .engine_events
            .iter()
            .any(|e| e.contains("viewer-join-miss v")));
    }

    #[test]
    fn relay_tier_streams_byte_identical_to_direct_attach() {
        let r = tiny("relay")
            .relay("region", Link::campus())
            .relay_under("edge", "region", Link::uk_janet())
            .viewer_at_relay("leaf", "edge", Link::gwin(), Transport::Visit)
            .viewer_via("direct", Link::gwin(), Transport::Visit)
            .run();
        let leaf = r.viewer("leaf").unwrap();
        let direct = r.viewer("direct").unwrap();
        assert_eq!(leaf.delivered, 60, "nothing thinned across two tiers");
        assert_eq!(
            leaf.frames_digest, direct.frames_digest,
            "sequence numbers and bytes survive the tree"
        );
        let region = r.relay("region").unwrap();
        assert_eq!(region.parent, None);
        assert_eq!(region.ingested, 60);
        assert_eq!(region.forwarded, 60);
        assert_eq!(r.relay("edge").unwrap().parent.as_deref(), Some("region"));
        assert!(r
            .engine_events
            .iter()
            .any(|e| e.contains("attach-relay edge parent=region")));
    }

    #[test]
    fn relay_decimation_and_uplink_faults_are_reported() {
        let r = tiny("relay-faults")
            .relay("region", Link::campus())
            .relay_every("region", 3)
            .viewer_at_relay("leaf", "region", Link::uk_janet(), Transport::Loopback)
            .partition_at(SimTime::from_millis(150), "region")
            .heal_at(SimTime::from_millis(450), "region")
            .run();
        let region = r.relay("region").unwrap();
        assert!(
            region.uplink_dropped > 0,
            "partitioned uplink drops batches"
        );
        assert!(region.decimated > 0, "tier thins the stream");
        assert_eq!(region.ingested, region.forwarded + region.decimated);
        assert!(r.viewer("leaf").unwrap().delivered > 0);
        assert!(r
            .engine_events
            .iter()
            .any(|e| e.contains("partition region")));
    }

    #[test]
    fn late_relay_viewer_is_served_from_the_edge_cache() {
        let r = tiny("relay-late")
            .relay("edge", Link::campus())
            .viewer_at_relay("pioneer", "edge", Link::uk_janet(), Transport::Loopback)
            .viewer_join_relay_at(
                SimTime::from_millis(550),
                "late",
                "edge",
                Link::uk_janet(),
                Transport::Visit,
            )
            .run();
        // grid channels are self-contained, so the joiner starts from the
        // cached state plus everything published after the join
        let late = r.viewer("late").unwrap();
        assert!(
            late.delivered > 24,
            "cache serve + post-join ticks: {late:?}"
        );
        assert!(r.relay("edge").unwrap().keyframes_served > 0);
        assert!(r
            .engine_events
            .iter()
            .any(|e| e.contains("attach-viewer late via=edge")));
    }

    #[test]
    fn sharded_sessions_split_masters_and_share_authority() {
        let r = tiny("shards")
            .shards(2)
            .steer_at(SimTime::from_millis(250), "bob", "miscibility", 0.25)
            .pass_master_at(SimTime::from_millis(400), "alice", "bob")
            .run();
        assert_eq!(r.steers_applied, 1, "bob masters his own shard");
        assert!(r
            .engine_events
            .iter()
            .any(|e| e.contains("pass-shard-miss alice->bob")));
        assert!(r.session_events.contains(&"s0 Joined(alice)".to_string()));
        assert!(r.session_events.contains(&"s1 Joined(bob)".to_string()));
        assert_eq!(r.broadcasts, 10, "one backend sample stream, n shards");
    }

    #[test]
    fn single_shard_renders_without_prefix_and_relays_stay_deterministic() {
        let build = || {
            tiny("relay-det")
                .shards(2)
                .relay("region", Link::campus())
                .relay_under("edge", "region", Link::uk_janet())
                .viewer_at_relay("leaf", "edge", Link::transatlantic(), Transport::Ogsa)
                .viewer_leave_at(SimTime::from_millis(500), "leaf")
                .steer_at(SimTime::from_millis(300), "alice", "miscibility", 0.4)
        };
        let r1 = build().run();
        let r2 = build().run();
        assert_eq!(r1.render(), r2.render());
        let r8 = build().pool(gridsteer_exec::shared(8)).run();
        assert_eq!(r1.digest(), r8.digest());
        let plain = tiny("plain").run();
        assert!(
            plain.session_events.iter().all(|e| !e.starts_with("s0 ")),
            "single shard keeps the classic rendering"
        );
    }

    #[test]
    fn zero_sample_interval_panics() {
        let s = tiny("bad").sample_every(SimTime::ZERO);
        // AssertUnwindSafe: the optional pool handle holds sync primitives
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || s.run())).is_err());
    }

    #[test]
    fn checkpoint_cutting_is_invisible_in_the_report() {
        // cutting snapshots is pure observation: no rng draws, no events,
        // no counter changes — a checkpointed run renders byte-identically
        // to one that never checkpoints
        let plain = tiny("ckpt-inv").run();
        let cut = tiny("ckpt-inv")
            .checkpoint_every(SimTime::from_millis(300))
            .run();
        assert_eq!(plain.render(), cut.render());
    }

    #[test]
    fn crash_restore_replays_byte_identical_to_uncrashed() {
        // checkpoints at 500ms and 1000ms; the process dies at 1050ms and
        // is rebuilt at 1080ms from the 1000ms cut. Nothing happened in
        // between, so recovery is invisible: every sample, delivery,
        // viewer frame and post-restore steer replays byte-for-byte.
        let build = || {
            tiny("recover")
                .duration(SimTime::from_secs(2))
                .shards(2)
                .relay("region", Link::campus())
                .viewer_at_relay("leaf", "region", Link::uk_janet(), Transport::Visit)
                .viewer_via("direct", Link::gwin(), Transport::Covise)
                .checkpoint_every(SimTime::from_millis(500))
                .steer_at(SimTime::from_millis(250), "alice", "miscibility", 0.4)
                .steer_at(SimTime::from_millis(1450), "alice", "miscibility", 0.2)
        };
        let smooth = build().run();
        let recovered = build()
            .crash_at(SimTime::from_millis(1050))
            .restore_at(SimTime::from_millis(1080))
            .run();
        assert_eq!(smooth.render(), recovered.render());
        assert_eq!(smooth.digest(), recovered.digest());
    }

    #[test]
    fn stale_checkpoint_restore_rewinds_state() {
        // sample ticks at 1100ms and 1200ms ran *past* the 1000ms cut
        // before the crash, so the restore rewinds the backend: progress
        // replays from the checkpoint and the report diverges
        let build = || {
            tiny("stale")
                .duration(SimTime::from_secs(2))
                .checkpoint_every(SimTime::from_millis(500))
        };
        let smooth = build().run();
        let rewound = build()
            .crash_at(SimTime::from_millis(1250))
            .restore_at(SimTime::from_millis(1280))
            .run();
        assert_ne!(smooth.digest(), rewound.digest());
        assert!(
            rewound.final_progress < smooth.final_progress,
            "rewound {} vs smooth {}",
            rewound.final_progress,
            smooth.final_progress
        );
    }

    #[test]
    fn crash_without_restore_blacks_out_sampling() {
        let r = tiny("dead").crash_at(SimTime::from_millis(550)).run();
        assert_eq!(r.broadcasts, 5, "ticks 100..500 ran");
        assert_eq!(
            r.broadcasts_skipped, 5,
            "ticks 600..1000 hit a dead process"
        );
    }

    #[test]
    fn delta_checkpoint_chain_restores_identically() {
        // 200ms cadence: full snapshot at 200ms, sparse deltas at 400,
        // 600 and 800ms. The restore at 880ms decodes the head and folds
        // every delta — and still replays byte-identically to a run that
        // never checkpointed at all.
        let build = || {
            tiny("delta")
                .duration(SimTime::from_secs(2))
                .viewer_via("v", Link::uk_janet(), Transport::Visit)
                .steer_at(SimTime::from_millis(250), "alice", "miscibility", 0.35)
        };
        let smooth = build().run();
        let recovered = build()
            .checkpoint_every(SimTime::from_millis(200))
            .crash_at(SimTime::from_millis(850))
            .restore_at(SimTime::from_millis(880))
            .run();
        assert_eq!(smooth.render(), recovered.render());
    }

    #[test]
    fn restore_without_crash_panics() {
        let s = tiny("no-crash")
            .checkpoint_every(SimTime::from_millis(300))
            .restore_at(SimTime::from_millis(500));
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || s.run())).is_err());
    }

    #[test]
    fn restore_without_checkpoint_panics() {
        let s = tiny("no-ckpt")
            .crash_at(SimTime::from_millis(300))
            .restore_at(SimTime::from_millis(400));
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || s.run())).is_err());
    }

    #[test]
    fn validate_rejects_each_misuse_with_a_typed_error() {
        use crate::error::ScenarioError as E;
        assert_eq!(tiny("ok").validate(), Ok(()));
        assert_eq!(
            tiny("zero").sample_every(SimTime::ZERO).validate(),
            Err(E::ZeroSampleInterval)
        );
        assert_eq!(
            tiny("dup-p").participant("alice", Link::wan()).validate(),
            Err(E::DuplicateParticipant("alice".into()))
        );
        assert_eq!(
            tiny("dup-v")
                .viewer_via("desk", Link::wan(), Transport::Visit)
                .viewer_via("desk", Link::gwin(), Transport::Ogsa)
                .validate(),
            Err(E::DuplicateViewer("desk".into()))
        );
        assert_eq!(
            tiny("dup-r")
                .relay("region", Link::campus())
                .relay("region", Link::wan())
                .validate(),
            Err(E::DuplicateRelay("region".into()))
        );
        assert_eq!(
            tiny("collide")
                .viewer_via("alice", Link::wan(), Transport::Visit)
                .validate(),
            Err(E::NameCollision("alice".into()))
        );
        assert_eq!(
            tiny("ghost-parent")
                .relay_under("edge", "region", Link::wan())
                .validate(),
            Err(E::UnknownRelayParent {
                relay: "edge".into(),
                parent: "region".into()
            })
        );
        assert_eq!(
            tiny("ghost-relay")
                .viewer_at_relay("desk", "region", Link::wan(), Transport::Visit)
                .validate(),
            Err(E::UnknownRelay {
                viewer: "desk".into(),
                relay: "region".into()
            })
        );
        assert_eq!(
            tiny("ghost-relay-join")
                .viewer_join_relay_at(
                    SimTime::from_millis(200),
                    "desk",
                    "region",
                    Link::wan(),
                    Transport::Visit
                )
                .validate(),
            Err(E::UnknownRelay {
                viewer: "desk".into(),
                relay: "region".into()
            })
        );
        assert_eq!(
            tiny("late")
                .partition_at(SimTime::from_secs(2), "bob")
                .validate(),
            Err(E::ActionAfterEnd {
                at: SimTime::from_secs(2),
                action: "partition",
                duration: SimTime::from_secs(1)
            })
        );
        assert_eq!(
            tiny("no-ckpt")
                .crash_at(SimTime::from_millis(300))
                .restore_at(SimTime::from_millis(400))
                .validate(),
            Err(E::RestoreWithoutCheckpoint)
        );
        assert_eq!(
            tiny("no-crash")
                .checkpoint_every(SimTime::from_millis(300))
                .restore_at(SimTime::from_millis(500))
                .validate(),
            Err(E::RestoreWithoutCrash {
                at: SimTime::from_millis(500)
            })
        );
        // order of builder calls must not matter: restore scheduled
        // before the crash textually, but after it in virtual time
        assert_eq!(
            tiny("order")
                .checkpoint_every(SimTime::from_millis(300))
                .restore_at(SimTime::from_millis(600))
                .crash_at(SimTime::from_millis(500))
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn probes_stay_quiet_on_a_stormy_but_healthy_run() {
        let r = tiny("probe-clean")
            .shards(2)
            .viewer_via("desk", Link::wan(), Transport::Visit)
            .relay("region", Link::campus())
            .viewer_at_relay("cave", "region", Link::gwin(), Transport::Covise)
            .join_at(SimTime::from_millis(150), "carol", Link::wan())
            .leave_at(SimTime::from_millis(350), "alice")
            .steer_at(SimTime::from_millis(250), "bob", "miscibility", 0.4)
            .viewer_leave_at(SimTime::from_millis(400), "desk")
            .viewer_join_at(
                SimTime::from_millis(600),
                "desk",
                Link::wan(),
                Transport::Visit,
            )
            .checkpoint_every(SimTime::from_millis(300))
            .crash_at(SimTime::from_millis(650))
            .restore_at(SimTime::from_millis(680))
            .run();
        assert_eq!(r.probe_violations, Vec::<String>::new());
        assert!(r.broadcasts > 0);
    }
}
