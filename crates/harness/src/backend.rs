//! Simulation backends a scenario can steer.
//!
//! A [`ScenarioBackend`] is the sample source of a run: the engine steps it
//! once per sample tick, fans the sample out to the participants, and routes
//! accepted steers into it. Two backends cover the paper's two codes — the
//! LB two-fluid mixture (§2.2) and the PEPC plasma (§3.4) — behind one
//! object-safe trait so scenarios are written once and run against either.

use gridsteer_ckpt::{CkptError, Snapshot};
use gridsteer_exec::ExecPool;
use lbm::{LbmConfig, TwoFluidLbm};
use pepc::{PepcConfig, PepcSim};
use std::sync::Arc;
use steer_core::{GenericMonitorAdapter, MonitorHub, ParamSpec, ParamValue, SteerTarget};

/// A steerable simulation driven by the scenario engine.
pub trait ScenarioBackend {
    /// Short backend name (appears in the report header).
    fn kind(&self) -> &'static str;

    /// Dispatch the backend's parallel passes onto this executor pool
    /// (results are pool-independent: see the `gridsteer_exec` determinism
    /// contract). The engine calls this once per run so every backend in a
    /// scenario shares the scenario's pool.
    fn set_pool(&mut self, pool: Arc<ExecPool>);

    /// The steerable parameters this backend accepts, as typed bus
    /// registry specs (sourced from the simulation's
    /// [`SteerTarget::specs`], so the harness, the adapters and the bus
    /// all declare one surface).
    fn param_specs(&self) -> Vec<ParamSpec>;

    /// Apply an accepted steer. `param` is one of [`param_specs`]'s names
    /// and `value` has already passed the registry's bounds check.
    ///
    /// [`param_specs`]: ScenarioBackend::param_specs
    fn apply_steer(&mut self, param: &str, value: &ParamValue);

    /// Advance the simulation by `steps` time steps.
    fn advance(&mut self, steps: usize);

    /// Publish the backend's monitored quantities for the current step
    /// through the hub, as one batch (both backends route through the
    /// shared [`GenericMonitorAdapter`], never a per-simulation path).
    /// Returns the number of frames published.
    fn publish_monitor(&mut self, hub: &MonitorHub) -> u64;

    /// Size of one sample on the wire, in bytes.
    fn sample_bytes(&self) -> usize;

    /// Serialize the backend's full simulation state into the snapshot
    /// (the `gridsteer_ckpt` versioned format — float fields as raw bits,
    /// so a restore is bit-exact).
    fn save_sections(&self, snap: &mut Snapshot);

    /// Replace the simulation state with the snapshot's, keeping the
    /// scenario's executor pool. Typed error on a corrupt or mismatched
    /// snapshot; the live state is untouched on failure.
    fn restore_sections(&mut self, snap: &Snapshot) -> Result<(), CkptError>;

    /// Checkpoint the state through the snapshot wire format — encode,
    /// decode, restore — and return the encoded size in bytes. Both
    /// backends round-trip their real state (the migration cost model
    /// moves the same bytes a crash recovery would).
    fn checkpoint_roundtrip(&mut self) -> usize {
        let mut snap = Snapshot::new(0, 0);
        self.save_sections(&mut snap);
        let blob = snap.encode();
        let decoded = Snapshot::decode(&blob).expect("self-encoded snapshot decodes");
        self.restore_sections(&decoded)
            .expect("self-saved snapshot restores");
        blob.len()
    }

    /// Monotone progress counter (simulation steps taken).
    fn progress(&self) -> u64;
}

/// The LB two-fluid mixture with the miscibility steering parameter.
pub struct LbmBackend {
    sim: TwoFluidLbm,
    monitor: GenericMonitorAdapter<TwoFluidLbm>,
}

impl LbmBackend {
    /// A backend over a fresh simulation.
    pub fn new(cfg: LbmConfig) -> Self {
        LbmBackend {
            sim: TwoFluidLbm::new(cfg),
            monitor: GenericMonitorAdapter::new(),
        }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &TwoFluidLbm {
        &self.sim
    }
}

impl ScenarioBackend for LbmBackend {
    fn kind(&self) -> &'static str {
        "lbm"
    }

    fn set_pool(&mut self, pool: Arc<ExecPool>) {
        self.sim.set_pool(pool);
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        TwoFluidLbm::specs()
    }

    fn apply_steer(&mut self, param: &str, value: &ParamValue) {
        // unknown names were already refused by the registry; ignore them
        let _ = self.sim.write(param, value);
    }

    fn advance(&mut self, steps: usize) {
        self.sim.step_n(steps);
    }

    fn publish_monitor(&mut self, hub: &MonitorHub) -> u64 {
        self.monitor.publish(&self.sim, hub)
    }

    fn sample_bytes(&self) -> usize {
        // one f32 order-parameter scalar per node — what the Figure-1
        // pipeline ships to the isosurface stage
        let (nx, ny, nz) = self.sim.dims();
        nx * ny * nz * 4
    }

    fn save_sections(&self, snap: &mut Snapshot) {
        self.sim.save_sections(snap);
    }

    fn restore_sections(&mut self, snap: &Snapshot) -> Result<(), CkptError> {
        // the restored run keeps dispatching on the scenario's pool
        self.sim.restore_sections(snap)
    }

    fn progress(&self) -> u64 {
        self.sim.steps()
    }
}

/// The PEPC plasma with the §3.4 steerable parameters.
pub struct PepcBackend {
    sim: PepcSim,
    monitor: GenericMonitorAdapter<PepcSim>,
}

/// Bytes per particle on the wire: position + velocity as f32 triples,
/// charge (f32), rank (u16), tracking label (u32).
const PEPC_PARTICLE_BYTES: usize = 12 + 12 + 4 + 2 + 4;

impl PepcBackend {
    /// A backend over a fresh simulation.
    pub fn new(cfg: PepcConfig) -> Self {
        PepcBackend {
            sim: PepcSim::new(cfg),
            monitor: GenericMonitorAdapter::new(),
        }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &PepcSim {
        &self.sim
    }
}

impl ScenarioBackend for PepcBackend {
    fn kind(&self) -> &'static str {
        "pepc"
    }

    fn set_pool(&mut self, pool: Arc<ExecPool>) {
        self.sim.set_pool(pool);
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        PepcSim::specs()
    }

    fn apply_steer(&mut self, param: &str, value: &ParamValue) {
        // unknown names were already refused by the registry; ignore them
        let _ = self.sim.write(param, value);
    }

    fn advance(&mut self, steps: usize) {
        self.sim.step_n(steps);
    }

    fn publish_monitor(&mut self, hub: &MonitorHub) -> u64 {
        self.monitor.publish(&self.sim, hub)
    }

    fn sample_bytes(&self) -> usize {
        self.sim.len() * PEPC_PARTICLE_BYTES
    }

    fn save_sections(&self, snap: &mut Snapshot) {
        self.sim.save_sections(snap);
    }

    fn restore_sections(&mut self, snap: &Snapshot) -> Result<(), CkptError> {
        self.sim.restore_sections(snap)
    }

    fn progress(&self) -> u64 {
        self.sim.step_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lbm() -> LbmConfig {
        LbmConfig {
            nx: 6,
            ny: 6,
            nz: 6,
            threads: 1,
            ..Default::default()
        }
    }

    fn tiny_pepc() -> PepcConfig {
        PepcConfig {
            n_target: 40,
            ranks: 1,
            ..PepcConfig::small()
        }
    }

    #[test]
    fn lbm_backend_steers_miscibility() {
        let mut b = LbmBackend::new(tiny_lbm());
        b.apply_steer("miscibility", &ParamValue::F64(0.3));
        assert_eq!(b.sim().miscibility(), 0.3);
        b.apply_steer("unknown", &ParamValue::F64(9.9)); // ignored, no panic
        assert_eq!(b.sim().miscibility(), 0.3);
    }

    #[test]
    fn lbm_backend_advances_and_reports_progress() {
        let mut b = LbmBackend::new(tiny_lbm());
        b.advance(4);
        assert_eq!(b.progress(), 4);
        assert_eq!(b.sample_bytes(), 6 * 6 * 6 * 4);
    }

    #[test]
    fn lbm_checkpoint_roundtrip_preserves_state() {
        let mut b = LbmBackend::new(tiny_lbm());
        b.apply_steer("miscibility", &ParamValue::F64(0.2));
        b.advance(5);
        let before = b.sim().order_parameter().data().to_vec();
        let bytes = b.checkpoint_roundtrip();
        assert!(bytes > 0);
        assert_eq!(b.sim().miscibility(), 0.2);
        assert_eq!(b.progress(), 5);
        assert_eq!(b.sim().order_parameter().data(), &before[..]);
    }

    #[test]
    fn pepc_backend_steers_all_params() {
        let mut b = PepcBackend::new(tiny_pepc());
        b.apply_steer("damping", &ParamValue::F64(0.5));
        b.apply_steer("laser_amplitude", &ParamValue::F64(1.5));
        b.apply_steer("beam_intensity", &ParamValue::F64(2.0));
        let p = b.sim().params();
        assert_eq!(p.damping, 0.5);
        assert_eq!(p.laser_amplitude, 1.5);
        assert_eq!(p.beam_intensity, 2.0);
    }

    #[test]
    fn pepc_backend_sample_scales_with_particles() {
        let mut b = PepcBackend::new(tiny_pepc());
        assert_eq!(b.sample_bytes(), b.sim().len() * PEPC_PARTICLE_BYTES);
        b.advance(2);
        assert_eq!(b.progress(), 2);
    }

    #[test]
    fn pepc_checkpoint_roundtrip_preserves_state() {
        // PEPC now round-trips its real particle state through the
        // snapshot format, just like LBM — a migration moves the same
        // bytes a crash recovery would, not a wire-size estimate.
        let mut b = PepcBackend::new(tiny_pepc());
        b.apply_steer("damping", &ParamValue::F64(0.4));
        b.advance(3);
        let before: Vec<_> = b.sim().particles().to_vec();
        let bytes = b.checkpoint_roundtrip();
        assert!(bytes > b.sample_bytes(), "snapshot carries full f64 state");
        assert_eq!(b.progress(), 3);
        assert_eq!(b.sim().params().damping, 0.4);
        assert_eq!(b.sim().particles(), &before[..]);
        // the restored sim keeps stepping bit-identically to a twin
        let mut twin = PepcBackend::new(tiny_pepc());
        twin.apply_steer("damping", &ParamValue::F64(0.4));
        twin.advance(3);
        b.advance(3);
        twin.advance(3);
        assert_eq!(b.sim().particles(), twin.sim().particles());
    }

    #[test]
    fn both_backends_publish_monitor_frames_through_the_adapter() {
        use steer_core::{MonitorCaps, MonitorKind};
        let hub = MonitorHub::new();
        hub.attach_endpoint(
            "v",
            gridsteer_bus::Transport::Loopback.attach_monitor("v"),
            &MonitorCaps::full("viewer", 64),
        );
        let mut lbm = LbmBackend::new(tiny_lbm());
        lbm.advance(2);
        let n = lbm.publish_monitor(&hub);
        assert_eq!(n, 6, "lbm surface: 3 scalars + vec3 + grid2 + grid3");
        let frames = hub.recv("v");
        assert_eq!(frames.len(), 6);
        assert!(frames.iter().all(|f| f.step == 2), "stamped with progress");
        assert!(frames
            .iter()
            .any(|f| f.payload.kind() == MonitorKind::Grid3));
        let mut pepc = PepcBackend::new(tiny_pepc());
        assert_eq!(pepc.publish_monitor(&hub), 3, "no beam ⇒ 3 scalars");
        assert_eq!(hub.recv("v").len(), 3);
    }

    #[test]
    fn param_specs_match_registry_contract() {
        let lbm = LbmBackend::new(tiny_lbm());
        let pepc = PepcBackend::new(tiny_pepc());
        for spec in lbm.param_specs().iter().chain(pepc.param_specs().iter()) {
            let initial = spec.initial.as_f64().unwrap();
            assert!(spec.min.unwrap() <= initial && initial <= spec.max.unwrap());
        }
        assert_eq!(lbm.kind(), "lbm");
        assert_eq!(pepc.kind(), "pepc");
    }
}
