//! Particle glyphs and domain boxes.
//!
//! §3.4: "Particles are displayed as points, diamond glyphs and vectors,
//! including time-histories over several time-steps; tree domains as
//! transparent or solid boxes, providing immediate insight into both the
//! physical and algorithmic workings of the parallel tree code." This
//! module turns particle data (positions, velocities, ranks) and domain
//! bounding boxes into renderable primitives.

use crate::mesh::TriMesh;
use crate::Vec3;

/// How a particle cloud is displayed (the three modes of §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlyphMode {
    /// One splat per particle.
    Points,
    /// A small octahedron ("diamond") per particle.
    Diamonds,
    /// A line segment along the velocity per particle.
    Vectors,
}

/// A renderable line segment with colour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Vec3,
    pub b: Vec3,
    pub rgba: [u8; 4],
}

/// Expand particle velocities into vector glyph segments of length
/// `scale * |v|`.
pub fn velocity_vectors(
    pos: &[Vec3],
    vel: &[Vec3],
    colors: &[[u8; 4]],
    scale: f32,
) -> Vec<Segment> {
    pos.iter()
        .zip(vel.iter())
        .zip(colors.iter())
        .map(|((&p, &v), &rgba)| Segment {
            a: p,
            b: p.add(v.scale(scale)),
            rgba,
        })
        .collect()
}

/// Expand particles into diamond (octahedron) meshes of half-extent `r`.
/// Each diamond is 8 triangles; beyond a few thousand particles this is the
/// geometry-volume driver in the traffic experiments.
pub fn diamonds(pos: &[Vec3], r: f32) -> TriMesh {
    let mut m = TriMesh::new();
    for &p in pos {
        let xp = p.add(Vec3::new(r, 0.0, 0.0));
        let xm = p.add(Vec3::new(-r, 0.0, 0.0));
        let yp = p.add(Vec3::new(0.0, r, 0.0));
        let ym = p.add(Vec3::new(0.0, -r, 0.0));
        let zp = p.add(Vec3::new(0.0, 0.0, r));
        let zm = p.add(Vec3::new(0.0, 0.0, -r));
        let faces = [
            (yp, xp, zp),
            (yp, zp, xm),
            (yp, xm, zm),
            (yp, zm, xp),
            (ym, zp, xp),
            (ym, xm, zp),
            (ym, zm, xm),
            (ym, xp, zm),
        ];
        for (a, b, c) in faces {
            let n = b.sub(a).cross(c.sub(a)).normalized();
            m.push_tri(a, b, c, n);
        }
    }
    m
}

/// Time-history trails: for each particle, a polyline through its last
/// positions (§3.4 "time-histories over several time-steps").
/// `history[t][i]` is particle `i`'s position at step `t` (oldest first).
pub fn trails(history: &[Vec<Vec3>], rgba: [u8; 4]) -> Vec<Segment> {
    let mut out = Vec::new();
    for w in history.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        for (a, b) in prev.iter().zip(next.iter()) {
            out.push(Segment { a: *a, b: *b, rgba });
        }
    }
    out
}

/// An axis-aligned domain box (one per processor domain, §3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainBox {
    pub min: Vec3,
    pub max: Vec3,
    /// Owning worker rank (colours the box).
    pub rank: usize,
}

/// The 12 wireframe edges of a domain box.
pub fn box_edges(b: &DomainBox) -> Vec<(Vec3, Vec3)> {
    let (lo, hi) = (b.min, b.max);
    let c = |x: f32, y: f32, z: f32| Vec3::new(x, y, z);
    let corners = [
        c(lo.x, lo.y, lo.z),
        c(hi.x, lo.y, lo.z),
        c(hi.x, hi.y, lo.z),
        c(lo.x, hi.y, lo.z),
        c(lo.x, lo.y, hi.z),
        c(hi.x, lo.y, hi.z),
        c(hi.x, hi.y, hi.z),
        c(lo.x, hi.y, hi.z),
    ];
    const EDGES: [(usize, usize); 12] = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 0),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 4),
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7),
    ];
    EDGES
        .iter()
        .map(|&(i, j)| (corners[i], corners[j]))
        .collect()
}

/// A solid box mesh (the "solid boxes" display mode).
pub fn box_mesh(b: &DomainBox) -> TriMesh {
    let mut m = TriMesh::unit_cube();
    let d = b.max.sub(b.min);
    for v in m.vertices.iter_mut() {
        *v = Vec3::new(
            b.min.x + v.x * d.x,
            b.min.y + v.y * d.y,
            b.min.z + v.z * d.z,
        );
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_scale_with_velocity() {
        let pos = vec![Vec3::ZERO];
        let vel = vec![Vec3::new(2.0, 0.0, 0.0)];
        let col = vec![[255u8; 4]];
        let segs = velocity_vectors(&pos, &vel, &col, 0.5);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].b, Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn diamonds_emit_8_tris_each() {
        let pos = vec![Vec3::ZERO, Vec3::new(5.0, 0.0, 0.0)];
        let m = diamonds(&pos, 0.5);
        assert_eq!(m.tri_count(), 16);
        let (lo, hi) = m.bounds().unwrap();
        assert_eq!(lo, Vec3::new(-0.5, -0.5, -0.5));
        assert_eq!(hi, Vec3::new(5.5, 0.5, 0.5));
    }

    #[test]
    fn trails_link_consecutive_steps() {
        let history = vec![
            vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)],
            vec![Vec3::new(0.0, 1.0, 0.0), Vec3::new(1.0, 1.0, 0.0)],
            vec![Vec3::new(0.0, 2.0, 0.0), Vec3::new(1.0, 2.0, 0.0)],
        ];
        let segs = trails(&history, [255; 4]);
        assert_eq!(segs.len(), 4); // 2 particles × 2 windows
        assert_eq!(segs[0].a, Vec3::ZERO);
        assert_eq!(segs[0].b, Vec3::new(0.0, 1.0, 0.0));
    }

    #[test]
    fn box_edges_are_twelve_with_correct_lengths() {
        let b = DomainBox {
            min: Vec3::ZERO,
            max: Vec3::new(2.0, 3.0, 4.0),
            rank: 0,
        };
        let edges = box_edges(&b);
        assert_eq!(edges.len(), 12);
        let total: f32 = edges.iter().map(|(a, c)| c.sub(*a).len()).sum();
        assert!((total - 4.0 * (2.0 + 3.0 + 4.0)).abs() < 1e-4);
    }

    #[test]
    fn box_mesh_matches_bounds() {
        let b = DomainBox {
            min: Vec3::new(1.0, 2.0, 3.0),
            max: Vec3::new(4.0, 6.0, 8.0),
            rank: 1,
        };
        let m = box_mesh(&b);
        let (lo, hi) = m.bounds().unwrap();
        assert_eq!(lo, b.min);
        assert_eq!(hi, b.max);
        assert_eq!(m.tri_count(), 12);
    }

    #[test]
    fn empty_inputs_yield_empty_outputs() {
        assert!(diamonds(&[], 1.0).is_empty());
        assert!(velocity_vectors(&[], &[], &[], 1.0).is_empty());
        assert!(trails(&[], [0; 4]).is_empty());
    }
}
