//! Isosurface extraction.
//!
//! §2.2 of the paper: "the isosurfaces were rendered and the output of the
//! graphics pipes returned to the user's laptop" — isosurfacing the LB order
//! parameter is the central visualization of the RealityGrid demo, and §1
//! names "3D isosurfacing and volume rendering" as required interface
//! capabilities.
//!
//! We implement the *tetrahedral decomposition* variant of marching cubes
//! (marching tetrahedra): each cell is split into six tetrahedra and each
//! tetrahedron is contoured exactly. Compared to classic table-driven
//! marching cubes this produces ~2× more triangles but is table-free,
//! topologically unambiguous, and easy to verify — the right trade-off for
//! a reproduction whose experiments measure *geometry volume and timing
//! shape*, not GPU throughput.

use crate::field::Field3;
use crate::mesh::TriMesh;
use crate::Vec3;

/// The six tetrahedra of a cube, as indices into the cube-corner numbering
/// `corner = (dx, dy, dz)` with bit 0 = x, bit 1 = y, bit 2 = z.
/// This decomposition shares the main diagonal 0–7, so adjacent cubes tile
/// consistently and the resulting surface is crack-free.
const TETS: [[usize; 4]; 6] = [
    [0, 5, 1, 7],
    [0, 1, 3, 7],
    [0, 3, 2, 7],
    [0, 2, 6, 7],
    [0, 6, 4, 7],
    [0, 4, 5, 7],
];

#[inline]
fn corner_offset(c: usize) -> (usize, usize, usize) {
    (c & 1, (c >> 1) & 1, (c >> 2) & 1)
}

/// Linear interpolation of the iso-crossing point on an edge.
#[inline]
fn edge_point(p0: Vec3, v0: f32, p1: Vec3, v1: f32, iso: f32) -> Vec3 {
    let denom = v1 - v0;
    let t = if denom.abs() < 1e-12 {
        0.5
    } else {
        ((iso - v0) / denom).clamp(0.0, 1.0)
    };
    p0.lerp(p1, t)
}

/// Contour one tetrahedron; emits 0, 1 or 2 triangles into `mesh`.
fn contour_tet(mesh: &mut TriMesh, p: [Vec3; 4], v: [f32; 4], iso: f32) {
    // classification bitmask: bit i set ⇔ v[i] >= iso ("inside")
    let mut mask = 0usize;
    for (i, &val) in v.iter().enumerate() {
        if val >= iso {
            mask |= 1 << i;
        }
    }
    // helper producing the crossing point on edge (a,b)
    let ep = |a: usize, b: usize| edge_point(p[a], v[a], p[b], v[b], iso);
    // Orient triangles so the normal points toward decreasing field value
    // (outward for a "blob" where inside >= iso). We fix orientation by the
    // gradient direction later via push with geometric normal; here we just
    // choose a consistent winding per case.
    let mut tri = |a: Vec3, b: Vec3, c: Vec3| {
        let n = b.sub(a).cross(c.sub(a)).normalized();
        mesh.push_tri(a, b, c, n);
    };
    match mask {
        0x0 | 0xF => {}
        // single corner inside
        0x1 => tri(ep(0, 1), ep(0, 2), ep(0, 3)),
        0x2 => tri(ep(1, 0), ep(1, 3), ep(1, 2)),
        0x4 => tri(ep(2, 0), ep(2, 1), ep(2, 3)),
        0x8 => tri(ep(3, 0), ep(3, 2), ep(3, 1)),
        // single corner outside (complement cases, opposite winding)
        0xE => tri(ep(0, 1), ep(0, 3), ep(0, 2)),
        0xD => tri(ep(1, 0), ep(1, 2), ep(1, 3)),
        0xB => tri(ep(2, 0), ep(2, 3), ep(2, 1)),
        0x7 => tri(ep(3, 0), ep(3, 1), ep(3, 2)),
        // two in / two out: quad split into two triangles
        0x3 => {
            let (a, b, c, d) = (ep(0, 2), ep(0, 3), ep(1, 3), ep(1, 2));
            tri(a, b, c);
            tri(a, c, d);
        }
        0xC => {
            let (a, b, c, d) = (ep(0, 2), ep(1, 2), ep(1, 3), ep(0, 3));
            tri(a, b, c);
            tri(a, c, d);
        }
        0x5 => {
            let (a, b, c, d) = (ep(0, 1), ep(0, 3), ep(2, 3), ep(2, 1));
            tri(a, b, c);
            tri(a, c, d);
        }
        0xA => {
            let (a, b, c, d) = (ep(0, 1), ep(2, 1), ep(2, 3), ep(0, 3));
            tri(a, b, c);
            tri(a, c, d);
        }
        0x6 => {
            let (a, b, c, d) = (ep(1, 0), ep(1, 3), ep(2, 3), ep(2, 0));
            tri(a, b, c);
            tri(a, c, d);
        }
        0x9 => {
            let (a, b, c, d) = (ep(1, 0), ep(2, 0), ep(2, 3), ep(1, 3));
            tri(a, b, c);
            tri(a, c, d);
        }
        _ => unreachable!("4-bit mask"),
    }
}

/// Contour every cell of one z-slab (cells `[z, z+1)`) into `mesh`, in
/// the serial y-then-x order.
fn extract_slab(field: &Field3, iso: f32, z: usize, mesh: &mut TriMesh) {
    let (nx, ny, _) = field.dims();
    for y in 0..ny - 1 {
        for x in 0..nx - 1 {
            // gather cube corners
            let mut pv = [(Vec3::ZERO, 0.0f32); 8];
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for (c, slot) in pv.iter_mut().enumerate() {
                let (dx, dy, dz) = corner_offset(c);
                let v = field.get(x + dx, y + dy, z + dz);
                lo = lo.min(v);
                hi = hi.max(v);
                *slot = (
                    Vec3::new((x + dx) as f32, (y + dy) as f32, (z + dz) as f32),
                    v,
                );
            }
            // fast reject: cell entirely on one side
            if lo >= iso || hi < iso {
                continue;
            }
            for tet in &TETS {
                let p = [pv[tet[0]].0, pv[tet[1]].0, pv[tet[2]].0, pv[tet[3]].0];
                let v = [pv[tet[0]].1, pv[tet[1]].1, pv[tet[2]].1, pv[tet[3]].1];
                contour_tet(mesh, p, v, iso);
            }
        }
    }
}

/// Extract the isosurface `field == iso` as a triangle mesh in lattice
/// coordinates, on the default shared executor pool. Normals are per-face
/// geometric normals; call [`TriMesh::recompute_normals`] for smooth
/// shading, or use [`isosurface_smooth`] which orients and smooths using
/// field gradients.
pub fn isosurface(field: &Field3, iso: f32) -> TriMesh {
    isosurface_with(&gridsteer_exec::global(), field, iso)
}

/// [`isosurface`] on an explicit executor pool. Extraction is parallel
/// over one-cell-thick z-slabs; the slab meshes are concatenated in z
/// order, reproducing the serial emission order exactly — the result is
/// byte-identical for any thread count.
pub fn isosurface_with(pool: &gridsteer_exec::ExecPool, field: &Field3, iso: f32) -> TriMesh {
    let (nx, ny, nz) = field.dims();
    let mut mesh = TriMesh::new();
    if nx < 2 || ny < 2 || nz < 2 {
        return mesh;
    }
    let slabs = pool.map(nz - 1, |z| {
        let mut m = TriMesh::new();
        extract_slab(field, iso, z, &mut m);
        m
    });
    for s in &slabs {
        mesh.merge(s); // ordered reduction: slab z, then z+1, …
    }
    mesh
}

/// Isosurface with gradient-oriented smooth normals: each vertex normal is
/// the (negated) field gradient sampled at the vertex, which is what
/// AVS/Express-class renderers shade with.
pub fn isosurface_smooth(field: &Field3, iso: f32) -> TriMesh {
    isosurface_smooth_with(&gridsteer_exec::global(), field, iso)
}

/// [`isosurface_smooth`] on an explicit executor pool (both the extraction
/// and the per-vertex gradient fix-up are parallel and deterministic).
pub fn isosurface_smooth_with(
    pool: &gridsteer_exec::ExecPool,
    field: &Field3,
    iso: f32,
) -> TriMesh {
    let mut mesh = isosurface_with(pool, field, iso);
    let vertices = &mesh.vertices;
    // fixed grain: the vertex→chunk mapping never depends on thread count
    pool.parallel_chunks(&mut mesh.normals, 4096, |ci, chunk| {
        let base = ci * 4096;
        for (k, n) in chunk.iter_mut().enumerate() {
            let g = grad_at(field, vertices[base + k]);
            if g.len() > 1e-12 {
                *n = g.scale(-1.0).normalized();
            }
        }
    });
    mesh
}

fn grad_at(field: &Field3, p: Vec3) -> Vec3 {
    let x = p.x.round().max(0.0) as usize;
    let y = p.y.round().max(0.0) as usize;
    let z = p.z.round().max(0.0) as usize;
    let (nx, ny, nz) = field.dims();
    field.gradient(x.min(nx - 1), y.min(ny - 1), z.min(nz - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_field(n: usize, r: f32) -> Field3 {
        let c = (n as f32 - 1.0) / 2.0;
        Field3::from_fn(n, n, n, |x, y, z| {
            let dx = x as f32 - c;
            let dy = y as f32 - c;
            let dz = z as f32 - c;
            r - (dx * dx + dy * dy + dz * dz).sqrt() // >0 inside
        })
    }

    #[test]
    fn empty_outside_value_range() {
        let f = sphere_field(16, 5.0);
        assert!(isosurface(&f, 1e9).is_empty());
        assert!(isosurface(&f, -1e9).is_empty());
    }

    #[test]
    fn sphere_area_approximates_4_pi_r2() {
        let r = 10.0;
        let f = sphere_field(32, r);
        let m = isosurface(&f, 0.0);
        assert!(!m.is_empty());
        let area = m.area();
        let expect = 4.0 * std::f32::consts::PI * r * r;
        let rel = (area - expect).abs() / expect;
        assert!(rel < 0.05, "area={area} expect={expect} rel={rel}");
    }

    #[test]
    fn vertices_lie_on_isosurface() {
        let f = sphere_field(24, 8.0);
        let m = isosurface(&f, 0.0);
        let c = (24.0 - 1.0) / 2.0;
        for v in &m.vertices {
            let d = ((v.x - c).powi(2) + (v.y - c).powi(2) + (v.z - c).powi(2)).sqrt();
            assert!((d - 8.0).abs() < 0.9, "vertex at radius {d}");
        }
    }

    #[test]
    fn tri_count_scales_with_resolution() {
        let small = isosurface(&sphere_field(16, 5.0), 0.0).tri_count();
        let big = isosurface(&sphere_field(32, 11.0), 0.0).tri_count();
        assert!(big > small * 2, "small={small} big={big}");
    }

    #[test]
    fn smooth_normals_point_outward_on_sphere() {
        let f = sphere_field(24, 8.0);
        let m = isosurface_smooth(&f, 0.0);
        let c = (24.0 - 1.0) / 2.0;
        let mut agree = 0usize;
        for (v, n) in m.vertices.iter().zip(&m.normals) {
            let radial = Vec3::new(v.x - c, v.y - c, v.z - c).normalized();
            if radial.dot(*n) > 0.0 {
                agree += 1;
            }
        }
        // field decreases outward, so -grad points outward
        assert!(agree as f32 / m.vertices.len() as f32 > 0.95);
    }

    #[test]
    fn degenerate_grid_is_empty() {
        let f = Field3::zeros(1, 5, 5);
        assert!(isosurface(&f, 0.0).is_empty());
    }

    #[test]
    fn flat_field_at_iso_emits_nothing_pathological() {
        // all values exactly at iso: every corner counts as "inside"
        let f = Field3::from_vec(4, 4, 4, vec![1.0; 64]);
        let m = isosurface(&f, 1.0);
        assert!(m.is_empty());
    }

    #[test]
    fn plane_surface_has_expected_area() {
        // field = x − 3.5 on an 8³ grid ⇒ plane x = 3.5, area 7×7
        let f = Field3::from_fn(8, 8, 8, |x, _, _| x as f32 - 3.5);
        let m = isosurface(&f, 0.0);
        assert!((m.area() - 49.0).abs() < 0.5, "area={}", m.area());
    }
}
