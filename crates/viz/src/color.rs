//! Transfer-function colormaps.
//!
//! Mapping scalar data to colour is the COVISE `Colors` module's job; the
//! PEPC visualization colours particles by processor number (§3.4). Two
//! classic maps plus a categorical palette for processor domains.

/// A colormap from `[0,1]` to RGBA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorMap {
    /// Blue → cyan → green → yellow → red (the classic "rainbow").
    Rainbow,
    /// Black → white.
    Grayscale,
    /// Blue → white → red, for signed fields like the LB order parameter.
    CoolWarm,
}

impl ColorMap {
    /// Map `t ∈ \[0,1\]` (clamped) to RGBA.
    pub fn map(self, t: f32) -> [u8; 4] {
        let t = t.clamp(0.0, 1.0);
        let (r, g, b) = match self {
            ColorMap::Grayscale => (t, t, t),
            ColorMap::Rainbow => {
                // piecewise-linear rainbow over 4 segments
                let s = t * 4.0;
                match s as u32 {
                    0 => (0.0, s, 1.0),
                    1 => (0.0, 1.0, 1.0 - (s - 1.0)),
                    2 => (s - 2.0, 1.0, 0.0),
                    _ => (1.0, (4.0 - s).max(0.0), 0.0),
                }
            }
            ColorMap::CoolWarm => {
                if t < 0.5 {
                    let u = t * 2.0;
                    (u, u, 1.0)
                } else {
                    let u = (t - 0.5) * 2.0;
                    (1.0, 1.0 - u, 1.0 - u)
                }
            }
        };
        [
            (r * 255.0).round() as u8,
            (g * 255.0).round() as u8,
            (b * 255.0).round() as u8,
            255,
        ]
    }

    /// Map a value from `[lo, hi]` (degenerate ranges map to midpoint).
    pub fn map_range(self, v: f32, lo: f32, hi: f32) -> [u8; 4] {
        if hi <= lo {
            return self.map(0.5);
        }
        self.map((v - lo) / (hi - lo))
    }
}

/// A categorical palette for labelling processor domains (§3.4 colours
/// particles by "processor number"): 12 well-separated colours, cycled.
pub fn domain_color(rank: usize) -> [u8; 4] {
    const PALETTE: [[u8; 4]; 12] = [
        [230, 25, 75, 255],
        [60, 180, 75, 255],
        [255, 225, 25, 255],
        [0, 130, 200, 255],
        [245, 130, 48, 255],
        [145, 30, 180, 255],
        [70, 240, 240, 255],
        [240, 50, 230, 255],
        [210, 245, 60, 255],
        [250, 190, 190, 255],
        [0, 128, 128, 255],
        [170, 110, 40, 255],
    ];
    PALETTE[rank % PALETTE.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        assert_eq!(ColorMap::Grayscale.map(0.0), [0, 0, 0, 255]);
        assert_eq!(ColorMap::Grayscale.map(1.0), [255, 255, 255, 255]);
        assert_eq!(ColorMap::Rainbow.map(0.0), [0, 0, 255, 255]);
        assert_eq!(ColorMap::Rainbow.map(1.0), [255, 0, 0, 255]);
        assert_eq!(ColorMap::CoolWarm.map(0.0), [0, 0, 255, 255]);
        assert_eq!(ColorMap::CoolWarm.map(1.0), [255, 0, 0, 255]);
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(ColorMap::Rainbow.map(-3.0), ColorMap::Rainbow.map(0.0));
        assert_eq!(ColorMap::Rainbow.map(7.0), ColorMap::Rainbow.map(1.0));
    }

    #[test]
    fn map_range_normalizes() {
        let c1 = ColorMap::Grayscale.map_range(5.0, 0.0, 10.0);
        assert_eq!(c1, ColorMap::Grayscale.map(0.5));
        // degenerate range
        let c2 = ColorMap::Grayscale.map_range(5.0, 3.0, 3.0);
        assert_eq!(c2, ColorMap::Grayscale.map(0.5));
    }

    #[test]
    fn coolwarm_midpoint_is_white() {
        assert_eq!(ColorMap::CoolWarm.map(0.5), [255, 255, 255, 255]);
    }

    #[test]
    fn domain_colors_distinct_and_cyclic() {
        let a = domain_color(0);
        let b = domain_color(1);
        assert_ne!(a, b);
        assert_eq!(domain_color(0), domain_color(12));
    }
}
