//! Framebuffer codecs: delta + run-length encoding.
//!
//! §2.4: VizServer "greatly reduces network traffic since only compressed
//! bitmaps need to be sent to the participating sites". This module is that
//! compressed-bitmap path. The codec is deliberately simple and fast —
//! the point of experiment EC1 is the *byte-volume shape* (pixels vs
//! geometry vs parameter-sync), not codec sophistication:
//!
//! 1. **Delta stage** — XOR against the previous frame (inter-frame
//!    coherence: a slowly rotating isosurface changes few pixels).
//! 2. **RLE stage** — byte-wise run-length encoding of the (mostly zero)
//!    delta, or of the raw frame for keyframes.
//!
//! Encoding is parallel over row-aligned bands of at least
//! [`BAND_MIN_BYTES`] (each band is delta'd and RLE'd independently, then
//! the band payloads are concatenated in order). Band boundaries depend
//! only on the frame width, never on the thread count, so the wire bytes
//! are identical at any parallelism — and frames smaller than one band
//! (including the committed golden fixture) encode exactly as the serial
//! codec did. A run crossing a band boundary is emitted as two pairs,
//! which [`rle_decode`] reassembles transparently.

use crate::framebuffer::Framebuffer;

/// Minimum RLE band size; actual bands are whole rows. Fixed so the band
/// split (and therefore the payload bytes) never depends on thread count.
pub const BAND_MIN_BYTES: usize = 16 * 1024;

/// Band length in bytes for a frame of the given width: the smallest
/// whole-row multiple of the row stride that is ≥ [`BAND_MIN_BYTES`].
fn band_len(width: usize) -> usize {
    let row = (width * 4).max(1);
    row * BAND_MIN_BYTES.div_ceil(row)
}

/// An encoded frame: either a keyframe (self-contained) or a delta against
/// the previous frame.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedFrame {
    /// True if this frame can be decoded without history.
    pub keyframe: bool,
    /// RLE payload.
    pub payload: Vec<u8>,
    /// Original (uncompressed) size in bytes.
    pub raw_size: usize,
}

impl EncodedFrame {
    /// Compressed size in bytes (what actually crosses the network).
    pub fn wire_size(&self) -> usize {
        self.payload.len() + 8 // payload + tiny header
    }

    /// Compression ratio `raw / wire` (>1 means compression won). An
    /// empty frame (zero raw bytes, or a degenerate zero-byte wire size)
    /// reports 0.0 rather than dividing by zero.
    pub fn ratio(&self) -> f64 {
        let wire = self.wire_size();
        if wire == 0 || self.raw_size == 0 {
            return 0.0;
        }
        self.raw_size as f64 / wire as f64
    }
}

/// Byte-wise run-length encode: pairs `(count, byte)` with count ∈ 1..=255.
///
/// The run scan has a scalar reference and a SWAR fast path selected by
/// [`lanes::backend`]; both produce exactly the same run lengths, so the
/// wire bytes are identical on either backend.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let swar = lanes::simd_enabled();
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let run = if swar {
            run_len_swar(data, i, b)
        } else {
            run_len_scalar(data, i, b)
        };
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

/// Reference run scan: length of the run of `b` starting at `data[i]`,
/// capped at 255.
#[inline(always)]
fn run_len_scalar(data: &[u8], i: usize, b: u8) -> usize {
    let mut run = 1usize;
    while run < 255 && i + run < data.len() && data[i + run] == b {
        run += 1;
    }
    run
}

/// SWAR run scan: XORs eight input bytes at a time against the broadcast
/// run byte; the first mismatch position is the trailing-zero count of the
/// XOR word (bytes loaded little-endian, so byte order matches memory
/// order). Returns exactly [`run_len_scalar`]'s answer — this changes scan
/// speed, never the emitted pairs.
#[inline(always)]
fn run_len_swar(data: &[u8], i: usize, b: u8) -> usize {
    const W: usize = 8;
    let limit = data.len().min(i + 255);
    let splat = (b as u64) * 0x0101_0101_0101_0101;
    let mut j = i + 1;
    while j + W <= limit {
        let word = u64::from_le_bytes(data[j..j + W].try_into().unwrap());
        let diff = word ^ splat;
        if diff != 0 {
            return j - i + diff.trailing_zeros() as usize / 8;
        }
        j += W;
    }
    while j < limit && data[j] == b {
        j += 1;
    }
    j - i
}

/// Inverse of [`rle_encode`]. Returns `None` on malformed input.
pub fn rle_decode(data: &[u8]) -> Option<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(data.len() * 4);
    for pair in data.chunks_exact(2) {
        let (count, b) = (pair[0], pair[1]);
        if count == 0 {
            return None;
        }
        out.extend(std::iter::repeat_n(b, count as usize));
    }
    Some(out)
}

/// Stateful delta+RLE codec. Encoder and decoder each keep the previous
/// frame; a decoder fed every frame in order reconstructs exactly.
#[derive(Debug, Default)]
pub struct DeltaRleCodec {
    prev: Option<Vec<u8>>,
    /// Force a keyframe every `keyframe_interval` frames (0 = only first).
    pub keyframe_interval: usize,
    frame_count: usize,
}

impl DeltaRleCodec {
    /// New codec; first frame is always a keyframe.
    pub fn new() -> Self {
        DeltaRleCodec {
            prev: None,
            keyframe_interval: 0,
            frame_count: 0,
        }
    }

    /// Reset history (forces the next frame to be a keyframe).
    pub fn reset(&mut self) {
        self.prev = None;
        self.frame_count = 0;
    }

    /// Encode a framebuffer on the default shared executor pool.
    pub fn encode(&mut self, fb: &Framebuffer) -> EncodedFrame {
        self.encode_with(&gridsteer_exec::global(), fb)
    }

    /// Encode a framebuffer on an explicit executor pool. Parallel over
    /// row bands (see the module docs); output bytes are identical for any
    /// thread count.
    pub fn encode_with(
        &mut self,
        pool: &gridsteer_exec::ExecPool,
        fb: &Framebuffer,
    ) -> EncodedFrame {
        let raw = fb.bytes();
        let force_key =
            self.keyframe_interval > 0 && self.frame_count.is_multiple_of(self.keyframe_interval);
        self.frame_count += 1;
        let bl = band_len(fb.width());
        let bands = raw.len().div_ceil(bl);
        match (&self.prev, force_key) {
            (Some(prev), false) if prev.len() == raw.len() => {
                let encoded = pool.map(bands, |i| {
                    let lo = i * bl;
                    let hi = (lo + bl).min(raw.len());
                    let delta: Vec<u8> = raw[lo..hi]
                        .iter()
                        .zip(&prev[lo..hi])
                        .map(|(a, b)| a ^ b)
                        .collect();
                    rle_encode(&delta)
                });
                let payload = encoded.concat(); // ordered band concatenation
                self.prev = Some(raw.to_vec());
                EncodedFrame {
                    keyframe: false,
                    payload,
                    raw_size: raw.len(),
                }
            }
            _ => {
                let encoded = pool.map(bands, |i| {
                    let lo = i * bl;
                    rle_encode(&raw[lo..(lo + bl).min(raw.len())])
                });
                let payload = encoded.concat();
                self.prev = Some(raw.to_vec());
                EncodedFrame {
                    keyframe: true,
                    payload,
                    raw_size: raw.len(),
                }
            }
        }
    }

    /// Decode into a framebuffer of the given dimensions. Returns `None` if
    /// the payload is malformed, sizes mismatch, or a delta frame arrives
    /// without history.
    pub fn decode(
        &mut self,
        frame: &EncodedFrame,
        width: usize,
        height: usize,
    ) -> Option<Framebuffer> {
        let body = rle_decode(&frame.payload)?;
        if body.len() != width * height * 4 {
            return None;
        }
        let raw = if frame.keyframe {
            body
        } else {
            let prev = self.prev.as_ref()?;
            if prev.len() != body.len() {
                return None;
            }
            body.iter().zip(prev.iter()).map(|(d, p)| d ^ p).collect()
        };
        self.prev = Some(raw.clone());
        let mut fb = Framebuffer::new(width, height);
        fb.bytes_mut().copy_from_slice(&raw);
        Some(fb)
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The SWAR run scan answers exactly like the scalar reference at
        /// every start position — including runs crossing the 255 cap and
        /// mismatches at every offset inside a word. The tiny alphabet
        /// makes long runs (and 255-cap crossings) common.
        #[test]
        fn swar_run_scan_matches_scalar_reference(
            data in proptest::collection::vec(0u8..3, 1..600),
            start in 0usize..600,
        ) {
            let start = start % data.len();
            let b = data[start];
            prop_assert_eq!(
                run_len_swar(&data, start, b),
                run_len_scalar(&data, start, b)
            );
        }

        /// RLE is lossless over arbitrary bytes — the payload bytes of
        /// every encoded framebuffer plane.
        #[test]
        fn rle_roundtrips_arbitrary_bytes(
            data in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            prop_assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
        }

        /// RLE is lossless over grids of raw f32 bit patterns including
        /// NaN payloads: the codec must treat float planes as opaque
        /// bytes, never canonicalizing a NaN.
        #[test]
        fn rle_roundtrips_nan_payload_grids(
            words in proptest::collection::vec(any::<u32>(), 1..256),
        ) {
            // steer a third of the lattice values into quiet/signalling
            // NaNs with arbitrary payload bits
            let grid: Vec<f32> = words
                .iter()
                .map(|&w| match w % 3 {
                    0 => f32::from_bits(0x7fc0_0000 | (w >> 10)),
                    1 => f32::from_bits(0xff80_0001 | (w >> 10)),
                    _ => f32::from_bits(w),
                })
                .collect();
            let bytes: Vec<u8> = grid.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect();
            let back = rle_decode(&rle_encode(&bytes)).unwrap();
            prop_assert_eq!(back, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_roundtrip_simple() {
        let data = b"aaaabbbcccccccccccd";
        assert_eq!(rle_decode(&rle_encode(data)).unwrap(), data);
    }

    #[test]
    fn rle_handles_long_runs() {
        let data = vec![7u8; 1000];
        let enc = rle_encode(&data);
        assert!(enc.len() <= 10); // ceil(1000/255)*2
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn rle_rejects_malformed() {
        assert!(rle_decode(&[1]).is_none()); // odd length
        assert!(rle_decode(&[0, 5]).is_none()); // zero count
    }

    #[test]
    fn rle_empty_input() {
        assert_eq!(rle_encode(&[]), Vec::<u8>::new());
        assert_eq!(rle_decode(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rle_single_byte() {
        let enc = rle_encode(&[42]);
        assert_eq!(enc, vec![1, 42]);
        assert_eq!(rle_decode(&enc).unwrap(), vec![42]);
    }

    #[test]
    fn rle_single_run_entire_input() {
        // One homogeneous run shorter than the count limit → exactly one pair.
        let data = vec![9u8; 200];
        let enc = rle_encode(&data);
        assert_eq!(enc, vec![200, 9]);
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn rle_max_length_run_boundary() {
        // Exactly 255: the maximum a single pair can carry.
        let exact = vec![3u8; 255];
        assert_eq!(rle_encode(&exact), vec![255, 3]);
        assert_eq!(rle_decode(&rle_encode(&exact)).unwrap(), exact);
        // 256: must split into 255 + 1, same byte in both pairs.
        let over = vec![3u8; 256];
        assert_eq!(rle_encode(&over), vec![255, 3, 1, 3]);
        assert_eq!(rle_decode(&rle_encode(&over)).unwrap(), over);
    }

    #[test]
    fn rle_run_boundary_then_different_byte() {
        // A max-length run followed by a different byte must not merge.
        let mut data = vec![8u8; 255];
        data.push(1);
        assert_eq!(rle_encode(&data), vec![255, 8, 1, 1]);
        assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
    }

    #[test]
    fn rle_worst_case_alternation_expands_2x() {
        // No two adjacent bytes equal → every byte costs a (count, byte) pair.
        let data: Vec<u8> = (0..100u8).collect();
        let enc = rle_encode(&data);
        assert_eq!(enc.len(), data.len() * 2);
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn swar_and_scalar_run_scans_agree() {
        // Adversarial run shapes: boundary at 255, mismatches at every
        // offset within a SWAR word, tail shorter than a word.
        let mut cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![5],
            vec![5; 254],
            vec![5; 255],
            vec![5; 256],
            vec![5; 1021],
            (0..100u8).collect(),
        ];
        for off in 0..9 {
            let mut v = vec![7u8; 40 + off];
            v.push(9);
            v.extend(vec![7u8; 3]);
            cases.push(v);
        }
        for data in &cases {
            let mut i = 0;
            while i < data.len() {
                let b = data[i];
                let s = run_len_scalar(data, i, b);
                let w = run_len_swar(data, i, b);
                assert_eq!(s, w, "len={} i={i}", data.len());
                i += s;
            }
        }
    }

    #[test]
    fn empty_framebuffer_encodes_and_ratio_is_finite() {
        let mut enc = DeltaRleCodec::new();
        let mut dec = DeltaRleCodec::new();
        let fb = Framebuffer::new(0, 0);
        for _ in 0..2 {
            let f = enc.encode(&fb);
            assert_eq!(f.raw_size, 0);
            assert!(f.payload.is_empty());
            assert_eq!(f.ratio(), 0.0, "no division by the 0-byte raw size");
            assert!(f.ratio().is_finite());
            assert_eq!(dec.decode(&f, 0, 0).unwrap(), fb);
        }
    }

    #[test]
    fn codec_minimal_framebuffer() {
        // 1×1 RGBA: the smallest frame the delta path can see.
        let mut enc = DeltaRleCodec::new();
        let mut dec = DeltaRleCodec::new();
        let mut fb = Framebuffer::new(1, 1);
        fb.set(0, 0, [1, 2, 3, 255]);
        for _ in 0..3 {
            let e = enc.encode(&fb);
            assert_eq!(dec.decode(&e, 1, 1).unwrap(), fb);
        }
    }

    #[test]
    fn codec_reset_forces_keyframe() {
        let mut enc = DeltaRleCodec::new();
        let fb = Framebuffer::new(4, 4);
        assert!(enc.encode(&fb).keyframe);
        assert!(!enc.encode(&fb).keyframe);
        enc.reset();
        assert!(enc.encode(&fb).keyframe);
    }

    #[test]
    fn first_frame_is_keyframe() {
        let mut c = DeltaRleCodec::new();
        let fb = Framebuffer::new(8, 8);
        let f = c.encode(&fb);
        assert!(f.keyframe);
    }

    #[test]
    fn static_scene_compresses_to_almost_nothing() {
        let mut enc = DeltaRleCodec::new();
        let fb = Framebuffer::new(64, 64);
        let _key = enc.encode(&fb);
        let delta = enc.encode(&fb);
        assert!(!delta.keyframe);
        // all-zero delta: one run pair per 255 bytes
        assert!(delta.wire_size() < fb.byte_size() / 100);
        assert!(delta.ratio() > 100.0);
    }

    #[test]
    fn encode_decode_roundtrip_over_changes() {
        let mut enc = DeltaRleCodec::new();
        let mut dec = DeltaRleCodec::new();
        let mut fb = Framebuffer::new(16, 16);
        for step in 0..10 {
            fb.set(step, step, [step as u8 * 20, 5, 200, 255]);
            let frame = enc.encode(&fb);
            let out = dec.decode(&frame, 16, 16).unwrap();
            assert_eq!(out, fb, "step {step}");
        }
    }

    #[test]
    fn delta_without_history_fails() {
        let mut enc = DeltaRleCodec::new();
        let fb = Framebuffer::new(4, 4);
        let _ = enc.encode(&fb);
        let delta = enc.encode(&fb);
        let mut fresh_dec = DeltaRleCodec::new();
        assert!(fresh_dec.decode(&delta, 4, 4).is_none());
    }

    #[test]
    fn keyframe_interval_forces_keys() {
        let mut enc = DeltaRleCodec::new();
        enc.keyframe_interval = 3;
        let fb = Framebuffer::new(4, 4);
        let kinds: Vec<bool> = (0..7).map(|_| enc.encode(&fb).keyframe).collect();
        assert_eq!(kinds, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut enc = DeltaRleCodec::new();
        let fb = Framebuffer::new(8, 8);
        let f = enc.encode(&fb);
        let mut dec = DeltaRleCodec::new();
        assert!(dec.decode(&f, 4, 4).is_none());
    }
}
