//! Triangle meshes.
//!
//! The output of isosurface extraction and glyph expansion; the "large and
//! complex data sets" of §1 that are "too large to be visualized on a laptop
//! client" (§2.4). [`TriMesh::byte_size`] is the geometry-shipping cost used
//! by the collaboration-traffic experiment (EC1): the paper's argument for
//! VizServer is precisely that shipping compressed bitmaps beats shipping
//! this geometry.

use crate::Vec3;

/// An indexed triangle mesh with per-vertex normals.
#[derive(Debug, Clone, Default)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<Vec3>,
    /// Per-vertex normals (same length as `vertices`).
    pub normals: Vec<Vec3>,
    /// Triangle vertex indices, three per triangle.
    pub indices: Vec<u32>,
}

impl TriMesh {
    /// Empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triangles.
    pub fn tri_count(&self) -> usize {
        self.indices.len() / 3
    }

    /// Number of vertices.
    pub fn vert_count(&self) -> usize {
        self.vertices.len()
    }

    /// True if the mesh contains no triangles.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Append a triangle given three positions and a shared normal,
    /// creating three new vertices (no deduplication — matches what a
    /// streaming marching-cubes extractor emits).
    pub fn push_tri(&mut self, a: Vec3, b: Vec3, c: Vec3, n: Vec3) {
        let base = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&[a, b, c]);
        self.normals.extend_from_slice(&[n, n, n]);
        self.indices.extend_from_slice(&[base, base + 1, base + 2]);
    }

    /// Append another mesh.
    pub fn merge(&mut self, other: &TriMesh) {
        let base = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.normals.extend_from_slice(&other.normals);
        self.indices.extend(other.indices.iter().map(|&i| i + base));
    }

    /// Axis-aligned bounding box `(min, max)`, or `None` if empty.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        let mut it = self.vertices.iter();
        let first = *it.next()?;
        let mut lo = first;
        let mut hi = first;
        for v in it {
            lo = Vec3::new(lo.x.min(v.x), lo.y.min(v.y), lo.z.min(v.z));
            hi = Vec3::new(hi.x.max(v.x), hi.y.max(v.y), hi.z.max(v.z));
        }
        Some((lo, hi))
    }

    /// Geometry payload size in bytes if shipped raw: positions + normals
    /// (3+3 f32) per vertex plus u32 indices.
    pub fn byte_size(&self) -> usize {
        self.vertices.len() * 24 + self.indices.len() * 4
    }

    /// Geometric surface area (sum of triangle areas).
    pub fn area(&self) -> f32 {
        let mut total = 0.0;
        for t in self.indices.chunks_exact(3) {
            let a = self.vertices[t[0] as usize];
            let b = self.vertices[t[1] as usize];
            let c = self.vertices[t[2] as usize];
            total += b.sub(a).cross(c.sub(a)).len() * 0.5;
        }
        total
    }

    /// Recompute per-vertex normals by area-weighted averaging of incident
    /// face normals.
    pub fn recompute_normals(&mut self) {
        let mut acc = vec![Vec3::ZERO; self.vertices.len()];
        for t in self.indices.chunks_exact(3) {
            let a = self.vertices[t[0] as usize];
            let b = self.vertices[t[1] as usize];
            let c = self.vertices[t[2] as usize];
            let fnorm = b.sub(a).cross(c.sub(a)); // length ∝ area
            for &i in t {
                acc[i as usize] = acc[i as usize].add(fnorm);
            }
        }
        self.normals = acc.into_iter().map(Vec3::normalized).collect();
    }

    /// The canonical unit cube (12 triangles), used by domain-box glyphs
    /// and tests.
    pub fn unit_cube() -> TriMesh {
        let mut m = TriMesh::new();
        let v = |x: f32, y: f32, z: f32| Vec3::new(x, y, z);
        // 6 faces, 2 triangles each, outward normals
        let faces: [([Vec3; 4], Vec3); 6] = [
            (
                [v(0., 0., 0.), v(0., 1., 0.), v(1., 1., 0.), v(1., 0., 0.)],
                v(0., 0., -1.),
            ),
            (
                [v(0., 0., 1.), v(1., 0., 1.), v(1., 1., 1.), v(0., 1., 1.)],
                v(0., 0., 1.),
            ),
            (
                [v(0., 0., 0.), v(0., 0., 1.), v(0., 1., 1.), v(0., 1., 0.)],
                v(-1., 0., 0.),
            ),
            (
                [v(1., 0., 0.), v(1., 1., 0.), v(1., 1., 1.), v(1., 0., 1.)],
                v(1., 0., 0.),
            ),
            (
                [v(0., 0., 0.), v(1., 0., 0.), v(1., 0., 1.), v(0., 0., 1.)],
                v(0., -1., 0.),
            ),
            (
                [v(0., 1., 0.), v(0., 1., 1.), v(1., 1., 1.), v(1., 1., 0.)],
                v(0., 1., 0.),
            ),
        ];
        for (quad, n) in faces {
            m.push_tri(quad[0], quad[1], quad[2], n);
            m.push_tri(quad[0], quad[2], quad[3], n);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tri_counts() {
        let mut m = TriMesh::new();
        m.push_tri(
            Vec3::new(0., 0., 0.),
            Vec3::new(1., 0., 0.),
            Vec3::new(0., 1., 0.),
            Vec3::new(0., 0., 1.),
        );
        assert_eq!(m.tri_count(), 1);
        assert_eq!(m.vert_count(), 3);
        assert_eq!(m.byte_size(), 3 * 24 + 3 * 4);
    }

    #[test]
    fn merge_offsets_indices() {
        let mut a = TriMesh::unit_cube();
        let b = TriMesh::unit_cube();
        let n = a.vert_count() as u32;
        a.merge(&b);
        assert_eq!(a.tri_count(), 24);
        assert!(a.indices[36..].iter().all(|&i| i >= n));
    }

    #[test]
    fn cube_bounds_and_area() {
        let c = TriMesh::unit_cube();
        let (lo, hi) = c.bounds().unwrap();
        assert_eq!(lo, Vec3::ZERO);
        assert_eq!(hi, Vec3::new(1., 1., 1.));
        assert!((c.area() - 6.0).abs() < 1e-5);
    }

    #[test]
    fn empty_mesh_has_no_bounds() {
        assert!(TriMesh::new().bounds().is_none());
        assert!(TriMesh::new().is_empty());
    }

    #[test]
    fn recomputed_normals_are_unit() {
        let mut c = TriMesh::unit_cube();
        c.recompute_normals();
        for n in &c.normals {
            assert!((n.len() - 1.0).abs() < 1e-5);
        }
    }
}
