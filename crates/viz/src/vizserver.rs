//! VizServer-style shared remote-rendering sessions.
//!
//! §2.4: "VizServer allows the output of the graphics pipes from an Onyx
//! visual supercomputer to be accessed remotely … which allows multiple
//! users to share the same login session on a remote machine", with only
//! compressed bitmaps crossing the network. [`VizServerSession`] models
//! exactly that: one render host, N attached viewers, per-viewer codec
//! state, shared control of the camera ("Participating sites able to run
//! OpenGL VizServer will be able to share control of the visualization").

use crate::camera::Camera;
use crate::codec::{DeltaRleCodec, EncodedFrame};
use crate::framebuffer::Framebuffer;
use crate::mesh::TriMesh;
use crate::raster::Rasterizer;
use crate::Vec3;
use std::collections::BTreeMap;

/// Identifies an attached viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewerId(pub u32);

/// Where a render session publishes its encoded output.
///
/// Historically the session shipped frames only through its private
/// per-viewer codec table ([`VizServerSession::ship_frame`]); a
/// `FrameSink` is the outward-facing half of that API, so the same render
/// host can instead hand each encoded frame to an external data plane
/// (the `gridsteer_bus` monitor hub implements this) that owns fan-out,
/// capability filtering, and delivery accounting.
pub trait FrameSink {
    /// True if the next frame must be a keyframe (e.g. a subscriber
    /// joined downstream and has no codec history).
    fn wants_keyframe(&self) -> bool {
        false
    }

    /// Accept one encoded frame.
    fn publish_frame(&mut self, frame: &EncodedFrame);
}

/// A trivial sink collecting frames into a vector (tests, local tools).
#[derive(Debug, Default)]
pub struct CollectSink {
    /// The frames published so far, in order.
    pub frames: Vec<EncodedFrame>,
}

impl FrameSink for CollectSink {
    fn publish_frame(&mut self, frame: &EncodedFrame) {
        self.frames.push(frame.clone());
    }
}

/// Per-session traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionStats {
    /// Frames rendered.
    pub frames: u64,
    /// Total bytes that would cross the network (sum over viewers).
    pub bytes_shipped: u64,
    /// Total uncompressed bytes those frames represent.
    pub bytes_raw: u64,
    /// Camera-control messages received.
    pub control_msgs: u64,
}

/// A shared remote-render session.
pub struct VizServerSession {
    width: usize,
    height: usize,
    camera: Camera,
    /// Which viewer currently holds camera control (VizServer collaborative
    /// mode shares one login session; one participant drives at a time).
    controller: Option<ViewerId>,
    viewers: BTreeMap<ViewerId, DeltaRleCodec>,
    /// Codec state of the broadcast path ([`VizServerSession::ship_frame_to`]):
    /// one encode per frame regardless of downstream fan-out.
    broadcast: DeltaRleCodec,
    next_id: u32,
    stats: SessionStats,
}

impl VizServerSession {
    /// Open a session rendering at the given resolution.
    pub fn new(width: usize, height: usize, camera: Camera) -> Self {
        VizServerSession {
            width,
            height,
            camera,
            controller: None,
            viewers: BTreeMap::new(),
            broadcast: DeltaRleCodec::new(),
            next_id: 0,
            stats: SessionStats::default(),
        }
    }

    /// Attach a viewer; the first viewer gets camera control.
    pub fn attach(&mut self) -> ViewerId {
        let id = ViewerId(self.next_id);
        self.next_id += 1;
        self.viewers.insert(id, DeltaRleCodec::new());
        if self.controller.is_none() {
            self.controller = Some(id);
        }
        id
    }

    /// Detach a viewer; control passes to the lowest remaining id.
    pub fn detach(&mut self, id: ViewerId) {
        self.viewers.remove(&id);
        if self.controller == Some(id) {
            self.controller = self.viewers.keys().min().copied();
        }
    }

    /// Number of attached viewers.
    pub fn viewer_count(&self) -> usize {
        self.viewers.len()
    }

    /// Current camera controller.
    pub fn controller(&self) -> Option<ViewerId> {
        self.controller
    }

    /// Hand camera control to another attached viewer.
    pub fn pass_control(&mut self, to: ViewerId) -> bool {
        if self.viewers.contains_key(&to) {
            self.controller = Some(to);
            true
        } else {
            false
        }
    }

    /// A viewer requests a camera change; only the controller may steer.
    /// Returns `true` if applied.
    pub fn control(&mut self, from: ViewerId, camera: Camera) -> bool {
        self.stats.control_msgs += 1;
        if self.controller == Some(from) {
            self.camera = camera;
            true
        } else {
            false
        }
    }

    /// Orbit request from a viewer (convenience wrapper over [`control`]).
    ///
    /// [`control`]: VizServerSession::control
    pub fn orbit(&mut self, from: ViewerId, yaw: f32) -> bool {
        let mut cam = self.camera;
        cam.orbit(yaw);
        self.control(from, cam)
    }

    /// Current camera.
    pub fn camera(&self) -> Camera {
        self.camera
    }

    /// Render `meshes` server-side and encode one frame per viewer.
    /// Every viewer sees the *same* image (the shared-session semantics);
    /// each has independent codec state (late joiners get keyframes).
    /// Returns the per-viewer encoded frames, sorted by viewer id.
    pub fn render_and_ship(
        &mut self,
        meshes: &[(&TriMesh, [u8; 4])],
    ) -> Vec<(ViewerId, EncodedFrame)> {
        let mut r = Rasterizer::new(self.width, self.height);
        r.clear([10, 10, 30, 255]);
        for (mesh, color) in meshes {
            r.draw_mesh(&self.camera, mesh, *color);
        }
        let fb = r.into_framebuffer();
        self.ship_frame(&fb)
    }

    /// Encode an externally-rendered framebuffer for every viewer.
    pub fn ship_frame(&mut self, fb: &Framebuffer) -> Vec<(ViewerId, EncodedFrame)> {
        self.stats.frames += 1;
        // BTreeMap: viewers encode (and ship) in ascending id order
        let out: Vec<(ViewerId, EncodedFrame)> = self
            .viewers
            .iter_mut()
            .map(|(&id, codec)| {
                let f = codec.encode(fb);
                (id, f)
            })
            .collect();
        for (_, f) in &out {
            self.stats.bytes_shipped += f.wire_size() as u64;
            self.stats.bytes_raw += f.raw_size as u64;
        }
        out
    }

    /// Render `meshes` server-side and publish one encoded frame to an
    /// external sink — the data-plane path: the sink (e.g. a monitor hub)
    /// owns fan-out and per-subscriber state, so the session encodes each
    /// frame exactly once however many viewers are downstream.
    pub fn render_to_sink(
        &mut self,
        meshes: &[(&TriMesh, [u8; 4])],
        sink: &mut dyn FrameSink,
    ) -> EncodedFrame {
        let mut r = Rasterizer::new(self.width, self.height);
        r.clear([10, 10, 30, 255]);
        for (mesh, color) in meshes {
            r.draw_mesh(&self.camera, mesh, *color);
        }
        let fb = r.into_framebuffer();
        self.ship_frame_to(&fb, sink)
    }

    /// Encode an externally-rendered framebuffer once and publish it to
    /// the sink. Emits a keyframe whenever the sink asks for one (a
    /// downstream subscriber with no history), mirroring the late-joiner
    /// behaviour of the per-viewer path.
    pub fn ship_frame_to(&mut self, fb: &Framebuffer, sink: &mut dyn FrameSink) -> EncodedFrame {
        if sink.wants_keyframe() {
            self.broadcast.reset();
        }
        let frame = self.broadcast.encode(fb);
        self.stats.frames += 1;
        self.stats.bytes_shipped += frame.wire_size() as u64;
        self.stats.bytes_raw += frame.raw_size as u64;
        sink.publish_frame(&frame);
        frame
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Frame resolution.
    pub fn resolution(&self) -> (usize, usize) {
        (self.width, self.height)
    }
}

/// Default demo camera looking at the unit cube.
pub fn demo_camera() -> Camera {
    Camera::look_at(Vec3::new(2.5, 2.0, -3.0), Vec3::new(0.5, 0.5, 0.5))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_viewer_controls() {
        let mut s = VizServerSession::new(32, 32, demo_camera());
        let a = s.attach();
        let b = s.attach();
        assert_eq!(s.controller(), Some(a));
        assert!(s.orbit(a, 0.1));
        assert!(!s.orbit(b, 0.1), "non-controller must be refused");
    }

    #[test]
    fn control_passes_on_detach() {
        let mut s = VizServerSession::new(32, 32, demo_camera());
        let a = s.attach();
        let b = s.attach();
        s.detach(a);
        assert_eq!(s.controller(), Some(b));
        s.detach(b);
        assert_eq!(s.controller(), None);
    }

    #[test]
    fn pass_control_only_to_attached() {
        let mut s = VizServerSession::new(32, 32, demo_camera());
        let a = s.attach();
        let b = s.attach();
        assert!(s.pass_control(b));
        assert_eq!(s.controller(), Some(b));
        s.detach(a);
        assert!(!s.pass_control(a));
    }

    #[test]
    fn all_viewers_receive_identical_images() {
        let mut s = VizServerSession::new(48, 48, demo_camera());
        let a = s.attach();
        let b = s.attach();
        let cube = TriMesh::unit_cube();
        let frames = s.render_and_ship(&[(&cube, [200, 50, 50, 255])]);
        assert_eq!(frames.len(), 2);
        let mut dec_a = DeltaRleCodec::new();
        let mut dec_b = DeltaRleCodec::new();
        let fa = &frames.iter().find(|(id, _)| *id == a).unwrap().1;
        let fb_ = &frames.iter().find(|(id, _)| *id == b).unwrap().1;
        let img_a = dec_a.decode(fa, 48, 48).unwrap();
        let img_b = dec_b.decode(fb_, 48, 48).unwrap();
        assert_eq!(img_a, img_b);
    }

    #[test]
    fn late_joiner_gets_keyframe() {
        let mut s = VizServerSession::new(32, 32, demo_camera());
        let _a = s.attach();
        let cube = TriMesh::unit_cube();
        let _ = s.render_and_ship(&[(&cube, [255; 4])]);
        let _ = s.render_and_ship(&[(&cube, [255; 4])]);
        let b = s.attach();
        let frames = s.render_and_ship(&[(&cube, [255; 4])]);
        let fb_frame = &frames.iter().find(|(id, _)| *id == b).unwrap().1;
        assert!(
            fb_frame.keyframe,
            "late joiner's first frame must be a keyframe"
        );
    }

    #[test]
    fn static_scene_traffic_collapses_after_first_frame() {
        let mut s = VizServerSession::new(64, 64, demo_camera());
        let _a = s.attach();
        let cube = TriMesh::unit_cube();
        let first = s.render_and_ship(&[(&cube, [200, 50, 50, 255])]);
        let second = s.render_and_ship(&[(&cube, [200, 50, 50, 255])]);
        assert!(second[0].1.wire_size() < first[0].1.wire_size() / 10);
    }

    #[test]
    fn sink_path_encodes_once_and_honours_keyframe_requests() {
        struct KeyframeOnce {
            asked: bool,
            frames: Vec<EncodedFrame>,
        }
        impl FrameSink for KeyframeOnce {
            fn wants_keyframe(&self) -> bool {
                self.asked
            }
            fn publish_frame(&mut self, frame: &EncodedFrame) {
                self.frames.push(frame.clone());
            }
        }
        let mut s = VizServerSession::new(48, 48, demo_camera());
        let cube = TriMesh::unit_cube();
        let mut sink = KeyframeOnce {
            asked: false,
            frames: Vec::new(),
        };
        let first = s.render_to_sink(&[(&cube, [200, 50, 50, 255])], &mut sink);
        assert!(first.keyframe, "no history ⇒ keyframe");
        let second = s.render_to_sink(&[(&cube, [200, 50, 50, 255])], &mut sink);
        assert!(!second.keyframe, "static scene ⇒ delta");
        assert!(second.wire_size() < first.wire_size() / 10);
        sink.asked = true; // a late joiner appeared downstream
        let third = s.render_to_sink(&[(&cube, [200, 50, 50, 255])], &mut sink);
        assert!(third.keyframe, "sink demanded a keyframe");
        assert_eq!(sink.frames.len(), 3);
        assert_eq!(s.stats().frames, 3);
    }

    #[test]
    fn sink_and_viewer_paths_decode_to_the_same_image() {
        let mut s = VizServerSession::new(32, 32, demo_camera());
        let a = s.attach();
        let cube = TriMesh::unit_cube();
        let mut sink = CollectSink::default();
        let mut r = Rasterizer::new(32, 32);
        r.clear([10, 10, 30, 255]);
        r.draw_mesh(&s.camera(), &cube, [90, 200, 90, 255]);
        let fb = r.into_framebuffer();
        let per_viewer = s.ship_frame(&fb);
        s.ship_frame_to(&fb, &mut sink);
        let mut dec_a = DeltaRleCodec::new();
        let mut dec_b = DeltaRleCodec::new();
        let via_viewer = dec_a
            .decode(
                &per_viewer.iter().find(|(id, _)| *id == a).unwrap().1,
                32,
                32,
            )
            .unwrap();
        let via_sink = dec_b.decode(&sink.frames[0], 32, 32).unwrap();
        assert_eq!(via_viewer, via_sink);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = VizServerSession::new(16, 16, demo_camera());
        let a = s.attach();
        let _ = s.attach();
        let cube = TriMesh::unit_cube();
        let _ = s.render_and_ship(&[(&cube, [255; 4])]);
        s.orbit(a, 0.3);
        let st = s.stats();
        assert_eq!(st.frames, 1);
        assert_eq!(st.control_msgs, 1);
        assert_eq!(st.bytes_raw, 2 * 16 * 16 * 4);
        assert!(st.bytes_shipped > 0);
    }
}
