//! Look-at perspective camera.
//!
//! The collaborative sessions of §4.2 synchronize exactly this object: "all
//! participants share the same viewer position". A [`Camera`] is therefore
//! both a rasterizer input and a tiny piece of *synchronization state* — the
//! parameter-sync collaboration mode ships cameras (tens of bytes) instead
//! of frames (megabytes).

use crate::Vec3;

/// Perspective camera defined by eye/target/up and a vertical field of view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Eye position (world space).
    pub eye: Vec3,
    /// Point the camera looks at.
    pub target: Vec3,
    /// Approximate up direction.
    pub up: Vec3,
    /// Vertical field of view in radians.
    pub fov_y: f32,
    /// Near clipping distance.
    pub near: f32,
}

impl Camera {
    /// A camera at `eye` looking at `target` with y-up and 60° fov.
    pub fn look_at(eye: Vec3, target: Vec3) -> Self {
        Camera {
            eye,
            target,
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_y: std::f32::consts::FRAC_PI_3,
            near: 0.01,
        }
    }

    /// Orthonormal camera basis `(right, up, forward)`.
    pub fn basis(&self) -> (Vec3, Vec3, Vec3) {
        let fwd = self.target.sub(self.eye).normalized();
        let right = fwd.cross(self.up).normalized();
        let up = right.cross(fwd);
        (right, up, fwd)
    }

    /// Transform a world point into view space (x right, y up, z forward).
    pub fn to_view(&self, p: Vec3) -> Vec3 {
        let (r, u, f) = self.basis();
        let d = p.sub(self.eye);
        Vec3::new(d.dot(r), d.dot(u), d.dot(f))
    }

    /// Project a world point to pixel coordinates plus view-space depth.
    /// Returns `None` when the point is behind the near plane.
    pub fn project(&self, p: Vec3, width: usize, height: usize) -> Option<(f32, f32, f32)> {
        let v = self.to_view(p);
        if v.z <= self.near {
            return None;
        }
        let half_h = (self.fov_y * 0.5).tan();
        let aspect = width as f32 / height as f32;
        let half_w = half_h * aspect;
        let ndc_x = v.x / (v.z * half_w);
        let ndc_y = v.y / (v.z * half_h);
        let px = (ndc_x * 0.5 + 0.5) * width as f32;
        let py = (0.5 - ndc_y * 0.5) * height as f32;
        Some((px, py, v.z))
    }

    /// Orbit the eye around the target by `yaw` radians about the up axis —
    /// the canonical "viewer moved" interaction of §4.2.
    pub fn orbit(&mut self, yaw: f32) {
        let d = self.eye.sub(self.target);
        let (s, c) = yaw.sin_cos();
        let rotated = Vec3::new(d.x * c + d.z * s, d.y, -d.x * s + d.z * c);
        self.eye = self.target.add(rotated);
    }

    /// Serialized size of the camera as sync state (bytes) — what the
    /// parameter-sync collaboration mode pays per update.
    pub const SYNC_BYTES: usize = 4 * (3 + 3 + 3 + 1 + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_is_orthonormal() {
        let c = Camera::look_at(Vec3::new(3.0, 2.0, 5.0), Vec3::ZERO);
        let (r, u, f) = c.basis();
        for v in [r, u, f] {
            assert!((v.len() - 1.0).abs() < 1e-5);
        }
        assert!(r.dot(u).abs() < 1e-5);
        assert!(r.dot(f).abs() < 1e-5);
        assert!(u.dot(f).abs() < 1e-5);
    }

    #[test]
    fn target_projects_to_center() {
        let c = Camera::look_at(Vec3::new(0.0, 0.0, -10.0), Vec3::ZERO);
        let (px, py, z) = c.project(Vec3::ZERO, 200, 100).unwrap();
        assert!((px - 100.0).abs() < 1e-3);
        assert!((py - 50.0).abs() < 1e-3);
        assert!((z - 10.0).abs() < 1e-5);
    }

    #[test]
    fn behind_camera_is_clipped() {
        let c = Camera::look_at(Vec3::new(0.0, 0.0, -10.0), Vec3::ZERO);
        assert!(c.project(Vec3::new(0.0, 0.0, -20.0), 100, 100).is_none());
    }

    #[test]
    fn nearer_points_have_smaller_depth() {
        let c = Camera::look_at(Vec3::new(0.0, 0.0, -10.0), Vec3::ZERO);
        let (_, _, z1) = c.project(Vec3::new(0.0, 0.0, -2.0), 100, 100).unwrap();
        let (_, _, z2) = c.project(Vec3::new(0.0, 0.0, 3.0), 100, 100).unwrap();
        assert!(z1 < z2);
    }

    #[test]
    fn orbit_preserves_distance() {
        let mut c = Camera::look_at(Vec3::new(5.0, 1.0, 0.0), Vec3::ZERO);
        let d0 = c.eye.sub(c.target).len();
        c.orbit(0.7);
        let d1 = c.eye.sub(c.target).len();
        assert!((d0 - d1).abs() < 1e-4);
        // full circle returns home
        let mut c2 = Camera::look_at(Vec3::new(5.0, 1.0, 0.0), Vec3::ZERO);
        for _ in 0..8 {
            c2.orbit(std::f32::consts::FRAC_PI_4);
        }
        assert!(c2.eye.sub(Vec3::new(5.0, 1.0, 0.0)).len() < 1e-4);
    }
}
