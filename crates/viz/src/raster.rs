//! Z-buffered software rasterizer.
//!
//! Stands in for the SGI Onyx graphics pipes: renders triangle meshes
//! (isosurfaces, domain boxes), points and lines (particle glyphs, velocity
//! vectors) into a [`Framebuffer`] with flat Lambert shading. Per-frame cost
//! is real CPU work, which is exactly what the remote-vs-local rendering
//! experiment (E42) needs: a render time that scales with scene complexity.

use crate::camera::Camera;
use crate::framebuffer::Framebuffer;
use crate::mesh::TriMesh;
use crate::Vec3;

/// Rasterizer state: framebuffer + z-buffer + light direction.
pub struct Rasterizer {
    fb: Framebuffer,
    zbuf: Vec<f32>,
    /// Directional light (towards the scene), normalized on set.
    light: Vec3,
    /// Triangles actually rasterized in the last `draw_mesh` call (after
    /// clipping/backface culling) — a cheap complexity metric.
    pub tris_drawn: usize,
}

impl Rasterizer {
    /// New rasterizer with a black framebuffer.
    pub fn new(width: usize, height: usize) -> Self {
        Rasterizer {
            fb: Framebuffer::new(width, height),
            zbuf: vec![f32::INFINITY; width * height],
            light: Vec3::new(0.4, 0.7, -0.6).normalized(),
            tris_drawn: 0,
        }
    }

    /// Set the directional light.
    pub fn set_light(&mut self, dir: Vec3) {
        self.light = dir.normalized();
    }

    /// Clear colour and depth.
    pub fn clear(&mut self, rgba: [u8; 4]) {
        self.fb.clear(rgba);
        self.zbuf.fill(f32::INFINITY);
        self.tris_drawn = 0;
    }

    /// Borrow the framebuffer.
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }

    /// Take the framebuffer out (consumes the rasterizer).
    pub fn into_framebuffer(self) -> Framebuffer {
        self.fb
    }

    fn put(&mut self, x: usize, y: usize, z: f32, rgba: [u8; 4]) {
        let w = self.fb.width();
        if x >= w || y >= self.fb.height() {
            return;
        }
        let i = y * w + x;
        if z < self.zbuf[i] {
            self.zbuf[i] = z;
            self.fb.set(x, y, rgba);
        }
    }

    /// Draw a world-space point as a small square splat.
    pub fn draw_point(&mut self, cam: &Camera, p: Vec3, size: usize, rgba: [u8; 4]) {
        if let Some((px, py, z)) = cam.project(p, self.fb.width(), self.fb.height()) {
            let half = (size / 2) as isize;
            for dy in -half..=half {
                for dx in -half..=half {
                    let x = px as isize + dx;
                    let y = py as isize + dy;
                    if x >= 0 && y >= 0 {
                        self.put(x as usize, y as usize, z, rgba);
                    }
                }
            }
        }
    }

    /// Draw a world-space line with DDA stepping.
    pub fn draw_line(&mut self, cam: &Camera, a: Vec3, b: Vec3, rgba: [u8; 4]) {
        let (w, h) = (self.fb.width(), self.fb.height());
        let (pa, pb) = match (cam.project(a, w, h), cam.project(b, w, h)) {
            (Some(a), Some(b)) => (a, b),
            _ => return, // conservative clip: skip lines crossing the near plane
        };
        let dx = pb.0 - pa.0;
        let dy = pb.1 - pa.1;
        let steps = dx.abs().max(dy.abs()).ceil().max(1.0) as usize;
        for i in 0..=steps {
            let t = i as f32 / steps as f32;
            let x = pa.0 + dx * t;
            let y = pa.1 + dy * t;
            let z = pa.2 + (pb.2 - pa.2) * t;
            if x >= 0.0 && y >= 0.0 {
                self.put(x as usize, y as usize, z, rgba);
            }
        }
    }

    /// Draw a mesh with flat Lambert shading in `base` colour.
    pub fn draw_mesh(&mut self, cam: &Camera, mesh: &TriMesh, base: [u8; 4]) {
        let (w, h) = (self.fb.width(), self.fb.height());
        for t in mesh.indices.chunks_exact(3) {
            let va = mesh.vertices[t[0] as usize];
            let vb = mesh.vertices[t[1] as usize];
            let vc = mesh.vertices[t[2] as usize];
            let (pa, pb, pc) = match (
                cam.project(va, w, h),
                cam.project(vb, w, h),
                cam.project(vc, w, h),
            ) {
                (Some(a), Some(b), Some(c)) => (a, b, c),
                _ => continue,
            };
            // face normal for shading (two-sided)
            let n = vb.sub(va).cross(vc.sub(va)).normalized();
            let lambert = n.dot(self.light).abs().clamp(0.05, 1.0);
            let shade = |c: u8| ((c as f32) * (0.2 + 0.8 * lambert)) as u8;
            let rgba = [shade(base[0]), shade(base[1]), shade(base[2]), base[3]];
            self.fill_triangle(pa, pb, pc, rgba);
            self.tris_drawn += 1;
        }
    }

    /// Barycentric triangle fill with z interpolation.
    fn fill_triangle(
        &mut self,
        a: (f32, f32, f32),
        b: (f32, f32, f32),
        c: (f32, f32, f32),
        rgba: [u8; 4],
    ) {
        let min_x = a.0.min(b.0).min(c.0).floor().max(0.0) as usize;
        let max_x = (a.0.max(b.0).max(c.0).ceil() as usize).min(self.fb.width().saturating_sub(1));
        let min_y = a.1.min(b.1).min(c.1).floor().max(0.0) as usize;
        let max_y = (a.1.max(b.1).max(c.1).ceil() as usize).min(self.fb.height().saturating_sub(1));
        let area = (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0);
        if area.abs() < 1e-9 {
            return;
        }
        let inv_area = 1.0 / area;
        for y in min_y..=max_y {
            for x in min_x..=max_x {
                let px = x as f32 + 0.5;
                let py = y as f32 + 0.5;
                let w0 = ((b.0 - a.0) * (py - a.1) - (b.1 - a.1) * (px - a.0)) * inv_area;
                let w1 = ((c.0 - b.0) * (py - b.1) - (c.1 - b.1) * (px - b.0)) * inv_area;
                let w2 = 1.0 - w0 - w1;
                // inside test tolerant of either winding
                let inside =
                    (w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0) || (w0 <= 0.0 && w1 <= 0.0 && w2 <= 0.0);
                if inside {
                    // screen-space barycentric z with weights normalized to
                    // tolerate either winding: w2→a, w0→b, w1→c
                    let wsum = w0.abs() + w1.abs() + w2.abs();
                    if wsum <= 0.0 {
                        continue;
                    }
                    let z = (w2.abs() * a.2 + w0.abs() * b.2 + w1.abs() * c.2) / wsum;
                    self.put(x, y, z, rgba);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.5, 0.5, -4.0), Vec3::new(0.5, 0.5, 0.5))
    }

    fn nonblack_pixels(fb: &Framebuffer) -> usize {
        fb.bytes()
            .chunks_exact(4)
            .filter(|p| p[0] != 0 || p[1] != 0 || p[2] != 0)
            .count()
    }

    #[test]
    fn cube_renders_some_pixels() {
        let mut r = Rasterizer::new(128, 128);
        r.clear([0, 0, 0, 255]);
        r.draw_mesh(&cam(), &TriMesh::unit_cube(), [200, 100, 50, 255]);
        assert!(r.tris_drawn > 0);
        assert!(nonblack_pixels(r.framebuffer()) > 500);
    }

    #[test]
    fn nearer_geometry_occludes() {
        let mut r = Rasterizer::new(64, 64);
        r.clear([0, 0, 0, 255]);
        let c = Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO);
        // far red point then near green point at same screen location
        r.draw_point(&c, Vec3::new(0.0, 0.0, 1.0), 3, [255, 0, 0, 255]);
        r.draw_point(&c, Vec3::new(0.0, 0.0, -1.0), 3, [0, 255, 0, 255]);
        let center = r.framebuffer().get(32, 32);
        assert_eq!(center, [0, 255, 0, 255]);
    }

    #[test]
    fn far_geometry_does_not_overwrite_near() {
        let mut r = Rasterizer::new(64, 64);
        r.clear([0, 0, 0, 255]);
        let c = Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO);
        r.draw_point(&c, Vec3::new(0.0, 0.0, -1.0), 3, [0, 255, 0, 255]);
        r.draw_point(&c, Vec3::new(0.0, 0.0, 1.0), 3, [255, 0, 0, 255]);
        assert_eq!(r.framebuffer().get(32, 32), [0, 255, 0, 255]);
    }

    #[test]
    fn line_draws_continuous_pixels() {
        let mut r = Rasterizer::new(64, 64);
        r.clear([0, 0, 0, 255]);
        let c = Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO);
        r.draw_line(
            &c,
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            [255, 255, 255, 255],
        );
        assert!(nonblack_pixels(r.framebuffer()) > 10);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = Rasterizer::new(32, 32);
        r.draw_mesh(&cam(), &TriMesh::unit_cube(), [255, 255, 255, 255]);
        r.clear([0, 0, 0, 255]);
        assert_eq!(nonblack_pixels(r.framebuffer()), 0);
        assert_eq!(r.tris_drawn, 0);
    }

    #[test]
    fn behind_camera_mesh_is_skipped() {
        let mut r = Rasterizer::new(32, 32);
        r.clear([0, 0, 0, 255]);
        let c = Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::new(0.0, 0.0, 10.0));
        // cube at origin is behind this camera
        r.draw_mesh(&c, &TriMesh::unit_cube(), [255, 0, 0, 255]);
        assert_eq!(nonblack_pixels(r.framebuffer()), 0);
    }
}
