//! Z-buffered software rasterizer.
//!
//! Stands in for the SGI Onyx graphics pipes: renders triangle meshes
//! (isosurfaces, domain boxes), points and lines (particle glyphs, velocity
//! vectors) into a [`Framebuffer`] with flat Lambert shading. Per-frame cost
//! is real CPU work, which is exactly what the remote-vs-local rendering
//! experiment (E42) needs: a render time that scales with scene complexity.

use crate::camera::Camera;
use crate::framebuffer::Framebuffer;
use crate::mesh::TriMesh;
use crate::Vec3;

/// Rasterizer state: framebuffer + z-buffer + light direction.
pub struct Rasterizer {
    fb: Framebuffer,
    zbuf: Vec<f32>,
    /// Directional light (towards the scene), normalized on set.
    light: Vec3,
    /// Triangles actually rasterized in the last `draw_mesh` call (after
    /// clipping/backface culling) — a cheap complexity metric.
    pub tris_drawn: usize,
}

impl Rasterizer {
    /// New rasterizer with a black framebuffer.
    pub fn new(width: usize, height: usize) -> Self {
        Rasterizer {
            fb: Framebuffer::new(width, height),
            zbuf: vec![f32::INFINITY; width * height],
            light: Vec3::new(0.4, 0.7, -0.6).normalized(),
            tris_drawn: 0,
        }
    }

    /// Set the directional light.
    pub fn set_light(&mut self, dir: Vec3) {
        self.light = dir.normalized();
    }

    /// Clear colour and depth.
    pub fn clear(&mut self, rgba: [u8; 4]) {
        self.fb.clear(rgba);
        self.zbuf.fill(f32::INFINITY);
        self.tris_drawn = 0;
    }

    /// Borrow the framebuffer.
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }

    /// Take the framebuffer out (consumes the rasterizer).
    pub fn into_framebuffer(self) -> Framebuffer {
        self.fb
    }

    fn put(&mut self, x: usize, y: usize, z: f32, rgba: [u8; 4]) {
        let w = self.fb.width();
        if x >= w || y >= self.fb.height() {
            return;
        }
        let i = y * w + x;
        if z < self.zbuf[i] {
            self.zbuf[i] = z;
            self.fb.set(x, y, rgba);
        }
    }

    /// Draw a world-space point as a small square splat.
    pub fn draw_point(&mut self, cam: &Camera, p: Vec3, size: usize, rgba: [u8; 4]) {
        if let Some((px, py, z)) = cam.project(p, self.fb.width(), self.fb.height()) {
            let half = (size / 2) as isize;
            for dy in -half..=half {
                for dx in -half..=half {
                    let x = px as isize + dx;
                    let y = py as isize + dy;
                    if x >= 0 && y >= 0 {
                        self.put(x as usize, y as usize, z, rgba);
                    }
                }
            }
        }
    }

    /// Draw a world-space line with DDA stepping.
    pub fn draw_line(&mut self, cam: &Camera, a: Vec3, b: Vec3, rgba: [u8; 4]) {
        let (w, h) = (self.fb.width(), self.fb.height());
        let (pa, pb) = match (cam.project(a, w, h), cam.project(b, w, h)) {
            (Some(a), Some(b)) => (a, b),
            _ => return, // conservative clip: skip lines crossing the near plane
        };
        let dx = pb.0 - pa.0;
        let dy = pb.1 - pa.1;
        let steps = dx.abs().max(dy.abs()).ceil().max(1.0) as usize;
        for i in 0..=steps {
            let t = i as f32 / steps as f32;
            let x = pa.0 + dx * t;
            let y = pa.1 + dy * t;
            let z = pa.2 + (pb.2 - pa.2) * t;
            if x >= 0.0 && y >= 0.0 {
                self.put(x as usize, y as usize, z, rgba);
            }
        }
    }

    /// Draw a mesh with flat Lambert shading in `base` colour, on the
    /// default shared executor pool.
    pub fn draw_mesh(&mut self, cam: &Camera, mesh: &TriMesh, base: [u8; 4]) {
        self.draw_mesh_with(&gridsteer_exec::global(), cam, mesh, base);
    }

    /// [`Rasterizer::draw_mesh`] on an explicit executor pool. Projection
    /// and shading run once per triangle; the fill is parallel over
    /// fixed-height framebuffer row bands, each band rasterizing every
    /// triangle that overlaps it in mesh order. Every pixel is owned by
    /// exactly one band and sees the triangles in the same order as a
    /// serial fill, so the image is byte-identical for any thread count.
    pub fn draw_mesh_with(
        &mut self,
        pool: &gridsteer_exec::ExecPool,
        cam: &Camera,
        mesh: &TriMesh,
        base: [u8; 4],
    ) {
        let (w, h) = (self.fb.width(), self.fb.height());
        if w == 0 || h == 0 {
            return;
        }
        let light = self.light;
        let tris: Vec<ShadedTri> = mesh
            .indices
            .chunks_exact(3)
            .filter_map(|t| {
                let va = mesh.vertices[t[0] as usize];
                let vb = mesh.vertices[t[1] as usize];
                let vc = mesh.vertices[t[2] as usize];
                let (pa, pb, pc) = match (
                    cam.project(va, w, h),
                    cam.project(vb, w, h),
                    cam.project(vc, w, h),
                ) {
                    (Some(a), Some(b), Some(c)) => (a, b, c),
                    _ => return None, // conservative near-plane clip
                };
                // face normal for shading (two-sided)
                let n = vb.sub(va).cross(vc.sub(va)).normalized();
                let lambert = n.dot(light).abs().clamp(0.05, 1.0);
                let shade = |c: u8| ((c as f32) * (0.2 + 0.8 * lambert)) as u8;
                let rgba = [shade(base[0]), shade(base[1]), shade(base[2]), base[3]];
                Some(ShadedTri::prepare(pa, pb, pc, rgba, w, h))
            })
            .collect();
        self.tris_drawn += tris.len();
        // degenerate (zero-area) triangles counted above never fill pixels
        let fillable: Vec<&ShadedTri> = tris.iter().filter(|t| t.inv_area.is_some()).collect();
        // fixed band height: the pixel→band mapping never depends on the
        // pool's thread count
        let zband_len = BAND_ROWS * w;
        let cband_len = BAND_ROWS * w * 4;
        let simd = lanes::simd_enabled();
        pool.parallel_chunks2(
            &mut self.zbuf,
            self.fb.bytes_mut(),
            zband_len,
            cband_len,
            |bi, zband, cband| {
                let y0 = bi * BAND_ROWS;
                let y1 = y0 + zband.len() / w;
                for t in &fillable {
                    // bbox precomputed once per triangle: bands it misses
                    // pay two comparisons, not a full setup + empty scan
                    if t.max_y < y0 || t.min_y >= y1 {
                        continue;
                    }
                    fill_triangle_band(t, w, y0, y1, zband, cband, simd);
                }
            },
        );
    }
}

/// Rows per rasterization band (fixed; see [`Rasterizer::draw_mesh_with`]).
const BAND_ROWS: usize = 32;

/// A projected, culled, shaded triangle ready for the fill stage, with its
/// clipped screen bbox and area reciprocal computed once.
struct ShadedTri {
    a: (f32, f32, f32),
    b: (f32, f32, f32),
    c: (f32, f32, f32),
    rgba: [u8; 4],
    min_x: usize,
    max_x: usize,
    min_y: usize,
    max_y: usize,
    /// `None` for degenerate (near-zero-area) triangles, which are counted
    /// in `tris_drawn` but never fill pixels — matching the serial fill.
    inv_area: Option<f32>,
}

impl ShadedTri {
    fn prepare(
        a: (f32, f32, f32),
        b: (f32, f32, f32),
        c: (f32, f32, f32),
        rgba: [u8; 4],
        w: usize,
        h: usize,
    ) -> ShadedTri {
        let area = (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0);
        ShadedTri {
            min_x: a.0.min(b.0).min(c.0).floor().max(0.0) as usize,
            max_x: (a.0.max(b.0).max(c.0).ceil() as usize).min(w.saturating_sub(1)),
            min_y: a.1.min(b.1).min(c.1).floor().max(0.0) as usize,
            max_y: (a.1.max(b.1).max(c.1).ceil() as usize).min(h.saturating_sub(1)),
            inv_area: (area.abs() >= 1e-9).then(|| 1.0 / area),
            a,
            b,
            c,
            rgba,
        }
    }
}

/// Inside-test, z-test and write for one pixel given its barycentric
/// weights — the per-pixel tail shared by the scalar and lane-blocked
/// fills (so both backends write identical pixels by construction).
// the three weights and two band slices are hot-loop state; boxing them
// into a struct would cost the #[inline(always)] contract its point
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn shade_pixel(
    t: &ShadedTri,
    w0: f32,
    w1: f32,
    w2: f32,
    row_base: usize,
    x: usize,
    zband: &mut [f32],
    cband: &mut [u8],
) {
    let (a, b, c) = (t.a, t.b, t.c);
    // inside test tolerant of either winding
    let inside = (w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0) || (w0 <= 0.0 && w1 <= 0.0 && w2 <= 0.0);
    if inside {
        // screen-space barycentric z with weights normalized to
        // tolerate either winding: w2→a, w0→b, w1→c
        let wsum = w0.abs() + w1.abs() + w2.abs();
        if wsum <= 0.0 {
            return;
        }
        let z = (w2.abs() * a.2 + w0.abs() * b.2 + w1.abs() * c.2) / wsum;
        let i = row_base + x;
        if z < zband[i] {
            zband[i] = z;
            cband[i * 4..i * 4 + 4].copy_from_slice(&t.rgba);
        }
    }
}

/// Barycentric triangle fill with z interpolation, restricted to the
/// framebuffer rows `[y0, y1)` held by `zband`/`cband`. The arithmetic is
/// identical for every band split, so banded and whole-frame fills produce
/// the same pixels.
///
/// With `simd` set, the row's edge functions are evaluated eight pixels
/// per step in [`lanes::F32x8`] lanes; each lane performs exactly the
/// scalar expression's operation sequence (the per-row factors are the
/// same scalar subexpressions, broadcast), and the per-pixel tail is the
/// shared [`shade_pixel`] — so scalar and SIMD fills are bit-identical.
fn fill_triangle_band(
    t: &ShadedTri,
    w: usize,
    y0: usize,
    y1: usize,
    zband: &mut [f32],
    cband: &mut [u8],
    simd: bool,
) {
    use lanes::F32x8;
    let (a, b, c) = (t.a, t.b, t.c);
    let (min_x, max_x, min_y, max_y) = (t.min_x, t.max_x, t.min_y, t.max_y);
    let Some(inv_area) = t.inv_area else { return };
    for y in min_y.max(y0)..=max_y.min(y1.saturating_sub(1)) {
        let py = y as f32 + 0.5;
        let row_base = (y - y0) * w;
        // per-row constants: exactly the scalar expression's
        // subexpressions, hoisted (same values, same rounding)
        let e0 = (b.0 - a.0) * (py - a.1);
        let e1 = (c.0 - b.0) * (py - b.1);
        let mut x = min_x;
        if simd {
            while x + lanes::F32_LANES <= max_x + 1 {
                let px = F32x8(std::array::from_fn(|l| (x + l) as f32 + 0.5));
                let w0 = (F32x8::splat(e0) - F32x8::splat(b.1 - a.1) * (px - F32x8::splat(a.0)))
                    * F32x8::splat(inv_area);
                let w1 = (F32x8::splat(e1) - F32x8::splat(c.1 - b.1) * (px - F32x8::splat(b.0)))
                    * F32x8::splat(inv_area);
                let w2 = F32x8::splat(1.0) - w0 - w1;
                for l in 0..lanes::F32_LANES {
                    shade_pixel(t, w0.0[l], w1.0[l], w2.0[l], row_base, x + l, zband, cband);
                }
                x += lanes::F32_LANES;
            }
        }
        for x in x..=max_x {
            let px = x as f32 + 0.5;
            let w0 = (e0 - (b.1 - a.1) * (px - a.0)) * inv_area;
            let w1 = (e1 - (c.1 - b.1) * (px - b.0)) * inv_area;
            let w2 = 1.0 - w0 - w1;
            shade_pixel(t, w0, w1, w2, row_base, x, zband, cband);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.5, 0.5, -4.0), Vec3::new(0.5, 0.5, 0.5))
    }

    fn nonblack_pixels(fb: &Framebuffer) -> usize {
        fb.bytes()
            .chunks_exact(4)
            .filter(|p| p[0] != 0 || p[1] != 0 || p[2] != 0)
            .count()
    }

    #[test]
    fn scalar_and_simd_triangle_fills_are_bit_identical() {
        // Same triangle, both fill backends, odd width so lane blocks AND
        // the scalar tail both run: z-band bits and pixels must match.
        let w = 61usize;
        let h = 40usize;
        let tris = [
            ShadedTri::prepare(
                (3.2, 2.1, 0.3),
                (57.9, 8.7, 0.9),
                (20.4, 37.5, 0.1),
                [200, 90, 40, 255],
                w,
                h,
            ),
            ShadedTri::prepare(
                (50.0, 35.0, 0.2),
                (5.5, 30.1, 0.8),
                (33.3, 1.1, 0.5),
                [10, 220, 120, 255],
                w,
                h,
            ),
        ];
        let mut out: Vec<(Vec<f32>, Vec<u8>)> = Vec::new();
        for simd in [false, true] {
            let mut zband = vec![f32::INFINITY; w * h];
            let mut cband = vec![0u8; w * h * 4];
            for t in &tris {
                fill_triangle_band(t, w, 0, h, &mut zband, &mut cband, simd);
            }
            out.push((zband, cband));
        }
        let zb: Vec<u32> = out[0].0.iter().map(|z| z.to_bits()).collect();
        let zs: Vec<u32> = out[1].0.iter().map(|z| z.to_bits()).collect();
        assert_eq!(zb, zs, "z-buffer bits diverged between backends");
        assert_eq!(out[0].1, out[1].1, "pixel bytes diverged between backends");
    }

    #[test]
    fn cube_renders_some_pixels() {
        let mut r = Rasterizer::new(128, 128);
        r.clear([0, 0, 0, 255]);
        r.draw_mesh(&cam(), &TriMesh::unit_cube(), [200, 100, 50, 255]);
        assert!(r.tris_drawn > 0);
        assert!(nonblack_pixels(r.framebuffer()) > 500);
    }

    #[test]
    fn nearer_geometry_occludes() {
        let mut r = Rasterizer::new(64, 64);
        r.clear([0, 0, 0, 255]);
        let c = Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO);
        // far red point then near green point at same screen location
        r.draw_point(&c, Vec3::new(0.0, 0.0, 1.0), 3, [255, 0, 0, 255]);
        r.draw_point(&c, Vec3::new(0.0, 0.0, -1.0), 3, [0, 255, 0, 255]);
        let center = r.framebuffer().get(32, 32);
        assert_eq!(center, [0, 255, 0, 255]);
    }

    #[test]
    fn far_geometry_does_not_overwrite_near() {
        let mut r = Rasterizer::new(64, 64);
        r.clear([0, 0, 0, 255]);
        let c = Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO);
        r.draw_point(&c, Vec3::new(0.0, 0.0, -1.0), 3, [0, 255, 0, 255]);
        r.draw_point(&c, Vec3::new(0.0, 0.0, 1.0), 3, [255, 0, 0, 255]);
        assert_eq!(r.framebuffer().get(32, 32), [0, 255, 0, 255]);
    }

    #[test]
    fn line_draws_continuous_pixels() {
        let mut r = Rasterizer::new(64, 64);
        r.clear([0, 0, 0, 255]);
        let c = Camera::look_at(Vec3::new(0.0, 0.0, -5.0), Vec3::ZERO);
        r.draw_line(
            &c,
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            [255, 255, 255, 255],
        );
        assert!(nonblack_pixels(r.framebuffer()) > 10);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = Rasterizer::new(32, 32);
        r.draw_mesh(&cam(), &TriMesh::unit_cube(), [255, 255, 255, 255]);
        r.clear([0, 0, 0, 255]);
        assert_eq!(nonblack_pixels(r.framebuffer()), 0);
        assert_eq!(r.tris_drawn, 0);
    }

    #[test]
    fn behind_camera_mesh_is_skipped() {
        let mut r = Rasterizer::new(32, 32);
        r.clear([0, 0, 0, 255]);
        let c = Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::new(0.0, 0.0, 10.0));
        // cube at origin is behind this camera
        r.draw_mesh(&c, &TriMesh::unit_cube(), [255, 0, 0, 255]);
        assert_eq!(nonblack_pixels(r.framebuffer()), 0);
    }
}
