//! Regular-grid scalar fields.
//!
//! The RealityGrid demonstration visualizes the order parameter φ = ρA − ρB
//! of a two-fluid Lattice-Boltzmann mixture on a periodic 3-D grid (§2.2);
//! PEPC's planned extension maps diagnostics (charge density, fields, laser
//! intensity) onto a user-defined mesh (§3.4). [`Field3`] is the carrier for
//! both: a dense `f32` lattice with x-fastest layout, trilinear sampling and
//! central-difference gradients (used for isosurface normals).

use crate::Vec3;

/// A dense scalar field on an `nx × ny × nz` regular grid.
///
/// Storage is x-fastest (`idx = x + nx*(y + ny*z)`), the layout the LB
/// solver produces, so samples are handed to the visualization without a
/// transpose — the "zero-copy" the paper's shared-data-space design aims at.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    nx: usize,
    ny: usize,
    nz: usize,
    data: Vec<f32>,
}

impl Field3 {
    /// Zero-filled field.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        Field3 {
            nx,
            ny,
            nz,
            data: vec![0.0; nx * ny * nz],
        }
    }

    /// Wrap existing data (must have length `nx*ny*nz`).
    pub fn from_vec(nx: usize, ny: usize, nz: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), nx * ny * nz, "field data length mismatch");
        Field3 { nx, ny, nz, data }
    }

    /// Build by evaluating `f(x,y,z)` at every lattice point.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        nz: usize,
        mut f: impl FnMut(usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    data.push(f(x, y, z));
                }
            }
        }
        Field3 { nx, ny, nz, data }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of lattice points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the field has no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice (x-fastest).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Linear index for `(x,y,z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Value at a lattice point.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.data[self.idx(x, y, z)]
    }

    /// Set a lattice point.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f32) {
        let i = self.idx(x, y, z);
        self.data[i] = v;
    }

    /// Value with periodic wrap-around (the LB grid has periodic boundary
    /// conditions, §2.2).
    #[inline]
    pub fn get_periodic(&self, x: isize, y: isize, z: isize) -> f32 {
        let w = |v: isize, n: usize| -> usize {
            let n = n as isize;
            (((v % n) + n) % n) as usize
        };
        self.get(w(x, self.nx), w(y, self.ny), w(z, self.nz))
    }

    /// Trilinear interpolation at a continuous position in lattice units.
    /// Coordinates are clamped to the grid.
    pub fn sample(&self, p: Vec3) -> f32 {
        let cx = p.x.clamp(0.0, (self.nx - 1) as f32);
        let cy = p.y.clamp(0.0, (self.ny - 1) as f32);
        let cz = p.z.clamp(0.0, (self.nz - 1) as f32);
        let x0 = cx.floor() as usize;
        let y0 = cy.floor() as usize;
        let z0 = cz.floor() as usize;
        let x1 = (x0 + 1).min(self.nx - 1);
        let y1 = (y0 + 1).min(self.ny - 1);
        let z1 = (z0 + 1).min(self.nz - 1);
        let fx = cx - x0 as f32;
        let fy = cy - y0 as f32;
        let fz = cz - z0 as f32;
        let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
        let c00 = lerp(self.get(x0, y0, z0), self.get(x1, y0, z0), fx);
        let c10 = lerp(self.get(x0, y1, z0), self.get(x1, y1, z0), fx);
        let c01 = lerp(self.get(x0, y0, z1), self.get(x1, y0, z1), fx);
        let c11 = lerp(self.get(x0, y1, z1), self.get(x1, y1, z1), fx);
        let c0 = lerp(c00, c10, fy);
        let c1 = lerp(c01, c11, fy);
        lerp(c0, c1, fz)
    }

    /// Central-difference gradient at a lattice point (periodic), used for
    /// isosurface normals.
    pub fn gradient(&self, x: usize, y: usize, z: usize) -> Vec3 {
        let (xi, yi, zi) = (x as isize, y as isize, z as isize);
        Vec3::new(
            (self.get_periodic(xi + 1, yi, zi) - self.get_periodic(xi - 1, yi, zi)) * 0.5,
            (self.get_periodic(xi, yi + 1, zi) - self.get_periodic(xi, yi - 1, zi)) * 0.5,
            (self.get_periodic(xi, yi, zi + 1) - self.get_periodic(xi, yi, zi - 1)) * 0.5,
        )
    }

    /// Minimum and maximum values.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Mean value.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32 / self.data.len() as f32
    }

    /// Extract an axis-aligned slice plane (z = k) as a row-major 2-D copy.
    /// This is the cheap "cutting plane" primitive behind the COVISE
    /// CutPlane module (§4.3).
    pub fn slice_z(&self, k: usize) -> Vec<f32> {
        assert!(k < self.nz);
        let base = self.nx * self.ny * k;
        self.data[base..base + self.nx * self.ny].to_vec()
    }

    /// Payload size in bytes when shipped as raw f32 samples — the unit of
    /// the sample-emission traffic accounting.
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_x_fastest() {
        let f = Field3::from_fn(3, 4, 5, |x, y, z| (x + 10 * y + 100 * z) as f32);
        assert_eq!(f.get(1, 2, 3), 321.0);
        assert_eq!(f.data()[f.idx(1, 2, 3)], 321.0);
        assert_eq!(f.idx(1, 0, 0), 1); // x stride is 1
    }

    #[test]
    fn periodic_wraps_both_directions() {
        let f = Field3::from_fn(4, 4, 4, |x, _, _| x as f32);
        assert_eq!(f.get_periodic(-1, 0, 0), 3.0);
        assert_eq!(f.get_periodic(4, 0, 0), 0.0);
        assert_eq!(f.get_periodic(-5, 0, 0), 3.0);
    }

    #[test]
    fn trilinear_sample_is_exact_on_linear_fields() {
        let f = Field3::from_fn(8, 8, 8, |x, y, z| {
            x as f32 + 2.0 * y as f32 + 3.0 * z as f32
        });
        let p = Vec3::new(2.5, 3.25, 4.75);
        let expect = 2.5 + 2.0 * 3.25 + 3.0 * 4.75;
        assert!((f.sample(p) - expect).abs() < 1e-4);
    }

    #[test]
    fn sample_clamps_outside() {
        let f = Field3::from_fn(4, 4, 4, |x, _, _| x as f32);
        assert_eq!(f.sample(Vec3::new(-5.0, 0.0, 0.0)), 0.0);
        assert_eq!(f.sample(Vec3::new(50.0, 0.0, 0.0)), 3.0);
    }

    #[test]
    fn gradient_of_linear_field() {
        let f = Field3::from_fn(8, 8, 8, |x, y, z| {
            // avoid the periodic seam by only checking interior points
            x as f32 + 2.0 * y as f32 - 1.5 * z as f32
        });
        let g = f.gradient(4, 4, 4);
        assert!((g.x - 1.0).abs() < 1e-5);
        assert!((g.y - 2.0).abs() < 1e-5);
        assert!((g.z + 1.5).abs() < 1e-5);
    }

    #[test]
    fn min_max_and_mean() {
        let f = Field3::from_vec(2, 2, 1, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.min_max(), (1.0, 4.0));
        assert_eq!(f.mean(), 2.5);
    }

    #[test]
    fn slice_z_extracts_plane() {
        let f = Field3::from_fn(2, 2, 3, |_, _, z| z as f32);
        assert_eq!(f.slice_z(1), vec![1.0; 4]);
        assert_eq!(f.slice_z(2), vec![2.0; 4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_checks_len() {
        let _ = Field3::from_vec(2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    fn byte_size_counts_f32() {
        let f = Field3::zeros(8, 8, 8);
        assert_eq!(f.byte_size(), 512 * 4);
    }
}
