//! RGBA framebuffer.
//!
//! The end of every rendering pipeline in the paper: VizServer ships
//! framebuffer contents as compressed bitmaps (§2.4), the vtkNetwork render
//! class "streams updates to its framebuffer to a multicast address" (§2.4),
//! and vnc shares a desktop framebuffer (§1). Pixels are `[r,g,b,a]` bytes,
//! row-major.

/// A fixed-size RGBA8 framebuffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    /// RGBA bytes, row-major, 4 bytes per pixel.
    pixels: Vec<u8>,
}

impl Framebuffer {
    /// A black, opaque framebuffer.
    pub fn new(width: usize, height: usize) -> Self {
        let mut pixels = vec![0u8; width * height * 4];
        for p in pixels.chunks_exact_mut(4) {
            p[3] = 255;
        }
        Framebuffer {
            width,
            height,
            pixels,
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw RGBA bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.pixels
    }

    /// Mutable raw RGBA bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.pixels
    }

    /// Uncompressed size in bytes (the baseline for codec ratios).
    pub fn byte_size(&self) -> usize {
        self.pixels.len()
    }

    /// Fill with a constant colour.
    pub fn clear(&mut self, rgba: [u8; 4]) {
        for p in self.pixels.chunks_exact_mut(4) {
            p.copy_from_slice(&rgba);
        }
    }

    /// Pixel at `(x, y)`; panics out of range.
    pub fn get(&self, x: usize, y: usize) -> [u8; 4] {
        let i = (y * self.width + x) * 4;
        [
            self.pixels[i],
            self.pixels[i + 1],
            self.pixels[i + 2],
            self.pixels[i + 3],
        ]
    }

    /// Set pixel at `(x, y)`; silently ignores out-of-range (clip).
    pub fn set(&mut self, x: usize, y: usize, rgba: [u8; 4]) {
        if x >= self.width || y >= self.height {
            return;
        }
        let i = (y * self.width + x) * 4;
        self.pixels[i..i + 4].copy_from_slice(&rgba);
    }

    /// Fraction of pixels that differ from `other` (both must have equal
    /// dimensions) — used by frame-divergence measurements.
    pub fn diff_fraction(&self, other: &Framebuffer) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let differing = self
            .pixels
            .chunks_exact(4)
            .zip(other.pixels.chunks_exact(4))
            .filter(|(a, b)| a != b)
            .count();
        differing as f64 / (self.width * self.height) as f64
    }

    /// Serialize as a binary PPM (P6) image — the portable dump format used
    /// by the examples to let a human inspect rendered frames.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.reserve(self.width * self.height * 3);
        for p in self.pixels.chunks_exact(4) {
            out.extend_from_slice(&p[..3]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_black_opaque() {
        let fb = Framebuffer::new(4, 3);
        assert_eq!(fb.get(0, 0), [0, 0, 0, 255]);
        assert_eq!(fb.byte_size(), 4 * 3 * 4);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut fb = Framebuffer::new(8, 8);
        fb.set(3, 5, [10, 20, 30, 40]);
        assert_eq!(fb.get(3, 5), [10, 20, 30, 40]);
    }

    #[test]
    fn set_clips_out_of_range() {
        let mut fb = Framebuffer::new(2, 2);
        fb.set(5, 5, [255; 4]); // must not panic
        assert_eq!(fb.get(1, 1), [0, 0, 0, 255]);
    }

    #[test]
    fn clear_fills() {
        let mut fb = Framebuffer::new(2, 2);
        fb.clear([1, 2, 3, 4]);
        for y in 0..2 {
            for x in 0..2 {
                assert_eq!(fb.get(x, y), [1, 2, 3, 4]);
            }
        }
    }

    #[test]
    fn diff_fraction_counts_changes() {
        let a = Framebuffer::new(10, 10);
        let mut b = a.clone();
        assert_eq!(a.diff_fraction(&b), 0.0);
        for x in 0..5 {
            b.set(x, 0, [9, 9, 9, 255]);
        }
        assert!((a.diff_fraction(&b) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(3, 2);
        let ppm = fb.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 3 * 2 * 3);
    }
}
