//! # viz — visualization substrate
//!
//! The paper's demonstrations depend on high-end visualization machinery
//! that we rebuild in software: isosurface extraction of Lattice-Boltzmann
//! order-parameter fields (§2.2), point/diamond/vector glyph rendering of
//! PEPC particle clouds plus domain boxes (§3.4), an SGI OpenGL
//! VizServer-style remote-rendering service that ships *compressed bitmaps*
//! instead of geometry (§2.4), and the vic-style framebuffer streaming used
//! by the vtkNetwork classes (§2.4).
//!
//! Modules:
//! * [`field`] — regular-grid scalar fields ([`Field3`]) with trilinear
//!   sampling and central-difference gradients.
//! * [`mc`] — marching-cubes isosurface extraction producing [`TriMesh`]es.
//! * [`mesh`] — triangle meshes, normals, bounds, byte-size accounting.
//! * [`camera`] — look-at + perspective camera.
//! * [`raster`] — z-buffered software rasterizer (points, lines, triangles,
//!   Lambert shading).
//! * [`framebuffer`] — RGBA framebuffer with PPM export.
//! * [`codec`] — delta + run-length framebuffer codec (the VizServer /
//!   vtkNetwork "compressed bitmap" path) with byte accounting.
//! * [`color`] — transfer-function colormaps.
//! * [`glyph`] — particle glyph expansion (points, diamonds, velocity
//!   vectors, time-history trails) and domain boxes.
//! * [`vizserver`] — shared remote-render sessions: one render host, many
//!   viewers receiving encoded frames, collaborative session semantics.
//!
//! The three hot paths — triangle fill ([`raster`]), isosurface extraction
//! ([`mc`]) and frame encoding ([`codec`]) — are parallel over the
//! persistent [`gridsteer_exec`] pool: framebuffer row bands, one-cell z
//! slabs and row-aligned byte bands respectively. All three use fixed
//! chunk boundaries and ordered reductions, so their output is
//! byte-identical for any thread count; `*_with` variants accept an
//! explicit pool handle, the plain names use the shared default pool.

pub mod camera;
pub mod codec;
pub mod color;
pub mod field;
pub mod framebuffer;
pub mod glyph;
pub mod mc;
pub mod mesh;
pub mod raster;
pub mod vizserver;

pub use camera::Camera;
pub use codec::{DeltaRleCodec, EncodedFrame};
pub use color::ColorMap;
pub use field::Field3;
pub use framebuffer::Framebuffer;
pub use mesh::TriMesh;
pub use raster::Rasterizer;
pub use vizserver::{CollectSink, FrameSink, VizServerSession};

/// A 3-component f32 vector used across the crate (positions, normals,
/// velocities). Deliberately minimal: exactly the operations the substrate
/// needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Vec3 {
    /// Construct from components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);

    /// Component-wise addition (inherent, mirrored by `impl Add`).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }

    /// Component-wise subtraction (inherent, mirrored by `impl Sub`).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    /// Scalar multiplication.
    pub fn scale(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn len(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector (zero stays zero).
    pub fn normalized(self) -> Vec3 {
        let l = self.len();
        if l > 0.0 {
            self.scale(1.0 / l)
        } else {
            self
        }
    }

    /// Linear interpolation `self + t (o - self)`.
    pub fn lerp(self, o: Vec3, t: f32) -> Vec3 {
        self.add(o.sub(self).scale(t))
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::add(self, o)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::sub(self, o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.add(b), Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b.sub(a), Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(a.scale(2.0), Vec3::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        let c = a.cross(b);
        assert_eq!(c, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(c.dot(a), 0.0);
        assert_eq!(c.dot(b), 0.0);
    }

    #[test]
    fn normalize_handles_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        let v = Vec3::new(3.0, 0.0, 4.0).normalized();
        assert!((v.len() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 4.0));
    }
}
