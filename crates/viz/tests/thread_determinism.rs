//! Determinism-across-thread-counts regression tests for the parallel viz
//! hot paths: the band-parallel rasterizer, the slab-parallel marching
//! tetrahedra, and the row-band delta+RLE codec must produce **byte
//! identical** output on a 1-thread and an 8-thread pool (and on the
//! default pool, whatever `EXEC_THREADS` says — which is exactly what the
//! CI determinism matrix exercises).

use gridsteer_exec::{shared, ExecPool};
use std::sync::Arc;
use viz::codec::DeltaRleCodec;
use viz::{mc, Camera, Field3, Framebuffer, Rasterizer, TriMesh, Vec3};

fn pools() -> (Arc<ExecPool>, Arc<ExecPool>) {
    (shared(1), shared(8))
}

fn blob_field(n: usize) -> Field3 {
    let c = (n as f32 - 1.0) / 2.0;
    Field3::from_fn(n, n, n, |x, y, z| {
        let dx = x as f32 - c;
        let dy = y as f32 - c;
        let dz = z as f32 - c;
        // two overlapping lobes: enough triangles to cross several bands
        (n as f32 / 3.0) - (dx * dx + dy * dy + dz * dz).sqrt()
            + 0.8 * ((x as f32 * 0.9).sin() + (y as f32 * 0.7).cos())
    })
}

fn render(pool: &ExecPool, mesh: &TriMesh, size: usize) -> Framebuffer {
    let c = 11.5;
    let mut r = Rasterizer::new(size, size);
    r.clear([10, 10, 30, 255]);
    let cam = Camera::look_at(Vec3::new(30.0, 28.0, -26.0), Vec3::new(c, c, c));
    r.draw_mesh_with(pool, &cam, mesh, [200, 90, 60, 255]);
    r.into_framebuffer()
}

#[test]
fn rasterizer_bands_are_thread_count_invariant() {
    let (p1, p8) = pools();
    let field = blob_field(24);
    let mesh = mc::isosurface_smooth(&field, 0.0);
    // 128 px spans four 32-row bands
    let a = render(&p1, &mesh, 128);
    let b = render(&p8, &mesh, 128);
    assert!(!mesh.is_empty());
    assert_eq!(a.bytes(), b.bytes(), "band-parallel fill diverged");
    // the paper's deliverable format: the .ppm bytes must match too
    assert_eq!(a.to_ppm(), b.to_ppm());
}

#[test]
fn isosurface_slabs_are_thread_count_invariant() {
    let (p1, p8) = pools();
    let field = blob_field(20);
    let a = mc::isosurface_with(&p1, &field, 0.0);
    let b = mc::isosurface_with(&p8, &field, 0.0);
    assert!(!a.is_empty());
    assert_eq!(a.vertices.len(), b.vertices.len());
    assert_eq!(a.vertices, b.vertices, "slab order drifted");
    assert_eq!(a.indices, b.indices);
    assert_eq!(a.normals, b.normals);
    let sa = mc::isosurface_smooth_with(&p1, &field, 0.0);
    let sb = mc::isosurface_smooth_with(&p8, &field, 0.0);
    assert_eq!(sa.normals, sb.normals, "gradient fix-up drifted");
}

#[test]
fn codec_bands_are_thread_count_invariant() {
    let (p1, p8) = pools();
    // 128×128 RGBA = 64 KiB raw: four 16 KiB bands
    let mut fb = Framebuffer::new(128, 128);
    for k in 0..4000usize {
        fb.set(k % 128, (k * 13) % 128, [k as u8, (k / 3) as u8, 200, 255]);
    }
    let mut fb2 = fb.clone();
    fb2.set(64, 64, [255, 255, 255, 255]);
    let mut enc1 = DeltaRleCodec::new();
    let mut enc8 = DeltaRleCodec::new();
    for frame in [&fb, &fb2, &fb2] {
        let e1 = enc1.encode_with(&p1, frame);
        let e8 = enc8.encode_with(&p8, frame);
        assert_eq!(e1.keyframe, e8.keyframe);
        assert_eq!(e1.payload, e8.payload, "banded RLE payload diverged");
    }
}

#[test]
fn banded_stream_still_decodes_exactly() {
    // multi-band frames (larger than BAND_MIN_BYTES) must round-trip
    let (_, p8) = pools();
    let mut fb = Framebuffer::new(128, 96);
    for y in 0..96 {
        for x in 0..128 {
            fb.set(x, y, [(x * 2) as u8, (y * 2) as u8, (x ^ y) as u8, 255]);
        }
    }
    let mut enc = DeltaRleCodec::new();
    let mut dec = DeltaRleCodec::new();
    for step in 0..3 {
        fb.set(step * 7, step * 11, [1, 2, 3, 255]);
        let e = enc.encode_with(&p8, &fb);
        let out = dec.decode(&e, 128, 96).expect("banded frame decodes");
        assert_eq!(out, fb, "step {step}");
    }
}

#[test]
fn full_pipeline_golden_frame_is_thread_count_invariant() {
    // field → isosurface → raster → codec, end to end at 1 vs 8 threads
    let (p1, p8) = pools();
    let run = |pool: &ExecPool| {
        let field = blob_field(16);
        let mesh = mc::isosurface_smooth_with(pool, &field, 0.0);
        let fb = render(pool, &mesh, 96);
        let mut codec = DeltaRleCodec::new();
        let frame = codec.encode_with(pool, &fb);
        (fb.to_ppm(), frame.payload)
    };
    let (ppm1, pay1) = run(&p1);
    let (ppm8, pay8) = run(&p8);
    assert_eq!(ppm1, ppm8, "golden .ppm differs across thread counts");
    assert_eq!(pay1, pay8, "wire payload differs across thread counts");
}
