//! Golden-frame regression test for the delta+RLE codec.
//!
//! A fixed 16×16 RGBA frame sequence is encoded and the resulting byte
//! stream is compared byte-for-byte against a committed fixture
//! (`tests/fixtures/codec_16x16.golden`). Any change to the wire format —
//! run encoding, delta XOR, keyframe policy — shows up as a fixture
//! mismatch instead of silently breaking old recorded streams.
//!
//! To re-bless after an *intentional* format change:
//! `GOLDEN_BLESS=1 cargo test -p viz --test golden_codec` and commit the
//! updated fixture.

use viz::codec::DeltaRleCodec;
use viz::Framebuffer;

const W: usize = 16;
const H: usize = 16;

fn fixture_path() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/codec_16x16.golden"
    )
}

/// The fixed sequence: a gradient keyframe, a moving 4×4 block, a diagonal
/// wipe, a near-static frame, and an exact repeat (all-zero delta).
fn golden_frames() -> Vec<Framebuffer> {
    let mut frames = Vec::new();
    let mut fb = Framebuffer::new(W, H);
    for y in 0..H {
        for x in 0..W {
            fb.set(x, y, [(x * 16) as u8, (y * 16) as u8, 0x40, 0xFF]);
        }
    }
    frames.push(fb.clone());
    for step in 0..2usize {
        let mut f = frames.last().unwrap().clone();
        for dy in 0..4 {
            for dx in 0..4 {
                f.set(
                    2 + step * 5 + dx,
                    3 + dy,
                    [0xFF, 0x10, (step * 90) as u8, 0xFF],
                );
            }
        }
        frames.push(f);
    }
    let mut wipe = fb.clone();
    for i in 0..W {
        wipe.set(i, i, [0x00, 0xEE, 0x00, 0xFF]);
    }
    frames.push(wipe);
    let mut near_static = frames.last().unwrap().clone();
    near_static.set(0, 15, [1, 2, 3, 255]);
    frames.push(near_static.clone());
    frames.push(near_static); // identical frame → all-zero delta
    frames
}

/// Encode the sequence into the stream layout the fixture pins:
/// per frame `[keyframe: u8][payload_len: u32 LE][payload bytes]`.
fn encode_stream() -> Vec<u8> {
    let mut codec = DeltaRleCodec::new();
    let mut out = Vec::new();
    for fb in golden_frames() {
        let e = codec.encode(&fb);
        out.push(e.keyframe as u8);
        out.extend_from_slice(&(e.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&e.payload);
    }
    out
}

#[test]
fn golden_stream_matches_committed_fixture() {
    let stream = encode_stream();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(fixture_path()).parent().unwrap()).unwrap();
        std::fs::write(fixture_path(), &stream).unwrap();
        return;
    }
    let fixture = std::fs::read(fixture_path())
        .expect("fixture missing — run with GOLDEN_BLESS=1 to create it");
    assert_eq!(
        stream.len(),
        fixture.len(),
        "stream length changed: the codec wire format drifted"
    );
    assert_eq!(stream, fixture, "codec output drifted from the fixture");
}

#[test]
fn golden_generator_is_deterministic() {
    assert_eq!(encode_stream(), encode_stream());
}

#[test]
fn golden_stream_has_expected_shape() {
    let mut codec = DeltaRleCodec::new();
    let encoded: Vec<_> = golden_frames().iter().map(|f| codec.encode(f)).collect();
    assert!(encoded[0].keyframe, "first frame must be a keyframe");
    assert!(
        encoded[1..].iter().all(|e| !e.keyframe),
        "no forced keyframes in this sequence"
    );
    // the exact-repeat final frame collapses to almost nothing
    let last = encoded.last().unwrap();
    // 16×16×4 = 1024 raw bytes → a handful of max-length zero runs plus
    // the fixed frame header
    assert!(
        last.wire_size() < last.raw_size / 50,
        "all-zero delta must compress >50x, got {} of {}",
        last.wire_size(),
        last.raw_size
    );
}

#[test]
fn golden_stream_decodes_back_exactly() {
    let mut enc = DeltaRleCodec::new();
    let mut dec = DeltaRleCodec::new();
    for (i, fb) in golden_frames().iter().enumerate() {
        let e = enc.encode(fb);
        let out = dec.decode(&e, W, H).expect("stream must decode in order");
        assert_eq!(&out, fb, "frame {i} did not survive the codec");
    }
}
