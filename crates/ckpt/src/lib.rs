//! Versioned binary snapshot format for full session state.
//!
//! The ROADMAP's checkpoint/restore item: a production steering service
//! needs crash recovery and rolling upgrades, not just the planned §2.4
//! hand-offs. This crate is the *wire format* half of that story — the
//! domain crates (LBM, PEPC, the steering/monitor hubs, sessions) each
//! know how to lay their own state into named [`Section`]s, and a
//! [`Snapshot`] frames those sections with a magic, an explicit version,
//! and little-endian integer fields throughout, so a snapshot written on
//! one host restores bit-exactly on any other.
//!
//! # Format
//!
//! ```text
//! header   := magic "GSCKPT" | version u16 | flags u8 | seq u64
//!           | base_seq u64 | time_ns u64 | section_count u32
//! section  := name_len u16 | name utf-8 | chunk u32 | body
//! body     := kind u8 (0 = full)   | len u64 | bytes            -- full
//!           | kind u8 (1 = sparse) | total u64 | ndirty u32
//!           | (index u32 | len u32 | bytes)*                    -- delta
//! ```
//!
//! All integers are little-endian; floats are carried as raw bit
//! patterns ([`SectionWriter::put_f64`] writes `to_bits()`), so
//! NaN-bearing grids round-trip bit-exactly.
//!
//! # Deltas
//!
//! A section's `chunk` field is its dirty-tracking granularity in bytes
//! (0 = the whole section is one chunk). Backends pick a granularity
//! aligned with their executor chunking — the LBM uses one z-plane of
//! distributions per chunk, matching the exec pool's fixed chunk→index
//! map — and [`Snapshot::encode_delta`] emits only the chunks whose
//! bytes changed against a base snapshot. [`Snapshot::decode_delta`]
//! replays them over the base; a chain `[full, delta, delta…]` restores
//! by decoding the full snapshot and applying each delta in order.
//!
//! # Version policy
//!
//! [`VERSION`] bumps on any layout change; a reader rejects snapshots
//! from a different version with
//! [`CkptError::UnsupportedVersion`] rather than guessing. There is no
//! cross-version migration — a checkpoint is a *short-lived* artifact
//! (crash recovery, migration transfer), not an archive format.

use std::fmt;

/// Leading magic of every snapshot.
pub const MAGIC: [u8; 6] = *b"GSCKPT";

/// Current format version. Bumps on any layout change.
pub const VERSION: u16 = 1;

/// Header flag bit: the blob is a delta against a base snapshot.
const FLAG_DELTA: u8 = 1;

/// Section body kind: complete bytes follow.
const KIND_FULL: u8 = 0;
/// Section body kind: sparse dirty chunks over a base section follow.
const KIND_SPARSE: u8 = 1;

/// Typed decode failures. Every variant names what the reader was doing
/// when the bytes ran out or disagreed, so a corrupt snapshot produces an
/// attributable error instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// The blob's format version is not this reader's [`VERSION`].
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// The only version this reader accepts.
        supported: u16,
    },
    /// The bytes ran out mid-field.
    Truncated {
        /// What was being read.
        context: String,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// Decoding finished with unread bytes left over.
    TrailingBytes {
        /// Count of unconsumed bytes.
        extra: usize,
    },
    /// A full-snapshot decode was handed a delta blob.
    IsDelta,
    /// A delta decode was handed a full-snapshot blob.
    NotADelta,
    /// A delta's recorded base sequence number does not match the base
    /// snapshot it is being applied to.
    BaseMismatch {
        /// The base seq the delta was cut against.
        expected: u64,
        /// The seq of the snapshot offered as base.
        found: u64,
    },
    /// A delta references a section the base snapshot does not carry, or
    /// whose base length disagrees with the recorded total.
    MissingSection {
        /// The section name.
        name: String,
    },
    /// A structural invariant failed (bad UTF-8 name, dirty chunk out of
    /// bounds, unknown body kind).
    Corrupt {
        /// What was being read.
        context: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a snapshot: bad magic"),
            CkptError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (reader is v{supported})"
                )
            }
            CkptError::Truncated {
                context,
                needed,
                have,
            } => write!(
                f,
                "truncated snapshot at {context}: need {needed} bytes, have {have}"
            ),
            CkptError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot")
            }
            CkptError::IsDelta => write!(f, "blob is a delta; decode it against its base"),
            CkptError::NotADelta => write!(f, "blob is a full snapshot, not a delta"),
            CkptError::BaseMismatch { expected, found } => {
                write!(
                    f,
                    "delta cut against base seq {expected}, applied to seq {found}"
                )
            }
            CkptError::MissingSection { name } => {
                write!(
                    f,
                    "delta references section {name:?} absent or resized in base"
                )
            }
            CkptError::Corrupt { context } => write!(f, "corrupt snapshot at {context}"),
        }
    }
}

impl std::error::Error for CkptError {}

// ---------------------------------------------------------------------------
// section body writer / reader
// ---------------------------------------------------------------------------

/// Append-only builder for one section's body bytes. All integers are
/// little-endian; floats are written as raw bit patterns.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// An empty body.
    pub fn new() -> SectionWriter {
        SectionWriter::default()
    }

    /// A body expecting roughly `cap` bytes.
    pub fn with_capacity(cap: usize) -> SectionWriter {
        SectionWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw bit pattern (NaN-exact).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append an `f32` as its raw bit pattern (NaN-exact).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string (u32 length).
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed byte string (u64 length).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Append a length-prefixed `f64` slice as raw bit patterns.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        self.buf.reserve(vs.len() * 8);
        for v in vs {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Append a length-prefixed `f32` slice as raw bit patterns.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_u64(vs.len() as u64);
        self.buf.reserve(vs.len() * 4);
        for v in vs {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// The accumulated body bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Checked reader over one section's body bytes — the decode twin of
/// [`SectionWriter`]. Every read returns [`CkptError::Truncated`] instead
/// of panicking when the bytes run out.
#[derive(Debug)]
pub struct SectionReader<'a> {
    rest: &'a [u8],
    context: &'a str,
}

impl<'a> SectionReader<'a> {
    /// A reader over `bytes`; `context` names the section in errors.
    pub fn new(bytes: &'a [u8], context: &'a str) -> SectionReader<'a> {
        SectionReader {
            rest: bytes,
            context,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.rest.len() < n {
            return Err(CkptError::Truncated {
                context: self.context.to_string(),
                needed: n,
                have: self.rest.len(),
            });
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, CkptError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CkptError::Corrupt {
                context: format!("{}: bool", self.context),
            }),
        }
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an `f32` from its raw bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, CkptError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CkptError> {
        let len = self.get_u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| CkptError::Corrupt {
            context: format!("{}: utf-8 string", self.context),
        })
    }

    /// Read a length-prefixed byte string.
    pub fn get_byte_vec(&mut self) -> Result<Vec<u8>, CkptError> {
        let len = self.get_u64()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a length-prefixed `f64` slice from raw bit patterns.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CkptError> {
        let count = self.get_u64()? as usize;
        let raw = self.take(count.saturating_mul(8))?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }

    /// Read a length-prefixed `f32` slice from raw bit patterns.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>, CkptError> {
        let count = self.get_u64()? as usize;
        let raw = self.take(count.saturating_mul(4))?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect())
    }

    /// Unread bytes left.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Succeed only if every byte was consumed.
    pub fn expect_end(&self) -> Result<(), CkptError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(CkptError::TrailingBytes {
                extra: self.rest.len(),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// snapshot
// ---------------------------------------------------------------------------

/// One named state section inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name, unique within a snapshot (e.g. `"lbm/fa"`).
    pub name: String,
    /// Dirty-tracking granularity in bytes for delta checkpoints
    /// (0 = whole section). Pick the producer's executor chunk size so
    /// dirty chunks align with the exec pool's fixed chunk→index map.
    pub chunk: u32,
    /// The section body (typically built with [`SectionWriter`]).
    pub bytes: Vec<u8>,
}

/// A versioned, endianness-explicit snapshot of named state sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotone checkpoint sequence number (delta chains reference it).
    pub seq: u64,
    /// Virtual-clock time the checkpoint was cut at, nanoseconds.
    pub time_ns: u64,
    /// The sections, in producer order.
    pub sections: Vec<Section>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new(seq: u64, time_ns: u64) -> Snapshot {
        Snapshot {
            seq,
            time_ns,
            sections: Vec::new(),
        }
    }

    /// Append a section.
    pub fn push(&mut self, name: &str, chunk: u32, bytes: Vec<u8>) {
        self.sections.push(Section {
            name: name.to_string(),
            chunk,
            bytes,
        });
    }

    /// A section's body bytes by name.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.bytes.as_slice())
    }

    /// A checked [`SectionReader`] over a named section, or
    /// [`CkptError::MissingSection`].
    pub fn reader<'a>(&'a self, name: &'a str) -> Result<SectionReader<'a>, CkptError> {
        self.section(name)
            .map(|b| SectionReader::new(b, name))
            .ok_or_else(|| CkptError::MissingSection {
                name: name.to_string(),
            })
    }

    /// Total body bytes across all sections.
    pub fn state_bytes(&self) -> usize {
        self.sections.iter().map(|s| s.bytes.len()).sum()
    }

    fn encode_header(&self, flags: u8, base_seq: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.state_bytes());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(flags);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&base_seq.to_le_bytes());
        out.extend_from_slice(&self.time_ns.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out
    }

    /// Serialize as a full snapshot.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.encode_header(0, 0);
        for s in &self.sections {
            put_section_head(&mut out, s);
            out.push(KIND_FULL);
            out.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(&s.bytes);
        }
        out
    }

    /// Serialize as a delta against `base`: sections carry only the
    /// chunks whose bytes changed. Sections absent from `base` (or whose
    /// length changed — chunk indices would not line up) fall back to
    /// full bodies inside the delta.
    pub fn encode_delta(&self, base: &Snapshot) -> Vec<u8> {
        let mut out = self.encode_header(FLAG_DELTA, base.seq);
        for s in &self.sections {
            put_section_head(&mut out, s);
            match base.section(&s.name) {
                Some(old) if old.len() == s.bytes.len() => {
                    out.push(KIND_SPARSE);
                    out.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes());
                    let grain = effective_chunk(s.chunk, s.bytes.len());
                    let dirty: Vec<(u32, &[u8])> = s
                        .bytes
                        .chunks(grain)
                        .zip(old.chunks(grain))
                        .enumerate()
                        .filter(|(_, (new, old))| new != old)
                        .map(|(i, (new, _))| (i as u32, new))
                        .collect();
                    out.extend_from_slice(&(dirty.len() as u32).to_le_bytes());
                    for (idx, bytes) in dirty {
                        out.extend_from_slice(&idx.to_le_bytes());
                        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                        out.extend_from_slice(bytes);
                    }
                }
                _ => {
                    out.push(KIND_FULL);
                    out.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes());
                    out.extend_from_slice(&s.bytes);
                }
            }
        }
        out
    }

    /// Decode a full snapshot. Rejects deltas with [`CkptError::IsDelta`].
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, CkptError> {
        let (snap, flags, _base_seq) = decode_common(bytes, false)?;
        debug_assert_eq!(flags & FLAG_DELTA, 0);
        Ok(snap)
    }

    /// Decode a delta blob and apply it over `base`, producing the full
    /// state at the delta's cut point. The delta must have been encoded
    /// against a base with `base.seq` ([`CkptError::BaseMismatch`]).
    pub fn decode_delta(bytes: &[u8], base: &Snapshot) -> Result<Snapshot, CkptError> {
        let (snap, _flags, base_seq) = decode_common_delta(bytes, base)?;
        if base_seq != base.seq {
            return Err(CkptError::BaseMismatch {
                expected: base_seq,
                found: base.seq,
            });
        }
        Ok(snap)
    }

    /// Peek whether an encoded blob is a delta, validating only the
    /// header (magic + version).
    pub fn is_delta(bytes: &[u8]) -> Result<bool, CkptError> {
        let mut r = SectionReader::new(bytes, "header");
        check_magic_version(&mut r)?;
        Ok(r.get_u8()? & FLAG_DELTA != 0)
    }
}

fn put_section_head(out: &mut Vec<u8>, s: &Section) {
    out.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
    out.extend_from_slice(s.name.as_bytes());
    out.extend_from_slice(&s.chunk.to_le_bytes());
}

/// The working dirty-chunk grain: `chunk` bytes, or the whole section
/// when `chunk` is 0 or the section is empty.
fn effective_chunk(chunk: u32, len: usize) -> usize {
    if chunk == 0 {
        len.max(1)
    } else {
        chunk as usize
    }
}

fn check_magic_version(r: &mut SectionReader<'_>) -> Result<(), CkptError> {
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = r.get_u16()?;
    if version != VERSION {
        return Err(CkptError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    Ok(())
}

fn decode_common(bytes: &[u8], _want_delta: bool) -> Result<(Snapshot, u8, u64), CkptError> {
    let mut r = SectionReader::new(bytes, "header");
    check_magic_version(&mut r)?;
    let flags = r.get_u8()?;
    if flags & FLAG_DELTA != 0 {
        return Err(CkptError::IsDelta);
    }
    let seq = r.get_u64()?;
    let base_seq = r.get_u64()?;
    let time_ns = r.get_u64()?;
    let count = r.get_u32()?;
    let mut snap = Snapshot::new(seq, time_ns);
    for _ in 0..count {
        let (name, chunk) = get_section_head(&mut r)?;
        match r.get_u8()? {
            KIND_FULL => {
                let bytes = r.get_byte_vec()?;
                snap.push(&name, chunk, bytes);
            }
            _ => {
                return Err(CkptError::Corrupt {
                    context: format!("section {name}: sparse body in full snapshot"),
                })
            }
        }
    }
    r.expect_end()?;
    Ok((snap, flags, base_seq))
}

fn decode_common_delta(bytes: &[u8], base: &Snapshot) -> Result<(Snapshot, u8, u64), CkptError> {
    let mut r = SectionReader::new(bytes, "header");
    check_magic_version(&mut r)?;
    let flags = r.get_u8()?;
    if flags & FLAG_DELTA == 0 {
        return Err(CkptError::NotADelta);
    }
    let seq = r.get_u64()?;
    let base_seq = r.get_u64()?;
    let time_ns = r.get_u64()?;
    let count = r.get_u32()?;
    let mut snap = Snapshot::new(seq, time_ns);
    for _ in 0..count {
        let (name, chunk) = get_section_head(&mut r)?;
        match r.get_u8()? {
            KIND_FULL => {
                let bytes = r.get_byte_vec()?;
                snap.push(&name, chunk, bytes);
            }
            KIND_SPARSE => {
                let total = r.get_u64()? as usize;
                let old = base
                    .section(&name)
                    .filter(|old| old.len() == total)
                    .ok_or_else(|| CkptError::MissingSection { name: name.clone() })?;
                let mut body = old.to_vec();
                let grain = effective_chunk(chunk, total);
                let ndirty = r.get_u32()?;
                for _ in 0..ndirty {
                    let idx = r.get_u32()? as usize;
                    let len = r.get_u32()? as usize;
                    let bytes = r.take(len)?;
                    let start = idx.saturating_mul(grain);
                    let ok = start
                        .checked_add(len)
                        .is_some_and(|end| end <= total && len <= grain);
                    if !ok {
                        return Err(CkptError::Corrupt {
                            context: format!("section {name}: dirty chunk {idx} out of bounds"),
                        });
                    }
                    body[start..start + len].copy_from_slice(bytes);
                }
                snap.push(&name, chunk, body);
            }
            k => {
                return Err(CkptError::Corrupt {
                    context: format!("section {name}: unknown body kind {k}"),
                })
            }
        }
    }
    r.expect_end()?;
    Ok((snap, flags, base_seq))
}

fn get_section_head(r: &mut SectionReader<'_>) -> Result<(String, u32), CkptError> {
    let name_len = r.get_u16()? as usize;
    let raw = r.take(name_len)?;
    let name = String::from_utf8(raw.to_vec()).map_err(|_| CkptError::Corrupt {
        context: "section name: utf-8".to_string(),
    })?;
    let chunk = r.get_u32()?;
    Ok((name, chunk))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::new(3, 1_200_000_000);
        let mut w = SectionWriter::new();
        w.put_u64(42);
        w.put_f64(f64::NAN);
        w.put_str("miscibility");
        snap.push("meta", 0, w.finish());
        let grid: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let mut w = SectionWriter::new();
        w.put_f64_slice(&grid);
        snap.push("field", 64, w.finish());
        snap.push("empty", 0, Vec::new());
        snap
    }

    #[test]
    fn full_roundtrip_is_exact() {
        let snap = sample();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
        assert!(!Snapshot::is_delta(&bytes).unwrap());
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut snap = Snapshot::new(0, 0);
        let mut w = SectionWriter::new();
        w.put_f64(weird);
        w.put_f64_slice(&[f64::NAN, -0.0, f64::INFINITY]);
        snap.push("nan", 0, w.finish());
        let back = Snapshot::decode(&snap.encode()).unwrap();
        let mut r = back.reader("nan").unwrap();
        assert_eq!(r.get_f64().unwrap().to_bits(), weird.to_bits());
        let vs = r.get_f64_vec().unwrap();
        assert_eq!(vs[0].to_bits(), f64::NAN.to_bits());
        assert_eq!(vs[1].to_bits(), (-0.0f64).to_bits());
        r.expect_end().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xff;
        assert_eq!(Snapshot::decode(&bytes), Err(CkptError::BadMagic));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = sample().encode();
        bytes[6] = 0x7f; // version low byte
        assert_eq!(
            Snapshot::decode(&bytes),
            Err(CkptError::UnsupportedVersion {
                found: 0x7f,
                supported: VERSION
            })
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CkptError::Truncated { .. } | CkptError::BadMagic),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(
            Snapshot::decode(&bytes),
            Err(CkptError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn delta_roundtrip_equals_full() {
        let base = sample();
        let mut next = base.clone();
        next.seq = 4;
        // dirty exactly one 64-byte chunk of the field section
        next.sections[1].bytes[200] ^= 0x55;
        // and grow nothing: meta changes entirely (chunk 0)
        next.sections[0].bytes[0] ^= 1;
        let delta = next.encode_delta(&base);
        let full = next.encode();
        assert!(Snapshot::is_delta(&delta).unwrap());
        assert!(
            delta.len() < full.len(),
            "delta {} >= full {}",
            delta.len(),
            full.len()
        );
        let applied = Snapshot::decode_delta(&delta, &base).unwrap();
        assert_eq!(applied, next);
    }

    #[test]
    fn unchanged_delta_is_tiny() {
        let base = sample();
        let mut next = base.clone();
        next.seq = 4;
        let delta = next.encode_delta(&base);
        let applied = Snapshot::decode_delta(&delta, &base).unwrap();
        assert_eq!(applied, next);
        assert!(delta.len() < base.encode().len() / 2);
    }

    #[test]
    fn delta_against_wrong_base_rejected() {
        let base = sample();
        let mut next = base.clone();
        next.seq = 4;
        let delta = next.encode_delta(&base);
        let mut other = base.clone();
        other.seq = 9;
        assert_eq!(
            Snapshot::decode_delta(&delta, &other),
            Err(CkptError::BaseMismatch {
                expected: 3,
                found: 9
            })
        );
    }

    #[test]
    fn delta_and_full_are_mutually_rejecting() {
        let base = sample();
        let delta = base.encode_delta(&base);
        let full = base.encode();
        assert_eq!(Snapshot::decode(&delta), Err(CkptError::IsDelta));
        assert_eq!(
            Snapshot::decode_delta(&full, &base),
            Err(CkptError::NotADelta)
        );
    }

    #[test]
    fn resized_section_falls_back_to_full_body_in_delta() {
        let base = sample();
        let mut next = base.clone();
        next.seq = 4;
        next.sections[1].bytes.truncate(100);
        let delta = next.encode_delta(&base);
        let applied = Snapshot::decode_delta(&delta, &base).unwrap();
        assert_eq!(applied, next);
    }

    #[test]
    fn sparse_chunk_out_of_bounds_is_corrupt() {
        let base = sample();
        let mut next = base.clone();
        next.seq = 4;
        next.sections[1].bytes[0] ^= 1;
        let mut delta = next.encode_delta(&base);
        // find the dirty chunk index (first dirty record after the sparse
        // header of the "field" section) and poison it
        // layout scan: easier to corrupt by brute force — flip every u32
        // position until decode yields Corrupt
        let mut saw_corrupt = false;
        for i in 0..delta.len().saturating_sub(4) {
            let orig = delta[i..i + 4].to_vec();
            delta[i..i + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            if matches!(
                Snapshot::decode_delta(&delta, &base),
                Err(CkptError::Corrupt { .. })
            ) {
                saw_corrupt = true;
            }
            delta[i..i + 4].copy_from_slice(&orig);
        }
        assert!(saw_corrupt, "no corruption point produced Corrupt");
    }

    #[test]
    fn reader_writer_cover_every_scalar() {
        let mut w = SectionWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_i64(-12);
        w.put_f32(1.5);
        w.put_bytes(b"abc");
        w.put_f32_slice(&[2.5, f32::NAN]);
        let body = w.finish();
        let mut r = SectionReader::new(&body, "test");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_i64().unwrap(), -12);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_byte_vec().unwrap(), b"abc");
        let f = r.get_f32_vec().unwrap();
        assert_eq!(f[0], 2.5);
        assert!(f[1].is_nan());
        r.expect_end().unwrap();
        assert!(matches!(r.get_u8(), Err(CkptError::Truncated { .. })));
    }

    #[test]
    fn bool_other_than_01_is_corrupt() {
        let mut r = SectionReader::new(&[2], "b");
        assert!(matches!(r.get_bool(), Err(CkptError::Corrupt { .. })));
    }

    #[test]
    fn errors_render_and_implement_error() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(CkptError::BadMagic),
            Box::new(CkptError::UnsupportedVersion {
                found: 9,
                supported: 1,
            }),
            Box::new(CkptError::Truncated {
                context: "x".into(),
                needed: 8,
                have: 2,
            }),
            Box::new(CkptError::MissingSection { name: "f".into() }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
