//! Property tests for the snapshot codec: arbitrary section sets —
//! including NaN-bearing float grids and zero-length bodies — round-trip
//! bit-exactly through full encode/decode, deltas reconstruct the same
//! state as fulls, and random mutations never panic the decoder.

use gridsteer_ckpt::{CkptError, Section, SectionReader, SectionWriter, Snapshot};
use proptest::prelude::*;

/// Build a snapshot from flat drawn primitives: `sizes[i]` bytes of body
/// for section `i`, drawn from `pool`, with `chunks[i]` as its grain.
fn build_snapshot(
    seq: u64,
    time_ns: u64,
    sizes: &[usize],
    chunks: &[u32],
    pool: &[u8],
) -> Snapshot {
    let mut snap = Snapshot::new(seq, time_ns);
    let mut off = 0usize;
    for (i, (&sz, &chunk)) in sizes.iter().zip(chunks).enumerate() {
        let bytes: Vec<u8> = (0..sz)
            .map(|j| pool[(off + j) % pool.len().max(1)])
            .collect();
        off += sz;
        snap.push(&format!("sec{i}"), chunk, bytes);
    }
    snap
}

proptest! {
    #[test]
    fn full_roundtrip(
        seq in any::<u64>(),
        time_ns in any::<u64>(),
        sizes in collection::vec(0usize..300, 0..6),
        chunks in collection::vec(0u32..=128, 6),
        pool in collection::vec(any::<u8>(), 1..512),
    ) {
        let snap = build_snapshot(seq, time_ns, &sizes, &chunks, &pool);
        let back = Snapshot::decode(&snap.encode()).unwrap();
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn float_grids_roundtrip_bit_exact(bits in collection::vec(any::<u64>(), 0..256)) {
        // raw u64 bit patterns cover every NaN payload and signed zero
        let grid: Vec<f64> = bits.iter().copied().map(f64::from_bits).collect();
        let mut w = SectionWriter::new();
        w.put_f64_slice(&grid);
        let mut snap = Snapshot::new(1, 2);
        snap.push("grid", 64, w.finish());
        let back = Snapshot::decode(&snap.encode()).unwrap();
        let mut r = SectionReader::new(back.section("grid").unwrap(), "grid");
        let vs = r.get_f64_vec().unwrap();
        let back_bits: Vec<u64> = vs.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, bits);
        r.expect_end().unwrap();
    }

    #[test]
    fn delta_reconstructs_exact_state(
        sizes in collection::vec(0usize..300, 1..6),
        chunks in collection::vec(0u32..=64, 6),
        pool in collection::vec(any::<u8>(), 1..512),
        flips in collection::vec(any::<u64>(), 0..8),
    ) {
        let base = build_snapshot(7, 11, &sizes, &chunks, &pool);
        let mut next = base.clone();
        next.seq = 8;
        for f in flips {
            let s = (f as usize) % next.sections.len();
            let body = &mut next.sections[s].bytes;
            if body.is_empty() {
                continue;
            }
            let b = ((f >> 16) as usize) % body.len();
            body[b] ^= (f >> 40) as u8 | 1;
        }
        let delta = next.encode_delta(&base);
        let applied = Snapshot::decode_delta(&delta, &base).unwrap();
        prop_assert_eq!(&applied, &next);
        // and the delta path agrees exactly with the full path
        let via_full = Snapshot::decode(&next.encode()).unwrap();
        prop_assert_eq!(applied, via_full);
    }

    #[test]
    fn truncation_never_panics(
        sizes in collection::vec(0usize..100, 0..4),
        chunks in collection::vec(0u32..=32, 4),
        pool in collection::vec(any::<u8>(), 1..128),
        cut_sel in any::<u64>(),
    ) {
        let snap = build_snapshot(1, 2, &sizes, &chunks, &pool);
        let bytes = snap.encode();
        let n = (cut_sel as usize) % bytes.len();
        let err = Snapshot::decode(&bytes[..n]).unwrap_err();
        prop_assert!(matches!(err, CkptError::Truncated { .. } | CkptError::BadMagic));
    }

    #[test]
    fn random_mutation_never_panics(
        sizes in collection::vec(0usize..100, 0..4),
        chunks in collection::vec(0u32..=32, 4),
        pool in collection::vec(any::<u8>(), 1..128),
        at_sel in any::<u64>(),
        x in 1u8..=255,
    ) {
        let snap = build_snapshot(1, 2, &sizes, &chunks, &pool);
        let mut bytes = snap.encode();
        let i = (at_sel as usize) % bytes.len();
        bytes[i] ^= x;
        // decode must return Ok or a typed error, never panic
        let _ = Snapshot::decode(&bytes);
        let _ = Snapshot::decode_delta(&bytes, &snap);
        let _ = Snapshot::is_delta(&bytes);
    }

    #[test]
    fn zero_length_sections_roundtrip(chunks in collection::vec(0u32..=16, 1..4)) {
        let mut snap = Snapshot::new(0, 0);
        for (i, &c) in chunks.iter().enumerate() {
            snap.push(&format!("empty{i}"), c, Vec::new());
        }
        let back = Snapshot::decode(&snap.encode()).unwrap();
        prop_assert_eq!(&back, &snap);
        // empty sections delta cleanly too
        let delta = snap.encode_delta(&back);
        prop_assert_eq!(Snapshot::decode_delta(&delta, &back).unwrap(), snap);
    }
}

/// The `Section` type is plain data; sanity-check its public construction.
#[test]
fn section_fields_are_public() {
    let s = Section {
        name: "x".into(),
        chunk: 8,
        bytes: vec![1, 2, 3],
    };
    let mut snap = Snapshot::new(1, 1);
    snap.sections.push(s);
    assert_eq!(snap.section("x"), Some(&[1u8, 2, 3][..]));
}
