//! Criterion microbenchmarks of the hot kernels behind every experiment:
//! the LB step (F1/E44), tree build+force (F3/EP1), isosurface extraction
//! (F1/EC1), the framebuffer codec (EC1/E42), VISIT framing (EV2), and the
//! software rasterizer (E42).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_lbm_step(c: &mut Criterion) {
    use lbm::{LbmConfig, TwoFluidLbm};
    let mut g = c.benchmark_group("lbm");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for n in [16usize, 32] {
        let mut sim = TwoFluidLbm::new(LbmConfig {
            nx: n,
            ny: n,
            nz: n,
            ..Default::default()
        });
        sim.set_miscibility(0.2);
        g.bench_function(format!("step_{n}cubed"), |b| {
            b.iter(|| {
                sim.step();
                black_box(sim.steps())
            })
        });
    }
    g.finish();
}

/// The step-latency win of the tentpole refactor: the same LBM `step_n`
/// on the persistent executor pool vs a spawn-per-pass baseline (fresh OS
/// threads for every density/velocity/stream pass — what the tree did
/// before `gridsteer_exec`), at 1/2/4/8 threads. Physics is bit-identical
/// between the legs; only dispatch overhead differs.
fn bench_lbm_pool_vs_spawn(c: &mut Criterion) {
    use gridsteer_exec::ExecPool;
    use lbm::{LbmConfig, TwoFluidLbm};
    use std::sync::Arc;
    let mut g = c.benchmark_group("lbm_dispatch");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let cfg = LbmConfig {
            nx: 32,
            ny: 32,
            nz: 32,
            threads,
            ..Default::default()
        };
        let mut pooled = TwoFluidLbm::with_pool(cfg.clone(), gridsteer_exec::shared(threads));
        pooled.set_miscibility(0.2);
        g.bench_function(format!("step_n_pool_t{threads}"), |b| {
            b.iter(|| {
                pooled.step_n(1);
                black_box(pooled.steps())
            })
        });
        let mut spawning =
            TwoFluidLbm::with_pool(cfg.clone(), Arc::new(ExecPool::spawn_per_call(threads)));
        spawning.set_miscibility(0.2);
        g.bench_function(format!("step_n_spawn_t{threads}"), |b| {
            b.iter(|| {
                spawning.step_n(1);
                black_box(spawning.steps())
            })
        });
    }
    g.finish();
}

fn bench_pepc_forces(c: &mut Criterion) {
    use pepc::{direct_forces, Octree, Particle, TreeConfig};
    use rand::{Rng, SeedableRng};
    let mut g = c.benchmark_group("pepc");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let particles: Vec<Particle> = (0..2000)
        .map(|i| {
            Particle::at(
                [
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ],
                if i % 2 == 0 { 0.1 } else { -0.1 },
                i,
            )
        })
        .collect();
    g.bench_function("tree_build_and_forces_2k", |b| {
        b.iter(|| {
            let tree = Octree::build(&particles, TreeConfig::default());
            black_box(tree.forces(&particles))
        })
    });
    g.bench_function("direct_forces_2k", |b| {
        b.iter(|| black_box(direct_forces(&particles, 0.05)))
    });
    g.finish();
}

fn bench_isosurface(c: &mut Criterion) {
    use viz::{mc, Field3};
    let mut g = c.benchmark_group("viz");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let n = 32usize;
    let cm = (n as f32 - 1.0) / 2.0;
    let field = Field3::from_fn(n, n, n, |x, y, z| {
        10.0 - ((x as f32 - cm).powi(2) + (y as f32 - cm).powi(2) + (z as f32 - cm).powi(2)).sqrt()
    });
    g.bench_function("isosurface_32cubed", |b| {
        b.iter(|| black_box(mc::isosurface(&field, 0.0)))
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    use viz::codec::DeltaRleCodec;
    use viz::Framebuffer;
    let mut g = c.benchmark_group("codec");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    let mut fb = Framebuffer::new(512, 512);
    for k in 0..1000usize {
        fb.set(k % 512, (k * 7) % 512, [k as u8, 128, 200, 255]);
    }
    g.bench_function("delta_rle_encode_512", |b| {
        b.iter_batched(
            DeltaRleCodec::new,
            |mut codec| {
                black_box(codec.encode(&fb));
                black_box(codec.encode(&fb))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_visit_framing(c: &mut Criterion) {
    use visit::{Endianness, Frame, MsgKind, VisitValue};
    let mut g = c.benchmark_group("visit");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    let payload: Vec<f32> = (0..65536).map(|i| i as f32).collect();
    g.bench_function("frame_encode_decode_256k", |b| {
        b.iter(|| {
            let f = Frame::with_value(
                MsgKind::Data,
                1,
                Endianness::Little,
                VisitValue::F32(payload.clone()),
            );
            black_box(Frame::decode(&f.encode()).unwrap())
        })
    });
    g.finish();
}

fn bench_rasterizer(c: &mut Criterion) {
    use viz::{mc, Camera, Field3, Rasterizer, Vec3};
    let mut g = c.benchmark_group("raster");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let n = 24usize;
    let cm = (n as f32 - 1.0) / 2.0;
    let field = Field3::from_fn(n, n, n, |x, y, z| {
        8.0 - ((x as f32 - cm).powi(2) + (y as f32 - cm).powi(2) + (z as f32 - cm).powi(2)).sqrt()
    });
    let mesh = mc::isosurface_smooth(&field, 0.0);
    let cam = Camera::look_at(Vec3::new(30.0, 30.0, -28.0), Vec3::new(cm, cm, cm));
    g.bench_function("draw_mesh_512", |b| {
        b.iter(|| {
            let mut r = Rasterizer::new(512, 512);
            r.clear([0, 0, 0, 255]);
            r.draw_mesh(&cam, &mesh, [200, 90, 60, 255]);
            black_box(r.tris_drawn)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lbm_step,
    bench_lbm_pool_vs_spawn,
    bench_pepc_forces,
    bench_isosurface,
    bench_codec,
    bench_visit_framing,
    bench_rasterizer
);
criterion_main!(benches);
