//! Experiment implementations (see DESIGN.md §4 for the index).

use covise::{
    CollabSession, Controller, CutPlane, IsoSurface, ModuleId, ReadField, Renderer, SyncMode,
};
use gridsteer_bus::{ParamSpec as BusParamSpec, SteerCommand, SteerHub, Transport};
use gridsteer_harness::Scenario;
use lbm::{LbmConfig, TwoFluidLbm};
use netsim::{Link, NetModel, SimTime};
use ogsa::{HostingEnv, Registry, SdeValue, SteeringService, VisControl, VisService};
use pepc::{direct_forces, Octree, PepcConfig, PepcSim, TreeConfig};
use std::time::{Duration, Instant};
use steer_core::{LbmSteerAdapter, LoopBudget, Migrator};
use visit::link::FrameLink;
use visit::{Frame, MemLink, MsgKind, Password, SteeringClient, VBroker, VisitValue};
use viz::codec::DeltaRleCodec;
use viz::{mc, Camera, Rasterizer, Vec3};

/// A printed experiment result: named series of rows.
pub struct ExpResult {
    /// Experiment id (DESIGN.md §4).
    pub id: &'static str,
    /// Markdown-ish rows already printed to stdout.
    pub rows: Vec<String>,
}

impl ExpResult {
    /// FNV-1a 64 over the newline-joined rows, exactly as printed. For
    /// deterministic experiments (e.g. E50, whose rows carry virtual-clock
    /// numbers and scenario digests) this is a stable fingerprint a later
    /// PR can diff for output drift; rows that embed wall-clock timings
    /// legitimately change it run to run.
    pub fn digest(&self) -> u64 {
        self.rows.iter().fold(FNV_OFFSET, |h, row| {
            fnv1a64_with(fnv1a64_with(h, row.as_bytes()), b"\n")
        })
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Fold bytes into a running FNV-1a 64 state.
fn fnv1a64_with(mut h: u64, data: &[u8]) -> u64 {
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a 64 of a byte string (per-cell digests in `BENCH_*.json`).
pub fn fnv1a64(data: &[u8]) -> u64 {
    fnv1a64_with(FNV_OFFSET, data)
}

fn emit(id: &'static str, header: &str, rows: Vec<String>) -> ExpResult {
    println!("== {id} ==");
    println!("{header}");
    for r in &rows {
        println!("{r}");
    }
    println!();
    ExpResult { id, rows }
}

fn sphere_pipeline(
    field: viz::Field3,
    res: usize,
) -> (Controller, covise::RequestBroker, ModuleId, ModuleId) {
    let mut rb = covise::RequestBroker::new();
    let host = rb.add_host("local", covise::broker::HostArch::Little);
    let mut ctl = Controller::new();
    let read = ctl.add_module(host, Box::new(ReadField::new(field)));
    let iso = ctl.add_module(host, Box::new(IsoSurface::new()));
    let render = ctl.add_module(host, Box::new(Renderer::new(res)));
    ctl.connect(read, "field", iso, "field").unwrap();
    ctl.connect(iso, "mesh", render, "mesh").unwrap();
    (ctl, rb, read, render)
}

/// F1 — the RealityGrid Figure-1 pipeline across three sites. Every stage
/// (LBM step, isosurface, raster, codec) dispatches on one shared executor
/// pool — no thread spawning anywhere in the loop.
pub fn exp_f1_realitygrid() -> ExpResult {
    let pool = gridsteer_exec::global();
    let (net, ids) = NetModel::sc2003();
    let compute = ids["london"];
    let vis = ids["manchester"];
    let client = ids["sheffield"];
    let mut sim = TwoFluidLbm::with_pool(
        LbmConfig {
            nx: 24,
            ny: 24,
            nz: 24,
            ..Default::default()
        },
        pool.clone(),
    );
    let mut codec = DeltaRleCodec::new();
    let mut rows = Vec::new();
    for round in 0..6 {
        if round == 3 {
            sim.set_miscibility(0.0);
            rows.push("steer: miscibility -> 0.0 (client -> compute, virtual RTT charged)".into());
        }
        sim.step_n(10);
        let phi = sim.order_parameter();
        // sample: compute → vis over Janet
        let l1 = net.link(compute, vis);
        let t_sample = l1.nominal_arrival(SimTime::ZERO, phi.byte_size());
        // isosurface + render at the vis site (wall)
        let t0 = Instant::now();
        let mesh = mc::isosurface_smooth_with(&pool, &phi, 0.0);
        let mut r = Rasterizer::new(256, 256);
        r.clear([10, 10, 30, 255]);
        let cam = Camera::look_at(Vec3::new(30.0, 30.0, -28.0), Vec3::new(11.5, 11.5, 11.5));
        r.draw_mesh_with(&pool, &cam, &mesh, [200, 90, 60, 255]);
        let wall = t0.elapsed();
        // compressed bitmap: vis → client
        let frame = codec.encode_with(&pool, r.framebuffer());
        let l2 = net.link(vis, client);
        let t_frame = l2.nominal_arrival(SimTime::ZERO, frame.wire_size());
        rows.push(format!(
            "step {:3}: sample {} B -> vis in {}, {} tris, render {:?}, frame {} B -> laptop in {}",
            sim.steps(),
            phi.byte_size(),
            t_sample,
            mesh.tri_count(),
            wall,
            frame.wire_size(),
            t_frame
        ));
    }
    // steering round trip client → compute
    let rtt = net.rtt(client, compute);
    rows.push(format!("steering round trip (sheffield <-> london): {rtt}"));
    emit(
        "F1",
        "RealityGrid pipeline: compute(london) -> vis(manchester) -> laptop(sheffield)",
        rows,
    )
}

/// F2 — OGSA steering service: discover, bind, steer both services.
pub fn exp_f2_ogsa_service() -> ExpResult {
    let sim = std::sync::Arc::new(parking_lot_mutex(TwoFluidLbm::new(LbmConfig::small())));
    let vis_state = std::sync::Arc::new(parking_lot_mutex(VisControl::default()));
    let mut env = HostingEnv::new();
    let reg = env.host("registry", Box::new(Registry::new()), None);
    let steer = env.host(
        "steer",
        Box::new(SteeringService::new(
            "lbm",
            std::sync::Arc::new(parking_lot_mutex(LbmSteerAdapter::new(sim.clone()))) as _,
        )),
        Some(600),
    );
    let viss = env.host(
        "vis",
        Box::new(VisService::new(vis_state.clone())),
        Some(600),
    );
    for (h, t) in [
        (&steer, SteeringService::PORT_TYPE),
        (&viss, VisService::PORT_TYPE),
    ] {
        env.invoke(
            &reg,
            "publish",
            &[
                SdeValue::Str(h.clone()),
                SdeValue::Str(t.into()),
                SdeValue::Str("".into()),
            ],
        )
        .unwrap();
    }
    let mut rows = Vec::new();
    let t0 = Instant::now();
    let found = env
        .invoke(
            &reg,
            "discover",
            &[SdeValue::Str(SteeringService::PORT_TYPE.into())],
        )
        .unwrap();
    let handle = found.first().unwrap().as_list().unwrap()[0].clone();
    rows.push(format!(
        "discover: 1 steering service found in {:?}",
        t0.elapsed()
    ));
    let t0 = Instant::now();
    for k in 0..100 {
        env.invoke(
            &handle,
            "setParam",
            &[
                SdeValue::Str("miscibility".into()),
                SdeValue::F64((k % 10) as f64 / 10.0),
            ],
        )
        .unwrap();
    }
    rows.push(format!(
        "100 setParam invocations: {:?} total ({:?}/op)",
        t0.elapsed(),
        t0.elapsed() / 100
    ));
    env.invoke(&viss, "setIsovalue", &[SdeValue::F64(0.25)])
        .unwrap();
    rows.push(format!(
        "vis service steered: isovalue={}, sim steered: miscibility={}",
        vis_state.lock().isovalue,
        sim.lock().miscibility()
    ));
    // soft state: unextended services die
    let dead = env.sweep(601);
    rows.push(format!(
        "soft-state sweep after 601 s reaped {} services",
        dead.len()
    ));
    emit(
        "F2",
        "OGSA steering architecture: registry -> bind -> steer sim + vis",
        rows,
    )
}

fn parking_lot_mutex<T>(v: T) -> parking_lot::Mutex<T> {
    parking_lot::Mutex::new(v)
}

/// F3 — PEPC shipped through VISIT: frames, bytes, beam steering effect.
pub fn exp_f3_pepc_visit() -> ExpResult {
    const TAG_SNAP: u32 = 1;
    const TAG_BEAM: u32 = 2;
    let (sim_link, vis_link) = MemLink::pair();
    let pw = Password::Open;
    let server = std::thread::spawn(move || {
        let mut s =
            visit::VisServer::accept(vis_link, &Password::Open, 0, Duration::from_secs(2)).unwrap();
        s.queue_param(TAG_BEAM, VisitValue::F64(vec![2.0, 0.0, 0.0, 1.0]));
        s.serve_until_idle(Duration::from_millis(60), 5);
        s.stats()
    });
    let mut client = SteeringClient::connect(sim_link, &pw, 0, Duration::from_secs(2)).unwrap();
    let mut sim = PepcSim::new(PepcConfig {
        n_target: 800,
        ..PepcConfig::small()
    });
    sim.inject_beam(50, 0.5);
    let mut rows = Vec::new();
    for round in 0..6 {
        sim.step_n(2);
        let snap = sim.snapshot();
        let flat: Vec<f32> = snap.positions.iter().flatten().copied().collect();
        client.send(TAG_SNAP, VisitValue::F32(flat)).unwrap();
        if round == 2 {
            if let Ok(Some(VisitValue::F64(v))) = client.request(TAG_BEAM) {
                let mut p = sim.params();
                p.beam_intensity = v[0];
                p.beam_dir = [v[1], v[2], v[3]];
                sim.set_params(p);
                rows.push("steer applied: beam on, direction +z".into());
            }
        }
        let c = sim.beam_centroid().unwrap();
        rows.push(format!(
            "step {:2}: snapshot {} B ({} particles, {} domains), beam centroid z = {:+.3}",
            sim.step_count(),
            snap.byte_size(),
            snap.positions.len(),
            snap.domains.len(),
            c[2]
        ));
    }
    let st = client.stats();
    client.close();
    drop(client);
    let sst = server.join().unwrap();
    rows.push(format!(
        "sim-side: {} sends / {} requests, {:?} inside VISIT; vis-side received {} frames / {} B",
        st.sends, st.requests, st.time_in_calls, sst.data_frames, sst.bytes_received
    ));
    emit(
        "F3",
        "PEPC online visualization via VISIT (particles + domain boxes + live beam steer)",
        rows,
    )
}

/// F4 — AG/COVISE collaborative session: skew + consistency vs site count.
pub fn exp_f4_ag_covise() -> ExpResult {
    let field = demo_field(20);
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16] {
        let names: Vec<String> = (0..n).map(|i| format!("site{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let f = field.clone();
        let mut session = CollabSession::new(
            &refs,
            SyncMode::ParamSync,
            move |ctl, host| standard_pipeline(ctl, host, f.clone(), 64),
            |i| {
                if i % 3 == 2 {
                    Link::transatlantic()
                } else {
                    Link::gwin()
                }
            },
        );
        session.warm_up().unwrap();
        let r = session.change_param(ModuleId(1), "isovalue", 0.5).unwrap();
        rows.push(format!(
            "{n:2} sites: skew {} | {} B sync traffic | consistent = {}",
            r.skew, r.bytes_sent, r.consistent
        ));
    }
    emit(
        "F4",
        "collaborative VR session: frame divergence vs participating sites (param-sync)",
        rows,
    )
}

fn demo_field(n: usize) -> viz::Field3 {
    let c = (n as f32 - 1.0) / 2.0;
    viz::Field3::from_fn(n, n, n, |x, y, z| {
        (n as f32 / 3.0)
            - ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt()
    })
}

fn standard_pipeline(
    ctl: &mut Controller,
    host: usize,
    field: viz::Field3,
    res: usize,
) -> ModuleId {
    let read = ctl.add_module(host, Box::new(ReadField::new(field)));
    let iso = ctl.add_module(host, Box::new(IsoSurface::new()));
    let render = ctl.add_module(host, Box::new(Renderer::new(res)));
    ctl.connect(read, "field", iso, "field").unwrap();
    ctl.connect(iso, "mesh", render, "mesh").unwrap();
    render
}

/// E42 — rendering feedback loop: remote round trip vs local redraw.
pub fn exp_e42_render_loop() -> ExpResult {
    let field = demo_field(24);
    let mesh = mc::isosurface_smooth(&field, 0.0);
    // measure one local redraw (wall)
    let render_once = || {
        let mut r = Rasterizer::new(512, 512);
        r.clear([0, 0, 0, 255]);
        let cam = Camera::look_at(Vec3::new(30.0, 30.0, -28.0), Vec3::new(11.5, 11.5, 11.5));
        r.draw_mesh(&cam, &mesh, [200, 90, 60, 255]);
        r.into_framebuffer()
    };
    let t0 = Instant::now();
    let fb = render_once();
    let local_wall = t0.elapsed();
    let mut codec = DeltaRleCodec::new();
    let t0 = Instant::now();
    let frame = codec.encode(&fb);
    let encode_wall = t0.elapsed();
    let mut rows = Vec::new();
    rows.push(format!(
        "local scene-graph redraw: {local_wall:?} ({:.0} fps) — meets VR budget = {}",
        1.0 / local_wall.as_secs_f64(),
        local_wall.as_secs_f64() < 0.1
    ));
    for (name, lat_ms) in [
        ("lan", 1u64),
        ("national", 5),
        ("continental", 18),
        ("transatlantic", 75),
    ] {
        let net_cost = SimTime::from_millis(2 * lat_ms)
            + Link::builder()
                .bandwidth_mbit(100)
                .build()
                .transfer_time(frame.wire_size());
        let total = net_cost.as_secs_f64() + local_wall.as_secs_f64() + encode_wall.as_secs_f64();
        let vr_ok = total < 0.1;
        let desktop_ok = total < 0.333;
        rows.push(format!(
            "remote render over {name} ({lat_ms} ms): {:.1} ms/update ({:.1} fps) — VR {} | desktop {}",
            total * 1e3,
            1.0 / total,
            if vr_ok { "OK" } else { "BUST" },
            if desktop_ok { "OK" } else { "BUST" },
        ));
    }
    rows.push(format!(
        "budgets (paper §4.2): VR <= {} , desktop <= {}",
        LoopBudget::VrRender.budget(),
        LoopBudget::DesktopRender.budget()
    ));
    emit(
        "E42",
        "rendering feedback loop: viewer moves -> scene redrawn",
        rows,
    )
}

/// E43 — post-processing loop: cutting-plane change, local vs remote.
pub fn exp_e43_postproc_loop() -> ExpResult {
    let mut rows = Vec::new();
    for n in [16usize, 32, 48] {
        let field = demo_field(n);
        let (mut ctl, mut rb, _read, render) = {
            let mut rb = covise::RequestBroker::new();
            let host = rb.add_host("local", covise::broker::HostArch::Little);
            let mut ctl = Controller::new();
            let read = ctl.add_module(host, Box::new(ReadField::new(field.clone())));
            let cut = ctl.add_module(host, Box::new(CutPlane::new()));
            let iso = ctl.add_module(host, Box::new(IsoSurface::new()));
            let render = ctl.add_module(host, Box::new(Renderer::new(128)));
            ctl.connect(read, "field", cut, "field").unwrap();
            ctl.connect(read, "field", iso, "field").unwrap();
            ctl.connect(iso, "mesh", render, "mesh").unwrap();
            (ctl, rb, read, render)
        };
        ctl.execute(&mut rb).unwrap();
        let t0 = Instant::now();
        ctl.set_param(ModuleId(1), "z_fraction", 0.8);
        ctl.execute(&mut rb).unwrap();
        let local = t0.elapsed();
        let img = ctl.image(&rb, render).unwrap();
        let mut codec = DeltaRleCodec::new();
        let frame = codec.encode(&img);
        let remote_ship = Link::transatlantic().nominal_arrival(SimTime::ZERO, frame.wire_size());
        rows.push(format!(
            "{n:2}^3 field: local recompute {:.1} ms + 32 B sync | remote content ship {} B -> {} | budget 5 s: OK",
            local.as_secs_f64() * 1e3, frame.wire_size(), remote_ship
        ));
    }
    emit(
        "E43",
        "post-processing loop: cutting-plane parameter -> updated scene",
        rows,
    )
}

/// E44 — simulation feedback loop: steer -> visible change, with budget.
pub fn exp_e44_sim_loop() -> ExpResult {
    let mut sim = TwoFluidLbm::new(LbmConfig {
        nx: 16,
        ny: 16,
        nz: 16,
        ..Default::default()
    });
    sim.step_n(30); // mixed steady state
    let v0 = sim.demix_metric();
    let t0 = Instant::now();
    sim.set_miscibility(0.0);
    let mut steps = 0;
    while sim.demix_metric() < v0 * 10.0 && steps < 2000 {
        sim.step_n(10);
        steps += 10;
    }
    let wall = t0.elapsed();
    let mut rows = Vec::new();
    rows.push(format!(
        "steer applied -> structures visible (10x variance) after {steps} steps, {wall:?} wall"
    ));
    rows.push(format!(
        "within the 60 s budget of §4.4: {}",
        wall.as_secs_f64() < 60.0
    ));
    rows.push(
        "with intermediate samples every few steps the perceived latency is one sample interval (§4.4 tolerance doubles)".into(),
    );
    emit(
        "E44",
        "simulation feedback loop: miscibility steer -> observable demixing",
        rows,
    )
}

/// EV1 — VISIT's minimal-load guarantee under responsive/slow/dead servers.
pub fn exp_ev1_visit_overhead() -> ExpResult {
    let run = |server_kind: &str| -> (Duration, Duration) {
        const TAG: u32 = 1;
        let (sim_link, vis_link) = MemLink::pair();
        let kind = server_kind.to_string();
        let server = std::thread::spawn(move || match kind.as_str() {
            "responsive" => {
                let mut s =
                    visit::VisServer::accept(vis_link, &Password::Open, 0, Duration::from_secs(2))
                        .unwrap();
                s.serve_until_idle(Duration::from_millis(40), 8);
            }
            "dead-after-accept" => {
                let mut s =
                    visit::VisServer::accept(vis_link, &Password::Open, 0, Duration::from_secs(2))
                        .unwrap();
                // accept then vanish: never dispatch again
                let _ = s.link_mut();
                std::thread::sleep(Duration::from_millis(300));
            }
            _ => unreachable!(),
        });
        let mut client =
            SteeringClient::connect(sim_link, &Password::Open, 0, Duration::from_millis(20))
                .unwrap();
        let mut sim = TwoFluidLbm::new(LbmConfig {
            nx: 10,
            ny: 10,
            nz: 10,
            threads: 2,
            ..Default::default()
        });
        let t0 = Instant::now();
        for _ in 0..10 {
            sim.step();
            let phi = sim.order_parameter();
            let _ = client.send(TAG, VisitValue::F32(phi.data().to_vec()));
            let _ = client.request(TAG); // may time out: bounded by 20 ms
        }
        let total = t0.elapsed();
        let in_calls = client.stats().time_in_calls;
        client.close();
        drop(client);
        let _ = server.join();
        (total, in_calls)
    };
    let mut rows = Vec::new();
    let (base, _) = {
        // baseline: no visualization attached at all
        let mut sim = TwoFluidLbm::new(LbmConfig {
            nx: 10,
            ny: 10,
            nz: 10,
            threads: 2,
            ..Default::default()
        });
        let t0 = Instant::now();
        for _ in 0..10 {
            sim.step();
            let _ = sim.order_parameter();
        }
        (t0.elapsed(), Duration::ZERO)
    };
    rows.push(format!(
        "baseline (no steering attached): {base:?} for 10 steps"
    ));
    for kind in ["responsive", "dead-after-accept"] {
        let (total, in_calls) = run(kind);
        rows.push(format!(
            "{kind}: {total:?} total, {in_calls:?} inside VISIT calls, overhead bounded by 10 x 20 ms timeout = {}",
            total < base + Duration::from_millis(10 * 20 + 150)
        ));
    }
    emit(
        "EV1",
        "VISIT design goal: a slow or dead visualization cannot stall the simulation",
        rows,
    )
}

/// EV2 — vbroker fan-out cost vs viewer count.
pub fn exp_ev2_vbroker() -> ExpResult {
    let mut rows = Vec::new();
    for n in [1usize, 4, 16, 32] {
        let (mut sim_side, broker_sim) = MemLink::pair();
        let mut broker = VBroker::new(broker_sim);
        let mut viewer_links = Vec::new();
        for _ in 0..n {
            let (v, b) = MemLink::pair();
            broker.attach(b);
            viewer_links.push(v);
        }
        let payload = VisitValue::Bytes(vec![0u8; 100_000]);
        let frame = Frame::with_value(MsgKind::Data, 1, visit::Endianness::native(), payload);
        let encoded = frame.encode();
        let t0 = Instant::now();
        for _ in 0..20 {
            sim_side.send(&encoded).unwrap();
            broker
                .pump(Duration::from_millis(50), Duration::from_millis(10))
                .unwrap();
        }
        let wall = t0.elapsed();
        let st = broker.stats();
        rows.push(format!(
            "{n:2} viewers: 20 x 100 KB -> {} B in, {} B out ({}x amplification), {wall:?} broker wall",
            st.bytes_in, st.bytes_out, st.bytes_out / st.bytes_in.max(1)
        ));
    }
    emit(
        "EV2",
        "vbroker multiplexer: broadcast cost scales with viewers; master alone steers",
        rows,
    )
}

/// EV3 — proxy polling emulation vs direct VISIT: steering latency vs
/// poll interval.
pub fn exp_ev3_proxy() -> ExpResult {
    // direct: one WAN hop; proxy: expected wait of poll/2 + gateway hop
    let hop = Link::gwin().latency;
    let mut rows = Vec::new();
    rows.push(format!(
        "direct VISIT connection: steering latency = {hop} (one G-WiN hop)"
    ));
    for poll_ms in [1u64, 5, 20, 100] {
        let expected =
            SimTime::from_nanos(SimTime::from_millis(poll_ms).as_nanos() / 2) + hop + hop;
        rows.push(format!(
            "proxy pair, poll every {poll_ms:3} ms: expected steering latency = {expected} (poll/2 + 2 hops through the single-port gateway)"
        ));
    }
    rows.push("trade-off (paper §3.3): the polling plugin buys firewall traversal + UNICORE auth for one poll interval of latency".into());
    emit(
        "EV3",
        "VISIT-UNICORE proxy pair: polling emulation latency vs poll interval",
        rows,
    )
}

/// EP1 — PEPC O(N log N) vs direct O(N²).
pub fn exp_ep1_pepc_scaling() -> ExpResult {
    use rand::{Rng, SeedableRng};
    let mut rows = Vec::new();
    let mut crossover_seen = false;
    for n in [256usize, 512, 1024, 2048, 4096, 8192] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let particles: Vec<pepc::Particle> = (0..n)
            .map(|i| {
                pepc::Particle::at(
                    [
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ],
                    if i % 2 == 0 { 0.1 } else { -0.1 },
                    i as u32,
                )
            })
            .collect();
        let t0 = Instant::now();
        let tree = Octree::build(&particles, TreeConfig::default());
        let _tf = tree.forces(&particles);
        let tree_time = t0.elapsed();
        let t0 = Instant::now();
        let _df = direct_forces(&particles, 0.05);
        let direct_time = t0.elapsed();
        let winner = if tree_time < direct_time {
            "tree"
        } else {
            "direct"
        };
        if winner == "tree" {
            crossover_seen = true;
        }
        rows.push(format!(
            "N={n:5}: tree {tree_time:?} ({} interactions) | direct {direct_time:?} ({} pairs) | winner: {winner} ({:.1}x)",
            tree.last_interactions(),
            n * (n - 1),
            direct_time.as_secs_f64() / tree_time.as_secs_f64().max(1e-9)
        ));
    }
    rows.push(format!("tree wins beyond the crossover: {crossover_seen}"));
    emit(
        "EP1",
        "PEPC hierarchical tree O(N log N) vs direct O(N^2) force summation",
        rows,
    )
}

/// EC1 — collaboration traffic: geometry vs pixels vs parameters.
pub fn exp_ec1_collab_traffic() -> ExpResult {
    let mut rows = Vec::new();
    let wan = Link::transatlantic();
    for n in [16usize, 24, 32, 48] {
        let field = demo_field(n);
        let mesh = mc::isosurface_smooth(&field, 0.0);
        let (mut ctl, mut rb, _read, render) = sphere_pipeline(field, 512);
        ctl.execute(&mut rb).unwrap();
        let img = ctl.image(&rb, render).unwrap();
        let mut codec = DeltaRleCodec::new();
        let frame = codec.encode(&img);
        let geom_bytes = mesh.byte_size();
        let pixel_bytes = frame.wire_size();
        let param_bytes = 32usize;
        let fps = |bytes: usize| 1.0 / wan.nominal_arrival(SimTime::ZERO, bytes).as_secs_f64();
        rows.push(format!(
            "{n:2}^3 / {:6} tris: geometry {geom_bytes:8} B ({:5.1} fps) | pixels {pixel_bytes:7} B ({:5.1} fps) | params {param_bytes} B ({:5.1} fps)",
            mesh.tri_count(), fps(geom_bytes), fps(pixel_bytes), fps(param_bytes)
        ));
    }
    rows.push("shape check: geometry grows with scene; pixels ~constant per resolution; params constant (the §4.6 claim)".into());
    emit(
        "EC1",
        "collaboration traffic per update over a 45 Mbit transatlantic link",
        rows,
    )
}

/// EU1 — UNICORE single-port gateway under concurrent clients.
pub fn exp_eu1_unicore() -> ExpResult {
    use unicore::{Ajo, CertAuthority, Gateway, Njs, Task, TrustStore, Tsi, UnicoreClient};
    let ca = CertAuthority::new("CA", 1);
    let mut trust = TrustStore::new();
    trust.trust(&ca);
    let mut gw = Gateway::new("gw", trust);
    gw.add_vsite(Njs::new("csar", Tsi::with_builtins()));
    let gw = std::sync::Arc::new(parking_lot_mutex(gw));
    let mut rows = Vec::new();
    for clients in [1usize, 8, 32, 64] {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let gw = gw.clone();
                let (cert, key) = ca.issue(&format!("CN=user{c}"));
                std::thread::spawn(move || {
                    let client = UnicoreClient::new(cert, key);
                    for j in 0..10 {
                        let mut ajo = Ajo::new(&format!("job-{c}-{j}"), "csar");
                        let w = ajo.add_task(
                            Task::Execute {
                                command: "write".into(),
                                args: vec!["out".into(), "x".into()],
                            },
                            &[],
                        );
                        ajo.add_task(Task::StageOut { path: "out".into() }, &[w]);
                        let mut g = gw.lock();
                        let id = client.consign(&mut g, ajo).unwrap();
                        client.run_queued(&mut g, "csar").unwrap();
                        let _ = client.fetch(&mut g, "csar", id).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let wall = t0.elapsed();
        let tx = gw.lock().stats().transactions;
        rows.push(format!(
            "{clients:2} concurrent clients x 10 jobs: {wall:?} ({:.0} transactions/s, {tx} total so far)",
            (clients as f64 * 30.0) / wall.as_secs_f64()
        ));
    }
    emit(
        "EU1",
        "UNICORE job path through one authenticated gateway port",
        rows,
    )
}

/// EM1 — mid-session migration: frame gap vs §4.4 budget.
pub fn exp_em1_migration() -> ExpResult {
    let (net, ids) = NetModel::sc2003();
    let migrator = Migrator::new(&net);
    let mut rows = Vec::new();
    for (from, to) in [
        ("london", "manchester"),
        ("manchester", "juelich"),
        ("juelich", "phoenix"),
    ] {
        let sim = TwoFluidLbm::new(LbmConfig::default()); // 32^3
        let (_, report) = migrator.migrate(sim, ids[from], ids[to]);
        rows.push(format!(
            "{from} -> {to}: checkpoint {} MB, frame gap {} (within 60 s budget: {})",
            report.checkpoint_bytes / 1_000_000,
            report.frame_gap,
            report.frame_gap < SimTime::from_secs(60)
        ));
    }
    rows.push("clients keep their connections; only the sample stream pauses for the gap".into());
    emit(
        "EM1",
        "mid-session computation migration (the §2.4 capability)",
        rows,
    )
}

/// E50 — soak the scenario engine: sweep participant count × loss rate
/// through the same deterministic harness the tier-1 matrix uses, with
/// churn and a mid-run steer in every cell. Every row ends with the run's
/// report digest, so a soak regression is visible as a digest change.
pub fn exp_e50_soak() -> ExpResult {
    // every cell of the sweep reuses one shared worker pool
    let pool = gridsteer_exec::global();
    let mut rows = Vec::new();
    for &n in &[2usize, 4, 8] {
        for &loss_ppm in &[0u32, 50_000, 200_000] {
            let name = format!("e50-n{n}-loss{loss_ppm}");
            let mut s = Scenario::named(&name)
                .seed(0xE50 + n as u64 + loss_ppm as u64)
                .lbm(LbmConfig::small())
                .pool(pool.clone())
                .duration(SimTime::from_secs(3));
            for i in 0..n {
                let link = match i % 3 {
                    0 => Link::uk_janet(),
                    1 => Link::gwin(),
                    _ => Link::transatlantic(),
                };
                let pname = format!("p{i}");
                s = s.participant(&pname, link);
                if loss_ppm > 0 {
                    s = s.loss_at(SimTime::ZERO, &pname, loss_ppm);
                }
            }
            // every cell exercises churn + steering, not just fan-out
            s = s
                .join_at(SimTime::from_millis(900), "late", Link::gwin())
                .steer_at(SimTime::from_millis(1200), "p0", "miscibility", 0.3)
                .leave_at(SimTime::from_millis(1800), "late");
            let r = s.run();
            rows.push(format!(
                "n={n} loss={loss_ppm}ppm: {} broadcasts, {} delivered, {} dropped, p50 {} p99 {} skew {} budget={} digest={}",
                r.broadcasts,
                r.total_deliveries(),
                r.total_drops(),
                r.p50,
                r.p99,
                r.max_skew,
                r.within_budget,
                r.digest()
            ));
        }
    }
    emit(
        "E50",
        "scenario-engine soak: participants x loss rate, deterministic digests",
        rows,
    )
}

/// BUS — steering-bus throughput: batched vs one-at-a-time command
/// staging over every transport adapter. One row per (transport, mode);
/// each row carries the commands-per-second the adapter sustained
/// through its full middleware encode/decode path plus the hub commit.
/// (Rows embed wall-clock rates, so this experiment's digest legitimately
/// changes run to run; the per-transport applied counts are asserted
/// deterministic in the unit tests.)
pub fn exp_bus() -> ExpResult {
    const CMDS: usize = 2000;
    const BATCH: usize = 32;
    let mut rows = Vec::new();
    for transport in Transport::ALL {
        for (mode, batch_size) in [("single", 1), ("batched", BATCH)] {
            let hub = SteerHub::new(vec![BusParamSpec::f64_clamped("gain", 0.0, 1.0, 0.5)]);
            let mut ep = transport.attach(&hub, "bench");
            let t0 = Instant::now();
            let mut applied = 0u64;
            let mut sent = 0usize;
            while sent < CMDS {
                let n = batch_size.min(CMDS - sent);
                let batch: Vec<SteerCommand> = (0..n)
                    .map(|i| SteerCommand::f64("gain", ((sent + i) % 1000) as f64 / 1000.0))
                    .collect();
                sent += n;
                ep.set_batch(batch).expect("bench batch stages");
                applied += hub.commit().applied;
            }
            let wall = t0.elapsed();
            let rate = CMDS as f64 / wall.as_secs_f64();
            rows.push(format!(
                "transport={} mode={mode} cmds={CMDS} applied={applied} wall={:.2}ms rate={:.0}cmd/s",
                transport.label(),
                wall.as_secs_f64() * 1e3,
                rate
            ));
        }
    }
    emit(
        "bus",
        "steering-bus throughput: batched vs one-at-a-time commands per transport",
        rows,
    )
}

/// MONITOR — monitor-bus fan-out throughput: batched (one transport
/// envelope per step-boundary chunk) vs per-sample (one envelope per
/// frame) delivery, swept over every transport adapter and subscriber
/// count. Each row carries both sustained frame rates plus their ratio —
/// the number that justifies the hub's batched `publish_batch` path.
/// (Rows embed wall-clock rates, so this experiment's digest legitimately
/// changes run to run; the delivered counts are asserted deterministic in
/// the unit tests.)
pub fn exp_monitor_fanout() -> ExpResult {
    use gridsteer_bus::{MonitorCaps, MonitorHub, MonitorPayload};
    const FRAMES: usize = 1200;
    const BATCH: usize = 32;
    // a 4x4 field slice: the smallest payload every transport carries
    // (COVISE's data plane is grids-only, so scalars would never reach it)
    let payloads = |n: usize| -> Vec<MonitorPayload> {
        (0..n)
            .map(|i| {
                let base = (i % 97) as f32;
                MonitorPayload::grid2("phi_mid", 4, 4, (0..16).map(|j| base + j as f32).collect())
            })
            .collect()
    };
    let build_hub = |transport: Transport, subs: usize| -> MonitorHub {
        let hub = MonitorHub::new();
        for s in 0..subs {
            hub.attach_endpoint(
                &format!("v{s}"),
                transport.attach_monitor(&format!("v{s}")),
                &MonitorCaps::full("bench-viewer", BATCH),
            );
        }
        hub
    };
    let drain = |hub: &MonitorHub, subs: usize| -> u64 {
        (0..subs)
            .map(|s| hub.recv(&format!("v{s}")).len() as u64)
            .sum()
    };
    // Per-sample mode is the full consumer loop at sample granularity:
    // publish one frame, every viewer polls. Batched mode does the same
    // work in step-boundary chunks: one envelope (and one poll) per
    // BATCH frames. The delta is the per-frame envelope cost each
    // middleware charges — job consignment, service invocation, wire
    // begin/end frames, queue handoff.
    let run_mode = |transport: Transport, subs: usize, batch: usize| -> (Duration, u64) {
        let hub = build_hub(transport, subs);
        let mut delivered = 0u64;
        let mut queue = payloads(FRAMES);
        let t0 = Instant::now();
        while !queue.is_empty() {
            let chunk: Vec<MonitorPayload> = queue.drain(..batch.min(queue.len())).collect();
            if chunk.len() == 1 {
                let [p] = <[MonitorPayload; 1]>::try_from(chunk).expect("len checked");
                hub.publish(0, p);
            } else {
                hub.publish_batch(0, chunk);
            }
            delivered += drain(&hub, subs);
        }
        (t0.elapsed(), delivered)
    };
    // best-of-N walls: the fast transports finish a whole pass in ~100µs,
    // where one scheduler blip would otherwise swamp the comparison
    let best_of = |transport: Transport, subs: usize, batch: usize| -> (Duration, u64) {
        (0..3)
            .map(|_| run_mode(transport, subs, batch))
            .min_by_key(|(wall, _)| *wall)
            .expect("nonempty")
    };
    let mut rows = Vec::new();
    for transport in Transport::ALL {
        for &subs in &[1usize, 4, 16] {
            // warm-up pass (allocators, caches) before either timing
            let _ = run_mode(transport, subs, BATCH);
            let (single_wall, single_recv) = best_of(transport, subs, 1);
            let (batched_wall, batched_recv) = best_of(transport, subs, BATCH);
            assert_eq!(
                single_recv, batched_recv,
                "both modes must deliver the same frames"
            );
            let rate = |wall: Duration| FRAMES as f64 * subs as f64 / wall.as_secs_f64();
            let (single_rate, batched_rate) = (rate(single_wall), rate(batched_wall));
            rows.push(format!(
                "transport={} subs={subs} frames={FRAMES} delivered={batched_recv} \
                 per_sample={single_rate:.0}fr/s batched={batched_rate:.0}fr/s \
                 speedup={:.2}x",
                transport.label(),
                batched_rate / single_rate,
            ));
        }
    }
    emit(
        "monitor",
        "monitor-bus fan-out: batched vs per-sample delivery per transport x subscribers",
        rows,
    )
}

/// FANOUT — hierarchical relay fan-out scaling (ROADMAP fan-out item):
/// origin publish cost vs subscriber count, a flat hub vs a 4-region x
/// 8-edge relay tree. The flat topology attaches one real sink per
/// subscriber, tractable to 10k; the tree's leaf tier is one aggregate
/// sink per edge standing in for `n/32` subscribers, which makes the 1M
/// row measurable — and the origin's own cost is 4 region envelopes per
/// step at any width, which is the architectural point. A loopback probe
/// rides edge 0; its frame digest must match the flat probe
/// byte-for-byte (relays preserve origin sequence numbers), and the
/// `digest=`/`delivered=` cells are the deterministic columns CI
/// compares across `EXEC_THREADS`. (Walls are wall-clock; those cells
/// legitimately drift run to run.)
pub fn exp_fanout_scale() -> ExpResult {
    use gridsteer_bus::{
        LoopbackMonitor, MonitorCaps, MonitorEndpoint, MonitorError, MonitorFrame, MonitorHub,
        MonitorPayload, RelayHub, RelayPolicy,
    };
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const STEPS: u64 = 64;
    const FRAMES_PER_STEP: usize = 4;
    const REGIONS: usize = 4;
    const EDGES_PER_REGION: usize = 8;

    /// A leaf sink standing in for `weight` simulated subscribers: it
    /// counts what arrives and discards the frames.
    struct CountingSink {
        caps: MonitorCaps,
        weight: u64,
        counter: Arc<AtomicU64>,
    }
    impl MonitorEndpoint for CountingSink {
        fn transport(&self) -> &'static str {
            "sim"
        }
        fn negotiate(&mut self, viewer: &MonitorCaps) -> MonitorCaps {
            self.caps = self.caps.intersect(viewer);
            self.caps.clone()
        }
        fn deliver(&mut self, frames: &[MonitorFrame]) -> Result<usize, MonitorError> {
            self.counter
                .fetch_add(frames.len() as u64 * self.weight, Ordering::Relaxed);
            Ok(frames.len())
        }
        fn recv(&mut self) -> Vec<MonitorFrame<'static>> {
            Vec::new()
        }
    }

    let caps = || MonitorCaps::full("sim-viewer", 64);
    let sink = |weight: u64, counter: &Arc<AtomicU64>| -> Box<dyn MonitorEndpoint> {
        Box::new(CountingSink {
            caps: caps(),
            weight,
            counter: counter.clone(),
        })
    };
    let payloads = |step: u64| -> Vec<MonitorPayload> {
        (0..FRAMES_PER_STEP)
            .map(|i| {
                let base = (step * FRAMES_PER_STEP as u64 + i as u64) as f32;
                MonitorPayload::grid2("phi_mid", 4, 4, (0..16).map(|j| base + j as f32).collect())
            })
            .collect()
    };
    let fold =
        |frames: &[MonitorFrame]| -> u64 { frames.iter().fold(FNV_OFFSET, |h, f| f.fold_fnv(h)) };

    // flat baseline: every subscriber is a direct child of the origin,
    // so one publish pays n envelopes
    let flat_pass = |n: u64| -> (Duration, u64, u64) {
        let hub = MonitorHub::new();
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..n {
            hub.attach_endpoint(&format!("v{i}"), sink(1, &counter), &caps());
        }
        hub.attach_endpoint("probe", Box::new(LoopbackMonitor::new()), &caps());
        let t0 = Instant::now();
        for step in 0..STEPS {
            hub.publish_batch(step, payloads(step));
        }
        let wall = t0.elapsed();
        (
            wall,
            counter.load(Ordering::Relaxed),
            fold(&hub.recv("probe")),
        )
    };

    // relay tree: the origin fans to 4 regions, each region to 8 edges,
    // and the leaf population hangs off the edges
    let relay_pass = |n: u64| -> (Duration, Duration, u64, u64) {
        let origin = MonitorHub::new();
        let counter = Arc::new(AtomicU64::new(0));
        let mut regions = Vec::new();
        let mut edges = Vec::new();
        for r in 0..REGIONS {
            let region = RelayHub::new(RelayPolicy::default());
            region.attach_to(&origin, &format!("region-{r}"));
            for e in 0..EDGES_PER_REGION {
                let edge = RelayHub::new(RelayPolicy::default());
                edge.attach_under(&region, &format!("edge-{r}-{e}"));
                edges.push(edge);
            }
            regions.push(region);
        }
        let leaves = (REGIONS * EDGES_PER_REGION) as u64;
        for (i, edge) in edges.iter().enumerate() {
            let share = n / leaves + u64::from((i as u64) < n % leaves);
            if share > 0 {
                edge.attach_child(&format!("leaf-{i}"), sink(share, &counter), &caps());
            }
        }
        edges[0].attach_child("probe", Box::new(LoopbackMonitor::new()), &caps());
        let t0 = Instant::now();
        for step in 0..STEPS {
            origin.publish_batch(step, payloads(step));
        }
        let origin_wall = t0.elapsed();
        assert_eq!(
            origin.subscribers(),
            REGIONS,
            "origin fan-out is structural: regions only, at any leaf width"
        );
        let t1 = Instant::now();
        for region in &regions {
            region.pump();
        }
        for edge in &edges {
            edge.pump();
        }
        let pump_wall = t1.elapsed();
        (
            origin_wall,
            pump_wall,
            counter.load(Ordering::Relaxed),
            fold(&edges[0].recv_child("probe")),
        )
    };

    let mut rows = Vec::new();
    let mut probe_digest: Option<u64> = None;
    for &n in &[1u64, 100, 10_000] {
        let _ = flat_pass(n); // warm-up (allocators, caches)
        let (wall, delivered, digest) = (0..3)
            .map(|_| flat_pass(n))
            .min_by_key(|(w, _, _)| *w)
            .expect("nonempty");
        assert_eq!(delivered, n * STEPS * FRAMES_PER_STEP as u64);
        let prev = *probe_digest.get_or_insert(digest);
        assert_eq!(prev, digest, "the probe stream is topology-independent");
        rows.push(format!(
            "topo=flat subs={n} steps={STEPS} delivered={delivered} \
             origin_pub={:.1}us/step digest={digest:016x}",
            wall.as_secs_f64() * 1e6 / STEPS as f64
        ));
    }
    for &n in &[1u64, 10_000, 1_000_000] {
        let _ = relay_pass(n); // warm-up
        let (origin_wall, pump_wall, delivered, digest) = (0..3)
            .map(|_| relay_pass(n))
            .min_by_key(|(w, ..)| *w)
            .expect("nonempty");
        assert_eq!(delivered, n * STEPS * FRAMES_PER_STEP as u64);
        assert_eq!(
            Some(digest),
            probe_digest,
            "bytes at the edge must equal bytes at the origin"
        );
        rows.push(format!(
            "topo=relay subs={n} regions={REGIONS} edges={} delivered={delivered} \
             origin_pub={:.1}us/step pump={:.1}us/step digest={digest:016x}",
            REGIONS * EDGES_PER_REGION,
            origin_wall.as_secs_f64() * 1e6 / STEPS as f64,
            pump_wall.as_secs_f64() * 1e6 / STEPS as f64
        ));
    }
    emit(
        "fanout",
        "relay-fabric fan-out: flat hub vs 4x8 relay tree, origin publish cost vs subscribers",
        rows,
    )
}

/// FUZZ — generative scenario soak: run the invariant oracle over a
/// window of generated seeds (`FUZZ_SEED_START`, default 0, and
/// `FUZZ_SEEDS`, default 500) and report pass/fail counts, a fold of the
/// per-seed report digests, and the generated action mix. Every row but
/// the final wall-clock rate row is deterministic for a fixed window, so
/// CI diffs the output between `GRIDSTEER_SIMD=0` and `=1` runs — the
/// cross-process half of the scalar-vs-SIMD digest invariant (the SIMD
/// switch is a process-wide `OnceLock`, so one process can't compare
/// both). `FUZZ_TIME_BUDGET_MS` (default 0 = unlimited) stops the sweep
/// early on slow machines; the cut is recorded in its own row so a
/// budget-stopped run is visibly not comparable.
pub fn exp_fuzz_soak() -> ExpResult {
    let env_u64 = |key: &str, default: u64| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(default)
    };
    let start = env_u64("FUZZ_SEED_START", 0);
    let count = env_u64("FUZZ_SEEDS", 500);
    let budget_ms = env_u64("FUZZ_TIME_BUDGET_MS", 0);
    let cfg = gridsteer_fuzz::FuzzConfig::default();
    let runner = gridsteer_fuzz::PoolRunner;

    let t0 = Instant::now();
    let mut pass = 0u64;
    let mut fail = 0u64;
    let mut digest_fold = FNV_OFFSET;
    let mut mix: std::collections::BTreeMap<&'static str, u64> = std::collections::BTreeMap::new();
    let mut failures: Vec<String> = Vec::new();
    let mut ran = 0u64;
    let mut cut = false;
    for seed in start..start + count {
        if budget_ms > 0 && t0.elapsed() >= Duration::from_millis(budget_ms) {
            cut = true;
            break;
        }
        let s = gridsteer_fuzz::generate(seed, &cfg);
        for (_, a) in s.actions() {
            *mix.entry(a.label()).or_insert(0) += 1;
        }
        let audit = gridsteer_fuzz::audit_with(&runner, &s);
        digest_fold = fnv1a64_with(digest_fold, audit.digest.as_bytes());
        if audit.violations.is_empty() {
            pass += 1;
        } else {
            fail += 1;
            if failures.len() < 5 {
                for v in &audit.violations {
                    failures.push(format!("seed {seed}: {v}"));
                }
            }
        }
        ran += 1;
    }

    let mut rows = vec![format!(
        "seeds {start}..{}: pass={pass} fail={fail} digest={digest_fold:016x}",
        start + ran
    )];
    rows.push(format!(
        "action mix: {}",
        mix.iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    ));
    rows.extend(failures);
    if cut {
        rows.push(format!(
            "time budget {budget_ms}ms cut the sweep after {ran} of {count} seeds"
        ));
    }
    let secs = t0.elapsed().as_secs_f64();
    rows.push(format!(
        "wall: {ran} scenarios in {:.0} ms ({:.1}/s)",
        secs * 1e3,
        ran as f64 / secs.max(1e-9)
    ));
    emit(
        "fuzz",
        "generative scenario soak: invariant oracle over a seeded window",
        rows,
    )
}

/// Every experiment in index order (driven by [`crate::cli::run_all`],
/// which times each entry and emits its `BENCH_*.json`).
pub const ALL: &[fn() -> ExpResult] = &[
    exp_f1_realitygrid,
    exp_f2_ogsa_service,
    exp_f3_pepc_visit,
    exp_f4_ag_covise,
    exp_e42_render_loop,
    exp_e43_postproc_loop,
    exp_e44_sim_loop,
    exp_ev1_visit_overhead,
    exp_ev2_vbroker,
    exp_ev3_proxy,
    exp_ep1_pepc_scaling,
    exp_ec1_collab_traffic,
    exp_eu1_unicore,
    exp_em1_migration,
    exp_e50_soak,
    exp_bus,
    exp_monitor_fanout,
    exp_fanout_scale,
    exp_fuzz_soak,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_throughput_covers_every_transport_and_mode() {
        let r = exp_bus();
        assert_eq!(r.rows.len(), Transport::ALL.len() * 2);
        for t in Transport::ALL {
            assert!(
                r.rows
                    .iter()
                    .any(|row| row.contains(&format!("transport={}", t.label()))),
                "missing transport {}",
                t.label()
            );
        }
        // every command must actually apply (clamped spec, in-bounds values)
        assert!(r.rows.iter().all(|row| row.contains("applied=2000")));
    }

    #[test]
    fn monitor_fanout_covers_every_transport_and_sub_count() {
        let r = exp_monitor_fanout();
        assert_eq!(r.rows.len(), Transport::ALL.len() * 3);
        for t in Transport::ALL {
            for subs in [1usize, 4, 16] {
                assert!(
                    r.rows
                        .iter()
                        .any(|row| row.contains(&format!("transport={} subs={subs} ", t.label()))),
                    "missing cell {} x {subs}",
                    t.label()
                );
            }
        }
        // delivery is deterministic: every subscriber gets every frame
        for row in &r.rows {
            let subs: u64 = row
                .split("subs=")
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(row.contains(&format!("delivered={}", 1200 * subs)), "{row}");
            assert!(row.contains("speedup="), "{row}");
        }
    }

    #[test]
    fn fanout_scale_is_flat_at_the_origin_and_byte_stable_at_the_edge() {
        let r = exp_fanout_scale();
        assert_eq!(r.rows.len(), 6, "3 flat widths + 3 relay widths");
        assert!(r
            .rows
            .iter()
            .take(3)
            .all(|row| row.starts_with("topo=flat")));
        assert!(r
            .rows
            .iter()
            .skip(3)
            .all(|row| row.contains("regions=4 edges=32")));
        // every digest cell carries the same 16-hex value: the stream is
        // byte-identical at the origin and two relay tiers down
        let digests: Vec<&str> = r
            .rows
            .iter()
            .map(|row| row.split("digest=").nth(1).unwrap())
            .collect();
        assert!(digests.windows(2).all(|w| w[0] == w[1]), "{digests:?}");
        // the simulated-subscriber math holds at the million-leaf row
        assert!(r
            .rows
            .iter()
            .any(|row| row.contains("subs=1000000 ") && row.contains("delivered=256000000")));
    }

    #[test]
    fn e50_soak_sweeps_every_cell() {
        let r = exp_e50_soak();
        assert_eq!(r.rows.len(), 9, "3 participant counts x 3 loss rates");
        assert!(r.rows.iter().all(|row| row.contains("digest=")));
        // lossless cells drop nothing
        assert!(r.rows[0].contains(" 0 dropped"));
    }

    #[test]
    fn e50_soak_is_deterministic() {
        let a = exp_e50_soak();
        let b = exp_e50_soak();
        assert_eq!(a.rows, b.rows, "soak rows must replay identically");
    }
}
