//! Entry-point plumbing shared by the `exp_*` binaries.
//!
//! Each binary dispatches into one experiment in [`crate::experiments`] and
//! exits nonzero if the experiment produced no rows — so a wired-but-dead
//! experiment fails loudly in CI instead of printing nothing and exiting 0.
//!
//! With `BENCH_JSON=1` (any value other than empty/`0`) every run
//! additionally writes a machine-readable `BENCH_<id>.json` (into
//! `BENCH_JSON_DIR`, default the working directory): the experiment's
//! wall time, its row cells with per-cell digests, and an overall digest.
//! For deterministic experiments the digests are stable fingerprints a
//! later PR can diff; rows embedding wall-clock timings change them run
//! to run (see [`ExpResult::digest`]).

use crate::experiments::ExpResult;
use serde::Serialize;
use std::process::ExitCode;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct JsonCell {
    /// The printed row (most rows embed their own timing measurements).
    row: String,
    /// FNV-1a 64 of the row text.
    digest: String,
}

#[derive(Serialize)]
struct JsonReport {
    id: String,
    /// Wall time of the whole experiment, in milliseconds.
    wall_ms: f64,
    /// FNV-1a 64 over all rows (same value as [`ExpResult::digest`]).
    digest: String,
    cells: Vec<JsonCell>,
}

/// True when `BENCH_JSON` is set to anything other than empty or `0`.
fn json_enabled() -> bool {
    std::env::var("BENCH_JSON").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Write `BENCH_<id>.json` if [`json_enabled`].
fn maybe_write_json(result: &ExpResult, wall: Duration) {
    if !json_enabled() {
        return;
    }
    let report = JsonReport {
        id: result.id.to_string(),
        wall_ms: wall.as_secs_f64() * 1e3,
        digest: format!("{:016x}", result.digest()),
        cells: result
            .rows
            .iter()
            .map(|r| JsonCell {
                row: r.clone(),
                digest: format!("{:016x}", crate::experiments::fnv1a64(r.as_bytes())),
            })
            .collect(),
    };
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", result.id));
    match serde_json::to_string(&report) {
        Ok(body) => {
            if let Err(e) = std::fs::write(&path, body + "\n") {
                eprintln!("[{}] BENCH json write failed: {e}", result.id);
            } else {
                eprintln!("[{}] wrote {}", result.id, path.display());
            }
        }
        Err(e) => eprintln!("[{}] BENCH json encode failed: {e}", result.id),
    }
}

/// Run one experiment and summarize it.
pub fn run(f: fn() -> ExpResult) -> ExitCode {
    let t0 = Instant::now();
    let result = f();
    let wall = t0.elapsed();
    eprintln!("[{}] {} rows", result.id, result.rows.len());
    maybe_write_json(&result, wall);
    if result.rows.is_empty() {
        eprintln!("[{}] FAILED: experiment emitted no data", result.id);
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Run every experiment in index order and summarize the batch.
pub fn run_all() -> ExitCode {
    let mut results = Vec::new();
    for f in crate::experiments::ALL {
        let t0 = Instant::now();
        let result = f();
        let wall = t0.elapsed();
        maybe_write_json(&result, wall);
        results.push(result);
    }
    let total: usize = results.iter().map(|r| r.rows.len()).sum();
    let empty: Vec<&str> = results
        .iter()
        .filter(|r| r.rows.is_empty())
        .map(|r| r.id)
        .collect();
    eprintln!("[all] {} experiments, {} rows", results.len(), total);
    if empty.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "[all] FAILED: experiments with no data: {}",
            empty.join(", ")
        );
        ExitCode::FAILURE
    }
}
