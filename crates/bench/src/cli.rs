//! Entry-point plumbing shared by the `exp_*` binaries.
//!
//! Each binary dispatches into one experiment in [`crate::experiments`] and
//! exits nonzero if the experiment produced no rows — so a wired-but-dead
//! experiment fails loudly in CI instead of printing nothing and exiting 0.

use crate::experiments::ExpResult;
use std::process::ExitCode;

/// Run one experiment and summarize it.
pub fn run(f: fn() -> ExpResult) -> ExitCode {
    let result = f();
    eprintln!("[{}] {} rows", result.id, result.rows.len());
    if result.rows.is_empty() {
        eprintln!("[{}] FAILED: experiment emitted no data", result.id);
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Run every experiment in index order and summarize the batch.
pub fn run_all() -> ExitCode {
    let results = crate::experiments::run_all();
    let total: usize = results.iter().map(|r| r.rows.len()).sum();
    let empty: Vec<&str> = results
        .iter()
        .filter(|r| r.rows.is_empty())
        .map(|r| r.id)
        .collect();
    eprintln!("[all] {} experiments, {} rows", results.len(), total);
    if empty.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "[all] FAILED: experiments with no data: {}",
            empty.join(", ")
        );
        ExitCode::FAILURE
    }
}
