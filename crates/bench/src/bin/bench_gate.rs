//! The perf-regression gate CI runs: compare fresh `BENCH_*.json`
//! snapshots against the committed baselines.
//!
//! Usage: `bench_gate <baseline_dir> <current_dir>`
//!
//! Exits non-zero when any cell's digest drifts from the baseline
//! (determinism break — byte-exact comparison) or its wall time regresses
//! more than 25% after normalizing out the global machine-speed ratio.

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(base), Some(cur)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_gate <baseline_dir> <current_dir>");
        std::process::exit(2);
    };
    let violations =
        gridsteer_bench::gate::compare(std::path::Path::new(&base), std::path::Path::new(&cur));
    if violations.is_empty() {
        println!(
            "bench_gate: all cells within {:.0}% of baseline, digests exact",
            (gridsteer_bench::gate::MAX_REGRESSION - 1.0) * 100.0
        );
        return;
    }
    eprintln!("bench_gate: {} violation(s):", violations.len());
    for v in &violations {
        eprintln!("  {v}");
    }
    std::process::exit(1);
}
