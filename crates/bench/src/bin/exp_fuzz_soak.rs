//! Experiment binary — see DESIGN.md §4 and EXPERIMENTS.md.
use std::process::ExitCode;

fn main() -> ExitCode {
    gridsteer_bench::cli::run(gridsteer_bench::exp_fuzz_soak)
}
