//! Experiment binary — monitor-bus fan-out throughput (`BENCH_monitor.json`).
use std::process::ExitCode;

fn main() -> ExitCode {
    gridsteer_bench::cli::run(gridsteer_bench::exp_monitor_fanout)
}
