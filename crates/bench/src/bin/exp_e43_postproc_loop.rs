//! Experiment binary — see DESIGN.md §4 and EXPERIMENTS.md.
fn main() {
    gridsteer_bench::exp_e43_postproc_loop();
}
