//! Experiment binary — steering-bus throughput (`BENCH_bus.json`).
use std::process::ExitCode;

fn main() -> ExitCode {
    gridsteer_bench::cli::run(gridsteer_bench::exp_bus)
}
