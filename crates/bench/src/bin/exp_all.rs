//! Run every experiment in index order (regenerates EXPERIMENTS.md data).
fn main() {
    gridsteer_bench::run_all();
}
