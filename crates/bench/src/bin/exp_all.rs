//! Run every experiment in index order (regenerates EXPERIMENTS.md data).
use std::process::ExitCode;

fn main() -> ExitCode {
    gridsteer_bench::cli::run_all()
}
