//! Run the five gated perf workloads and write `BENCH_{lbm,pool,monitor,
//! fanout,ckpt}.json` snapshots (per-cell wall time + timing-free result
//! digest) into `BENCH_JSON_DIR` (default: current directory).
//!
//! Committed baselines live under `baselines/`; `bench_gate` compares a
//! fresh run against them.

fn main() {
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let dir = std::path::PathBuf::from(dir);
    for report in gridsteer_bench::gate::snapshot_all() {
        for cell in &report.cells {
            println!(
                "{} {:<28} {:>10.1} us  digest {}",
                report.id, cell.cell, cell.wall_us, cell.digest
            );
        }
        if let Err(e) = gridsteer_bench::gate::write_report(&dir, &report) {
            eprintln!("bench_snap: cannot write BENCH_{}.json: {e}", report.id);
            std::process::exit(1);
        }
    }
    println!("bench_snap: wrote snapshots to {}", dir.display());
}
