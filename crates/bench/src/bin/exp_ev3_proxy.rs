//! Experiment binary — see DESIGN.md §4 and EXPERIMENTS.md.
fn main() {
    gridsteer_bench::exp_ev3_proxy();
}
