//! Checkpoint-codec experiment: run the gated `ckpt` workload (full
//! encode, delta encode, decode + restore over a demo-scale 32³ LBM
//! field) and write `BENCH_ckpt.json` into `BENCH_JSON_DIR` (default:
//! current directory).
//!
//! The committed baseline lives under `baselines/`; `bench_gate` compares
//! a fresh run against it alongside the other gated workloads.

fn main() {
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let dir = std::path::PathBuf::from(dir);
    let report = gridsteer_bench::gate::snap_ckpt();
    for cell in &report.cells {
        println!(
            "{} {:<28} {:>10.1} us  digest {}",
            report.id, cell.cell, cell.wall_us, cell.digest
        );
    }
    if let Err(e) = gridsteer_bench::gate::write_report(&dir, &report) {
        eprintln!("exp_ckpt: cannot write BENCH_ckpt.json: {e}");
        std::process::exit(1);
    }
    println!("exp_ckpt: wrote BENCH_ckpt.json to {}", dir.display());
}
