//! Experiment binary — relay-fabric fan-out scaling (`BENCH_fanout.json`).
use std::process::ExitCode;

fn main() -> ExitCode {
    gridsteer_bench::cli::run(gridsteer_bench::exp_fanout_scale)
}
