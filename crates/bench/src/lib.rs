//! # gridsteer-bench — the experiment harness
//!
//! One function per experiment in DESIGN.md §4. Each prints the rows the
//! paper's corresponding figure/claim implies and returns them as
//! machine-readable JSON for EXPERIMENTS.md. The paper is a showcase paper
//! with four figures and prose budgets rather than numeric tables; every
//! figure and every quantitative claim has an `exp_*` binary here.

pub mod cli;
pub mod experiments;
pub mod gate;

pub use experiments::*;
