//! The perf-regression gate: snapshot format, measured workloads, and the
//! baseline comparison CI enforces.
//!
//! The exp binaries' `BENCH_*.json` rows embed their own wall-clock
//! numbers, so their digests change run to run — useless for an exact
//! compare. The gate uses its own snapshot shape instead, keeping the two
//! concerns separate per cell:
//!
//! * `wall_us` — the timing, compared *ratiometrically* against the
//!   committed baseline. Raw ratios would gate on machine speed, so every
//!   cell's `current/baseline` ratio is normalized by the **global median
//!   ratio across all cells of all snapshots**: a uniformly slower CI
//!   runner shifts every ratio equally and normalizes out, while one
//!   regressed kernel stands out against the fleet. The threshold is
//!   [`MAX_REGRESSION`] (>25% per-cell normalized wall regression fails).
//! * `digest` — an FNV-1a 64 fingerprint of the workload's *results*
//!   (distribution bits, delivered-frame bytes), with no timing folded
//!   in. Compared byte-exactly: any drift is a determinism break, not a
//!   perf question, and fails the gate outright.
//!
//! [`snapshot_all`] runs the five gated workloads — LBM collide/stream
//! (the scalar×SIMD / 1×8-thread matrix, whose four digests must agree),
//! the exec-pool chunk kernel, the monitor publish path (owned vs
//! borrowed, same digest), hub fan-out over encoding subscribers, and the
//! checkpoint codec (full encode, delta encode, decode + restore).

use gridsteer_bus::{MonitorCaps, MonitorEndpoint, MonitorError, MonitorFrame, MonitorHub};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Maximum tolerated normalized per-cell wall ratio (1.25 = +25%).
pub const MAX_REGRESSION: f64 = 1.25;

/// One measured cell: a named workload configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GateCell {
    /// Cell name, stable across runs (e.g. `collide_t8_simd`).
    pub cell: String,
    /// Mean wall time per unit of work, microseconds.
    pub wall_us: f64,
    /// FNV-1a 64 of the workload's result bits — no timing folded in.
    pub digest: String,
}

/// One snapshot file (`BENCH_<id>.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GateReport {
    /// Snapshot id: `lbm`, `pool`, `monitor`, `fanout`, `ckpt`.
    pub id: String,
    /// Measured cells, in a fixed order.
    pub cells: Vec<GateCell>,
}

/// The five gated snapshot ids, in run order.
pub const GATE_IDS: [&str; 5] = ["lbm", "pool", "monitor", "fanout", "ckpt"];

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

fn hex(h: u64) -> String {
    format!("{h:016x}")
}

/// Write `BENCH_<id>.json` into `dir`.
pub fn write_report(dir: &std::path::Path, report: &GateReport) -> std::io::Result<()> {
    let path = dir.join(format!("BENCH_{}.json", report.id));
    let body = serde_json::to_string(report).expect("gate report serializes");
    std::fs::write(path, body + "\n")
}

/// Read `BENCH_<id>.json` from `dir`.
pub fn read_report(dir: &std::path::Path, id: &str) -> Result<GateReport, String> {
    let path = dir.join(format!("BENCH_{id}.json"));
    let body = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&body).map_err(|e| format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// workloads
// ---------------------------------------------------------------------------

/// LBM collide/stream over the {scalar, SIMD} × {1, 8 threads} matrix.
/// All four digests fold the full post-run distribution bits and must be
/// identical — the determinism contract extended to the SIMD axis.
pub fn snap_lbm() -> GateReport {
    const STEPS: usize = 12;
    let mut cells = Vec::new();
    for &threads in &[1usize, 8] {
        for &backend in &[lanes::Backend::Scalar, lanes::Backend::Simd] {
            let mut sim = lbm::TwoFluidLbm::new(lbm::LbmConfig {
                nx: 32,
                ny: 32,
                nz: 32,
                threads,
                ..Default::default()
            });
            sim.set_backend(backend);
            sim.step_n(2); // warm caches and the pool
            let t0 = Instant::now();
            sim.step_n(STEPS);
            let wall_us = t0.elapsed().as_secs_f64() * 1e6 / STEPS as f64;
            let ck = sim.checkpoint();
            let mut h = FNV_OFFSET;
            for v in ck.fa.iter().chain(ck.fb.iter()) {
                h = fold(h, &v.to_bits().to_le_bytes());
            }
            cells.push(GateCell {
                cell: format!("collide_stream_t{threads}_{}", backend.label()),
                wall_us,
                digest: hex(h),
            });
        }
    }
    let first = cells[0].digest.clone();
    assert!(
        cells.iter().all(|c| c.digest == first),
        "LBM digests diverged across the thread × backend matrix: {cells:?}"
    );
    GateReport {
        id: "lbm".into(),
        cells,
    }
}

/// The exec-pool deterministic chunk kernel at 8 workers.
pub fn snap_pool() -> GateReport {
    const N: usize = 1 << 16;
    const ROUNDS: usize = 40;
    let pool = gridsteer_exec::shared(8);
    let mut data: Vec<f64> = (0..N).map(|i| (i as f64).sin()).collect();
    // warm-up round
    pool.parallel_chunks(&mut data, 1024, |ci, slot| {
        for (k, v) in slot.iter_mut().enumerate() {
            *v = (*v * 1.000001 + (ci * 1024 + k) as f64 * 1e-9).sqrt();
        }
    });
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        pool.parallel_chunks(&mut data, 1024, |ci, slot| {
            for (k, v) in slot.iter_mut().enumerate() {
                *v = (*v * 1.000001 + (ci * 1024 + k) as f64 * 1e-9).sqrt();
            }
        });
    }
    let wall_us = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;
    let mut h = FNV_OFFSET;
    for v in &data {
        h = fold(h, &v.to_bits().to_le_bytes());
    }
    GateReport {
        id: "pool".into(),
        cells: vec![GateCell {
            cell: "chunks_t8".into(),
            wall_us,
            digest: hex(h),
        }],
    }
}

/// A subscriber that digests delivered frames in place, storing nothing —
/// the measured viewer for the monitor and fan-out snapshots.
struct FoldSink {
    caps: MonitorCaps,
    digest: u64,
}

impl FoldSink {
    fn new() -> FoldSink {
        FoldSink {
            caps: MonitorCaps::full("fold", 64),
            digest: FNV_OFFSET,
        }
    }
}

impl MonitorEndpoint for FoldSink {
    fn transport(&self) -> &'static str {
        "fold"
    }

    fn negotiate(&mut self, viewer: &MonitorCaps) -> MonitorCaps {
        self.caps = self.caps.intersect(viewer);
        self.caps.clone()
    }

    fn deliver(&mut self, frames: &[MonitorFrame]) -> Result<usize, MonitorError> {
        use gridsteer_bus::MonitorPayload;
        for f in frames {
            self.digest = fold(self.digest, &f.seq.to_le_bytes());
            match &f.payload {
                MonitorPayload::Scalar { value, .. } => {
                    self.digest = fold(self.digest, &value.to_bits().to_le_bytes());
                }
                MonitorPayload::Vec3 { value, .. } => {
                    for c in value {
                        self.digest = fold(self.digest, &c.to_bits().to_le_bytes());
                    }
                }
                MonitorPayload::Grid2 { data, .. } | MonitorPayload::Grid3 { data, .. } => {
                    for v in data.iter() {
                        self.digest = fold(self.digest, &v.to_bits().to_le_bytes());
                    }
                }
                MonitorPayload::Frame { data, .. } => {
                    self.digest = fold(self.digest, data);
                }
            }
        }
        Ok(frames.len())
    }

    fn recv(&mut self) -> Vec<MonitorFrame<'static>> {
        Vec::new()
    }
}

/// The monitor publish path, owned vs borrowed payload construction. The
/// two cells must produce the same delivered digest; the borrowed cell is
/// the zero-copy steady state.
pub fn snap_monitor() -> GateReport {
    use steer_core::{LbmMonitorAdapter, MonitorScratch};
    const PUBLISHES: usize = 60;
    let mut sim = lbm::TwoFluidLbm::new(lbm::LbmConfig {
        nx: 16,
        ny: 16,
        nz: 16,
        threads: 1,
        ..Default::default()
    });
    sim.step_n(2);
    let mut cells = Vec::new();
    for &borrowed in &[false, true] {
        let hub = MonitorHub::new();
        hub.attach_endpoint(
            "viewer",
            Box::new(FoldSink::new()),
            &MonitorCaps::full("viewer", 64),
        );
        let mut adapter = LbmMonitorAdapter::new();
        let mut scratch = MonitorScratch::default();
        // warm-up publish (scratch takes capacity, hub takes shape)
        if borrowed {
            adapter.publish_borrowed(&sim, &hub, &mut scratch);
        } else {
            adapter.publish(&sim, &hub);
        }
        let t0 = Instant::now();
        for _ in 0..PUBLISHES {
            if borrowed {
                adapter.publish_borrowed(&sim, &hub, &mut scratch);
            } else {
                adapter.publish(&sim, &hub);
            }
        }
        let wall_us = t0.elapsed().as_secs_f64() * 1e6 / PUBLISHES as f64;
        // fold the delivered-frame accounting, not the sink's internal
        // digest (seq numbers differ between runs of different lengths
        // only if the schedule drifted — which is exactly what to catch)
        let stats = hub.stats_of("viewer").expect("viewer attached");
        let mut h = FNV_OFFSET;
        h = fold(h, &stats.delivered.to_le_bytes());
        h = fold(h, &stats.errors.to_le_bytes());
        cells.push(GateCell {
            cell: if borrowed {
                "publish_borrowed".into()
            } else {
                "publish_owned".into()
            },
            wall_us,
            digest: hex(h),
        });
    }
    let first = cells[0].digest.clone();
    assert!(
        cells.iter().all(|c| c.digest == first),
        "owned and borrowed publish paths delivered different schedules: {cells:?}"
    );
    GateReport {
        id: "monitor".into(),
        cells,
    }
}

/// Hub fan-out to UNICORE subscribers, whose staged-file payloads force a
/// real frame encode — the workload the encode-once chunk cache serves.
/// The digest folds every subscriber's received frames' canonical bytes.
pub fn snap_fanout() -> GateReport {
    const SUBS: usize = 4;
    const PUBLISHES: usize = 30;
    let hub = MonitorHub::new();
    for s in 0..SUBS {
        hub.attach_endpoint(
            &format!("viewer{s}"),
            gridsteer_bus::Transport::Unicore.attach_monitor("snap"),
            &MonitorCaps::full("viewer", 64),
        );
    }
    let grid: Vec<f32> = (0..32 * 32).map(|i| (i as f32).cos()).collect();
    let publish = |step: u64| {
        hub.publish_batch(
            step,
            vec![
                gridsteer_bus::MonitorPayload::scalar("demix", 0.25 + step as f64),
                gridsteer_bus::MonitorPayload::grid2_borrowed("phi_mid", 32, 32, &grid),
            ],
        )
    };
    publish(0); // warm-up
    let t0 = Instant::now();
    for step in 1..=PUBLISHES as u64 {
        publish(step);
    }
    let wall_us = t0.elapsed().as_secs_f64() * 1e6 / PUBLISHES as f64;
    let mut h = FNV_OFFSET;
    for s in 0..SUBS {
        for frame in hub.recv(&format!("viewer{s}")) {
            h = fold(h, &frame.try_to_bytes().expect("canonical frame bytes"));
        }
    }
    GateReport {
        id: "fanout".into(),
        cells: vec![GateCell {
            cell: format!("unicore_subs{SUBS}_batched"),
            wall_us,
            digest: hex(h),
        }],
    }
}

/// The checkpoint codec over a demo-scale LBM field (32³): full-snapshot
/// encode, delta encode after one more step, and full decode + restore.
/// Digests fold the encoded blob bytes (full/delta) and the restored
/// field's distribution bits (restore) — all byte-stable for a fixed
/// field, so any drift is a codec determinism break.
pub fn snap_ckpt() -> GateReport {
    use gridsteer_ckpt::Snapshot;
    const ROUNDS: usize = 8;
    let mut sim = lbm::TwoFluidLbm::new(lbm::LbmConfig {
        nx: 32,
        ny: 32,
        nz: 32,
        threads: 1,
        ..Default::default()
    });
    sim.step_n(2);
    let mut base = Snapshot::new(0, 0);
    sim.save_sections(&mut base);
    sim.step_n(1);
    let mut next = Snapshot::new(1, 1);
    sim.save_sections(&mut next);
    let mut cells = Vec::new();
    // full encode
    let blob = base.encode(); // warm-up
    let t0 = Instant::now();
    let mut full = blob;
    for _ in 0..ROUNDS {
        full = base.encode();
    }
    let wall_us = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;
    cells.push(GateCell {
        cell: "encode_full_32c".into(),
        wall_us,
        digest: hex(fold(FNV_OFFSET, &full)),
    });
    // delta encode against the previous cut
    let mut delta = next.encode_delta(&base); // warm-up
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        delta = next.encode_delta(&base);
    }
    let wall_us = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;
    cells.push(GateCell {
        cell: "encode_delta_32c".into(),
        wall_us,
        digest: hex(fold(FNV_OFFSET, &delta)),
    });
    // decode + restore into a fresh simulation
    let restored = lbm::TwoFluidLbm::from_snapshot(&Snapshot::decode(&full).unwrap()).unwrap();
    let t0 = Instant::now();
    let mut restored = restored;
    for _ in 0..ROUNDS {
        let decoded = Snapshot::decode(&full).expect("gate blob decodes");
        restored = lbm::TwoFluidLbm::from_snapshot(&decoded).expect("gate blob restores");
    }
    let wall_us = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;
    let ck = restored.checkpoint();
    let mut h = FNV_OFFSET;
    for v in ck.fa.iter().chain(ck.fb.iter()) {
        h = fold(h, &v.to_bits().to_le_bytes());
    }
    cells.push(GateCell {
        cell: "decode_restore_32c".into(),
        wall_us,
        digest: hex(h),
    });
    GateReport {
        id: "ckpt".into(),
        cells,
    }
}

/// Run all five gated workloads, in [`GATE_IDS`] order.
pub fn snapshot_all() -> Vec<GateReport> {
    vec![
        snap_lbm(),
        snap_pool(),
        snap_monitor(),
        snap_fanout(),
        snap_ckpt(),
    ]
}

// ---------------------------------------------------------------------------
// comparison
// ---------------------------------------------------------------------------

/// Compare current snapshots in `current_dir` against committed baselines
/// in `baseline_dir`. Returns the list of violations (empty = gate
/// passes). Missing files, missing cells, digest drift, and normalized
/// wall regressions beyond [`MAX_REGRESSION`] are all violations.
pub fn compare(baseline_dir: &std::path::Path, current_dir: &std::path::Path) -> Vec<String> {
    let mut violations = Vec::new();
    // (id, cell, baseline wall, current wall) for every matched pair
    let mut pairs: Vec<(String, String, f64, f64)> = Vec::new();
    for id in GATE_IDS {
        let base = match read_report(baseline_dir, id) {
            Ok(r) => r,
            Err(e) => {
                violations.push(format!("[{id}] baseline unreadable: {e}"));
                continue;
            }
        };
        let cur = match read_report(current_dir, id) {
            Ok(r) => r,
            Err(e) => {
                violations.push(format!("[{id}] current snapshot unreadable: {e}"));
                continue;
            }
        };
        for bc in &base.cells {
            let Some(cc) = cur.cells.iter().find(|c| c.cell == bc.cell) else {
                violations.push(format!("[{id}] cell {} missing from current run", bc.cell));
                continue;
            };
            if cc.digest != bc.digest {
                violations.push(format!(
                    "[{id}] cell {} digest drift: baseline {} != current {}",
                    bc.cell, bc.digest, cc.digest
                ));
            }
            if bc.wall_us > 0.0 && cc.wall_us > 0.0 {
                pairs.push((id.to_string(), bc.cell.clone(), bc.wall_us, cc.wall_us));
            }
        }
    }
    if pairs.is_empty() {
        return violations;
    }
    // machine-speed normalization: divide every cell's ratio by the
    // global median ratio, so a uniformly faster/slower runner cancels
    // and only relative per-cell regressions remain
    let mut ratios: Vec<f64> = pairs.iter().map(|(_, _, b, c)| c / b).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median = ratios[ratios.len() / 2];
    for (id, cell, base, cur) in &pairs {
        let normalized = (cur / base) / median;
        if normalized > MAX_REGRESSION {
            violations.push(format!(
                "[{id}] cell {cell} wall regression: {base:.1}us -> {cur:.1}us \
                 ({normalized:.2}x normalized, limit {MAX_REGRESSION:.2}x)"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: &str, cells: &[(&str, f64, &str)]) -> GateReport {
        GateReport {
            id: id.into(),
            cells: cells
                .iter()
                .map(|(c, w, d)| GateCell {
                    cell: (*c).to_string(),
                    wall_us: *w,
                    digest: (*d).to_string(),
                })
                .collect(),
        }
    }

    fn write_all(dir: &std::path::Path, scale: f64, slow_cell: Option<(&str, f64)>) {
        let mut reports = vec![
            report("lbm", &[("a", 100.0, "d1"), ("b", 50.0, "d2")]),
            report("pool", &[("c", 40.0, "d3")]),
            report("monitor", &[("d", 30.0, "d4"), ("e", 20.0, "d5")]),
            report("fanout", &[("f", 60.0, "d6")]),
            report("ckpt", &[("g", 25.0, "d7")]),
        ];
        for r in &mut reports {
            for cell in &mut r.cells {
                cell.wall_us *= scale;
                if let Some((name, factor)) = slow_cell {
                    if cell.cell == name {
                        cell.wall_us *= factor;
                    }
                }
            }
            write_report(dir, r).unwrap();
        }
    }

    #[test]
    fn uniform_machine_speed_shift_passes() {
        let base = tempdir("gate_base_shift");
        let cur = tempdir("gate_cur_shift");
        write_all(&base, 1.0, None);
        write_all(&cur, 3.0, None); // a 3x slower runner, uniformly
        assert_eq!(compare(&base, &cur), Vec::<String>::new());
    }

    #[test]
    fn single_cell_slowdown_fails() {
        let base = tempdir("gate_base_slow");
        let cur = tempdir("gate_cur_slow");
        write_all(&base, 1.0, None);
        write_all(&cur, 1.0, Some(("b", 2.0)));
        let v = compare(&base, &cur);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("cell b wall regression"), "{}", v[0]);
    }

    #[test]
    fn digest_drift_fails_regardless_of_timing() {
        let base = tempdir("gate_base_digest");
        let cur = tempdir("gate_cur_digest");
        write_all(&base, 1.0, None);
        let mut r = report("lbm", &[("a", 100.0, "XX"), ("b", 50.0, "d2")]);
        write_report(&cur, &r).unwrap();
        r = report("pool", &[("c", 40.0, "d3")]);
        write_report(&cur, &r).unwrap();
        r = report("monitor", &[("d", 30.0, "d4"), ("e", 20.0, "d5")]);
        write_report(&cur, &r).unwrap();
        r = report("fanout", &[("f", 60.0, "d6")]);
        write_report(&cur, &r).unwrap();
        r = report("ckpt", &[("g", 25.0, "d7")]);
        write_report(&cur, &r).unwrap();
        let v = compare(&base, &cur);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("digest drift"), "{}", v[0]);
    }

    #[test]
    fn missing_cell_or_file_fails() {
        let base = tempdir("gate_base_missing");
        let cur = tempdir("gate_cur_missing");
        write_all(&base, 1.0, None);
        // current run lacks the fanout file and drops one monitor cell
        write_report(
            &cur,
            &report("lbm", &[("a", 100.0, "d1"), ("b", 50.0, "d2")]),
        )
        .unwrap();
        write_report(&cur, &report("pool", &[("c", 40.0, "d3")])).unwrap();
        write_report(&cur, &report("monitor", &[("d", 30.0, "d4")])).unwrap();
        write_report(&cur, &report("ckpt", &[("g", 25.0, "d7")])).unwrap();
        let v = compare(&base, &cur);
        assert!(v.iter().any(|m| m.contains("cell e missing")), "{v:?}");
        assert!(
            v.iter().any(|m| m.contains("current snapshot unreadable")),
            "{v:?}"
        );
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gridsteer_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
