//! Multicast groups and unicast bridges.
//!
//! Access Grid venues distribute audio/video over IP multicast; the paper
//! notes (§4.6) that VR sites are "often behind firewalls which do not
//! support multicast and sometimes even do NAT", so HLRS added
//! *unicast/multicast bridges* and point-to-point sessions to their venue
//! server. [`MulticastGroup`] models a group address with per-member links;
//! [`Bridge`] models the relay that re-unicasts group traffic to NAT'd
//! members at the cost of an extra hop and duplicated upstream bytes.

use crate::link::Link;
use crate::model::{NetModel, SiteId};
use crate::time::SimTime;
use std::collections::BTreeMap;

/// Delivery record for one member of a multicast send.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Receiving site.
    pub to: SiteId,
    /// Arrival time, or `None` if the (unreliable, UDP-like) packet was lost.
    pub arrival: Option<SimTime>,
    /// True if this member was reached via a unicast bridge.
    pub bridged: bool,
}

/// A multicast group: members reachable natively plus members behind
/// bridges.
pub struct MulticastGroup {
    /// Members with native multicast; each has its own link from any sender
    /// (we approximate the multicast tree by the sender→member unicast path,
    /// which is exact for the star-shaped venues the paper used).
    native: BTreeMap<SiteId, Link>,
    /// NAT'd members reached through a bridge site.
    bridged: BTreeMap<SiteId, Bridge>,
    /// Total bytes offered to the group (sender-side, once per send).
    pub bytes_sent: u64,
    /// Total bytes carried over unicast legs (once per bridged member).
    pub bytes_unicast: u64,
}

/// A unicast/multicast bridge: traffic to the member is relayed through the
/// bridge host over two unicast legs.
pub struct Bridge {
    /// Link from any group sender to the bridge host.
    pub uplink: Link,
    /// Link from the bridge host to the NAT'd member.
    pub downlink: Link,
    /// Per-packet relay processing cost at the bridge.
    pub relay_cost: SimTime,
}

impl Bridge {
    /// Build a bridge from explicit links.
    pub fn new(uplink: Link, downlink: Link) -> Self {
        Bridge {
            uplink,
            downlink,
            relay_cost: SimTime::from_micros(200),
        }
    }
}

impl Default for MulticastGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl MulticastGroup {
    /// Empty group.
    pub fn new() -> Self {
        MulticastGroup {
            native: BTreeMap::new(),
            bridged: BTreeMap::new(),
            bytes_sent: 0,
            bytes_unicast: 0,
        }
    }

    /// Join a member with native multicast connectivity over `link`.
    pub fn join_native(&mut self, site: SiteId, link: Link) {
        self.bridged.remove(&site);
        self.native.insert(site, link);
    }

    /// Join a NAT'd member via `bridge`.
    pub fn join_bridged(&mut self, site: SiteId, bridge: Bridge) {
        self.native.remove(&site);
        self.bridged.insert(site, bridge);
    }

    /// Remove a member.
    pub fn leave(&mut self, site: SiteId) {
        self.native.remove(&site);
        self.bridged.remove(&site);
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.native.len() + self.bridged.len()
    }

    /// True if the group has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Build a group for `members` using the pairwise links of `model`,
    /// with `sender` as the implied source (star topology).
    pub fn from_model(model: &NetModel, sender: SiteId, members: &[SiteId]) -> Self {
        let mut g = MulticastGroup::new();
        for &m in members {
            if m != sender {
                g.join_native(m, model.link(sender, m));
            }
        }
        g
    }

    /// Send one datagram of `size` bytes at `departure` to every member
    /// (excluding `from` itself). Multicast semantics: the sender pays the
    /// payload **once** regardless of member count; bridged members add a
    /// unicast copy each. Returns per-member deliveries sorted by site id.
    pub fn send(&mut self, from: SiteId, departure: SimTime, size: usize) -> Vec<Delivery> {
        self.bytes_sent += size as u64;
        let mut out = Vec::with_capacity(self.len());
        for (&site, link) in self.native.iter_mut() {
            if site == from {
                continue;
            }
            // UDP-like: losses drop the packet (no retransmit)
            let arrival = link.deliver(departure, size);
            out.push(Delivery {
                to: site,
                arrival,
                bridged: false,
            });
        }
        for (&site, bridge) in self.bridged.iter_mut() {
            if site == from {
                continue;
            }
            self.bytes_unicast += size as u64;
            let arrival = bridge
                .uplink
                .deliver(departure, size)
                .and_then(|at_bridge| bridge.downlink.deliver(at_bridge + bridge.relay_cost, size));
            out.push(Delivery {
                to: site,
                arrival,
                bridged: true,
            });
        }
        out.sort_by_key(|d| d.to);
        out
    }

    /// The spread (max − min arrival) of a delivery set, ignoring losses.
    /// This is the "frame divergence between sites" metric of §4.2.
    pub fn skew(deliveries: &[Delivery]) -> SimTime {
        let times: Vec<SimTime> = deliveries.iter().filter_map(|d| d.arrival).collect();
        match (times.iter().min(), times.iter().max()) {
            (Some(&lo), Some(&hi)) => hi - lo,
            _ => SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    fn sites(n: usize) -> Vec<SiteId> {
        (0..n).map(SiteId).collect()
    }

    #[test]
    fn sender_pays_once_for_native_members() {
        let mut g = MulticastGroup::new();
        for s in sites(8) {
            g.join_native(s, Link::loopback());
        }
        g.send(SiteId(0), SimTime::ZERO, 1000);
        assert_eq!(g.bytes_sent, 1000);
        assert_eq!(g.bytes_unicast, 0);
    }

    #[test]
    fn bridged_members_cost_extra_unicast() {
        let mut g = MulticastGroup::new();
        g.join_native(SiteId(1), Link::loopback());
        g.join_bridged(SiteId(2), Bridge::new(Link::loopback(), Link::loopback()));
        g.join_bridged(SiteId(3), Bridge::new(Link::loopback(), Link::loopback()));
        g.send(SiteId(0), SimTime::ZERO, 500);
        assert_eq!(g.bytes_sent, 500);
        assert_eq!(g.bytes_unicast, 1000);
    }

    #[test]
    fn sender_not_delivered_to_itself() {
        let mut g = MulticastGroup::new();
        for s in sites(3) {
            g.join_native(s, Link::loopback());
        }
        let d = g.send(SiteId(1), SimTime::ZERO, 10);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.to != SiteId(1)));
    }

    #[test]
    fn bridge_adds_hop_latency() {
        let leg = Link::builder()
            .latency_ms(10)
            .bandwidth_bps(u64::MAX)
            .build();
        let mut g = MulticastGroup::new();
        g.join_native(SiteId(1), leg.clone());
        let mut b = Bridge::new(leg.clone(), leg.clone());
        b.relay_cost = SimTime::from_millis(1);
        g.join_bridged(SiteId(2), b);
        let d = g.send(SiteId(0), SimTime::ZERO, 0);
        let native = d.iter().find(|x| x.to == SiteId(1)).unwrap();
        let bridged = d.iter().find(|x| x.to == SiteId(2)).unwrap();
        assert_eq!(native.arrival, Some(SimTime::from_millis(10)));
        assert_eq!(bridged.arrival, Some(SimTime::from_millis(21)));
        assert!(bridged.bridged && !native.bridged);
    }

    #[test]
    fn skew_measures_arrival_spread() {
        let d = vec![
            Delivery {
                to: SiteId(1),
                arrival: Some(SimTime::from_millis(5)),
                bridged: false,
            },
            Delivery {
                to: SiteId(2),
                arrival: Some(SimTime::from_millis(12)),
                bridged: false,
            },
            Delivery {
                to: SiteId(3),
                arrival: None,
                bridged: false,
            },
        ];
        assert_eq!(MulticastGroup::skew(&d), SimTime::from_millis(7));
    }

    #[test]
    fn rejoining_switches_mode() {
        let mut g = MulticastGroup::new();
        g.join_native(SiteId(1), Link::loopback());
        g.join_bridged(SiteId(1), Bridge::new(Link::loopback(), Link::loopback()));
        assert_eq!(g.len(), 1);
        let d = g.send(SiteId(0), SimTime::ZERO, 1);
        assert!(d[0].bridged);
    }

    #[test]
    fn udp_losses_drop_packets() {
        let lossy = Link::builder().loss_ppm(1_000_000).build();
        let mut g = MulticastGroup::new();
        g.join_native(SiteId(1), lossy);
        let d = g.send(SiteId(0), SimTime::ZERO, 100);
        assert_eq!(d[0].arrival, None);
    }
}
