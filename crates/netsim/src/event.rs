//! Discrete-event scheduler for multi-party scenarios.
//!
//! The clock-merge channels in [`crate::channel`] cover request/response
//! chains, but the collaboration-skew experiments (how far apart do N sites'
//! views drift? — §4.2/§4.3 of the paper) need a global ordering of events
//! across many parties. [`EventQueue`] is a minimal deterministic
//! discrete-event core: events are `(time, seq, payload)` triples popped in
//! time order with FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event carrying a user payload.
#[derive(Debug, Clone)]
pub struct Event<T> {
    /// Virtual time at which the event fires.
    pub at: SimTime,
    /// Insertion sequence number (tie-breaker; FIFO among equal times).
    pub seq: u64,
    /// User payload.
    pub payload: T,
}

struct HeapEntry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic earliest-first event queue.
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` at absolute time `at`. Scheduling in the past is
    /// clamped to `now` (events cannot fire before the present).
    pub fn schedule(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry {
            at: at.max(self.now),
            seq,
            payload,
        });
        seq
    }

    /// Schedule `payload` at `now + delay`.
    pub fn schedule_in(&mut self, delay: SimTime, payload: T) -> u64 {
        self.schedule(self.now + delay, payload)
    }

    /// Pop the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.heap.pop().map(|e| {
            self.now = self.now.max(e.at);
            Event {
                at: e.at,
                seq: e.seq,
                payload: e.payload,
            }
        })
    }

    /// Time of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Run the queue to completion, calling `handler(time, payload, queue)`
    /// for each event. The handler may schedule further events. Stops after
    /// `max_events` as a runaway guard; returns the number processed.
    pub fn run<F>(&mut self, max_events: usize, mut handler: F) -> usize
    where
        F: FnMut(Event<T>, &mut EventQueue<T>),
    {
        let mut n = 0;
        while n < max_events {
            match self.pop() {
                Some(ev) => {
                    handler(ev, self);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_tiebreak_at_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn now_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.schedule(SimTime::from_millis(5), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(5));
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(10));
    }

    #[test]
    fn past_scheduling_is_clamped() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "first");
        q.pop();
        q.schedule(SimTime::from_millis(1), "late");
        let ev = q.pop().unwrap();
        assert_eq!(ev.at, SimTime::from_millis(10));
    }

    #[test]
    fn run_with_cascading_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        let n = q.run(100, |ev, q| {
            if ev.payload < 5 {
                q.schedule_in(SimTime::from_millis(1), ev.payload + 1);
            }
        });
        assert_eq!(n, 6);
        assert_eq!(q.now(), SimTime::from_millis(6));
    }

    #[test]
    fn run_respects_max_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u32);
        // infinite cascade, bounded by max_events
        let n = q.run(50, |ev, q| {
            q.schedule_in(SimTime::from_millis(1), ev.payload + 1);
        });
        assert_eq!(n, 50);
    }
}
