//! # netsim — deterministic virtual-time network substrate
//!
//! The SC2003 collaborative-steering paper runs its demonstrations over real
//! wide-area networks (UK SuperJanet, the German G-WiN, transatlantic links
//! to the SC'03 show floor in Phoenix). This crate substitutes a
//! *deterministic virtual-time model* of those networks so that every
//! latency/bandwidth experiment in the paper (the feedback-loop budgets of
//! §4.2–4.4, the traffic comparisons of §2.4/§4.6) can be reproduced exactly
//! and quickly on one machine.
//!
//! Two complementary styles are provided:
//!
//! * **Clock-merge channels** ([`channel::SimChannel`]) for request/response
//!   chains: each actor owns a [`time::VClock`]; a received message advances
//!   the receiver's clock to `max(local, arrival)`. This is the classic
//!   virtual-time co-simulation rule and is sufficient for the round-trip
//!   experiments.
//! * **A discrete-event scheduler** ([`event::EventQueue`]) for multi-party
//!   scenarios (venue broadcast, collaboration skew across many sites).
//!
//! Link behaviour (latency, bandwidth, deterministic jitter, loss) lives in
//! [`link::Link`]; scriptable mid-run faults (partition/heal, injected
//! loss/jitter) in [`fault::FaultyLink`]; named-site topologies with RTT
//! matrices in [`model::NetModel`]; multicast groups and unicast bridges in
//! [`multicast`].

pub mod channel;
pub mod event;
pub mod fault;
pub mod link;
pub mod model;
pub mod multicast;
pub mod time;

pub use channel::{SimChannel, SimEndpoint};
pub use event::{Event, EventQueue};
pub use fault::{FaultyLink, LinkStats};
pub use link::{Link, LinkBuilder};
pub use model::{NetModel, SiteId};
pub use multicast::{Bridge, MulticastGroup};
pub use time::{SimTime, VClock};
