//! Scriptable fault injection on top of [`Link`].
//!
//! The base [`Link`] models the *steady-state* behaviour of a network path
//! (latency, bandwidth, a fixed jitter/loss profile). Scenario runs need to
//! change that behaviour *mid-run*: a transatlantic segment partitions and
//! heals, congestion raises the loss rate for a while, a routing flap adds
//! jitter. [`FaultyLink`] wraps a `Link` with that mutable fault state and
//! keeps delivery statistics, while staying fully deterministic: the extra
//! loss/jitter decisions come from a SplitMix64 stream over
//! `(fault_seed, sequence number)`, exactly like the base link's own
//! streams, so a faulted run replays identically for a given seed.

use crate::link::{splitmix64, Link};
use crate::time::SimTime;

/// Delivery statistics for one link direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages that arrived.
    pub delivered: u64,
    /// Messages dropped — by partition, injected loss, or the base link's
    /// own loss profile.
    pub dropped: u64,
}

impl LinkStats {
    /// Total messages offered to the link.
    pub fn offered(&self) -> u64 {
        self.delivered + self.dropped
    }

    /// Fraction of offered messages that were dropped (0.0 when idle).
    pub fn drop_fraction(&self) -> f64 {
        if self.offered() == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered() as f64
        }
    }
}

/// A [`Link`] with scriptable mid-run faults and delivery accounting.
#[derive(Debug, Clone)]
pub struct FaultyLink {
    base: Link,
    partitioned: bool,
    extra_loss_ppm: u32,
    extra_jitter: SimTime,
    extra_latency: SimTime,
    fault_seed: u64,
    fault_seq: u64,
    stats: LinkStats,
}

impl FaultyLink {
    /// Wrap `base` with no active faults. `fault_seed` drives the injected
    /// loss/jitter streams (independent of the base link's own seed).
    pub fn new(base: Link, fault_seed: u64) -> Self {
        FaultyLink {
            base,
            partitioned: false,
            extra_loss_ppm: 0,
            extra_jitter: SimTime::ZERO,
            extra_latency: SimTime::ZERO,
            fault_seed,
            fault_seq: 0,
            stats: LinkStats::default(),
        }
    }

    /// The wrapped steady-state link.
    pub fn base(&self) -> &Link {
        &self.base
    }

    /// Sever the link: every delivery drops until [`FaultyLink::heal`].
    pub fn partition(&mut self) {
        self.partitioned = true;
    }

    /// Restore a partitioned link.
    pub fn heal(&mut self) {
        self.partitioned = false;
    }

    /// True while partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Injected loss on top of the base link's profile, in ppm (clamped to
    /// 100%).
    pub fn set_extra_loss_ppm(&mut self, ppm: u32) {
        self.extra_loss_ppm = ppm.min(1_000_000);
    }

    /// Injected jitter on top of the base link's profile (uniform in
    /// `[0, j]`).
    pub fn set_extra_jitter(&mut self, j: SimTime) {
        self.extra_jitter = j;
    }

    /// Injected fixed extra delay (a rerouted path).
    pub fn set_extra_latency(&mut self, l: SimTime) {
        self.extra_latency = l;
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Deterministic injected-loss decision for the `seq`-th message.
    fn injected_loss(&self, seq: u64) -> bool {
        if self.extra_loss_ppm == 0 {
            return false;
        }
        let h = splitmix64(self.fault_seed.rotate_left(29) ^ seq);
        (h % 1_000_000) < self.extra_loss_ppm as u64
    }

    /// Deterministic injected jitter for the `seq`-th message.
    fn injected_jitter(&self, seq: u64) -> SimTime {
        if self.extra_jitter == SimTime::ZERO {
            return SimTime::ZERO;
        }
        let h = splitmix64(self.fault_seed ^ seq.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        // saturating: a u64::MAX-nanos jitter must not overflow the span
        SimTime::from_nanos(h % self.extra_jitter.as_nanos().saturating_add(1))
    }

    /// Arrival time of a `size_bytes` message departing at `departure`,
    /// after faults. `None` means the message was dropped (partition,
    /// injected loss, or base-link loss); statistics are updated either way.
    pub fn deliver(&mut self, departure: SimTime, size_bytes: usize) -> Option<SimTime> {
        let seq = self.fault_seq;
        self.fault_seq += 1;
        if self.partitioned || self.injected_loss(seq) {
            self.stats.dropped += 1;
            return None;
        }
        match self.base.deliver(departure, size_bytes) {
            Some(arrival) => {
                self.stats.delivered += 1;
                Some(arrival + self.extra_latency + self.injected_jitter(seq))
            }
            None => {
                self.stats.dropped += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> Link {
        Link::builder().latency_ms(1).build()
    }

    #[test]
    fn no_faults_behaves_like_base() {
        let mut f = FaultyLink::new(lan(), 1);
        let mut b = lan();
        for i in 0..50 {
            let t = SimTime::from_millis(i);
            assert_eq!(f.deliver(t, 100), b.deliver(t, 100));
        }
        assert_eq!(
            f.stats(),
            LinkStats {
                delivered: 50,
                dropped: 0
            }
        );
    }

    #[test]
    fn partition_drops_everything_and_heal_restores() {
        let mut f = FaultyLink::new(lan(), 2);
        assert!(f.deliver(SimTime::ZERO, 10).is_some());
        f.partition();
        assert!(f.is_partitioned());
        for _ in 0..10 {
            assert!(f.deliver(SimTime::ZERO, 10).is_none());
        }
        f.heal();
        assert!(!f.is_partitioned());
        assert!(f.deliver(SimTime::ZERO, 10).is_some());
        let s = f.stats();
        assert_eq!(s.delivered, 2);
        assert_eq!(s.dropped, 10);
        assert_eq!(s.offered(), 12);
    }

    #[test]
    fn injected_loss_approximates_rate() {
        let mut f = FaultyLink::new(lan(), 77);
        f.set_extra_loss_ppm(200_000); // 20%
        let dropped = (0..10_000)
            .filter(|_| f.deliver(SimTime::ZERO, 1).is_none())
            .count();
        assert!((1_600..2_400).contains(&dropped), "dropped={dropped}");
        assert_eq!(f.stats().dropped, dropped as u64);
    }

    #[test]
    fn injected_loss_is_deterministic_per_seed() {
        let run = |seed| {
            let mut f = FaultyLink::new(lan(), seed);
            f.set_extra_loss_ppm(100_000);
            (0..200)
                .map(|_| f.deliver(SimTime::ZERO, 1).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn injected_jitter_is_bounded_and_deterministic() {
        let run = || {
            let mut f = FaultyLink::new(
                Link::builder()
                    .latency_ms(1)
                    .bandwidth_bps(u64::MAX)
                    .build(),
                9,
            );
            f.set_extra_jitter(SimTime::from_millis(3));
            (0..500)
                .map(|_| f.deliver(SimTime::ZERO, 0).unwrap())
                .collect::<Vec<SimTime>>()
        };
        let arrivals = run();
        for &a in &arrivals {
            assert!(a >= SimTime::from_millis(1));
            assert!(a <= SimTime::from_millis(4));
        }
        assert_eq!(arrivals, run());
        // the stream actually jitters
        assert!(arrivals.iter().any(|&a| a != arrivals[0]));
    }

    #[test]
    fn extreme_jitter_does_not_panic() {
        let mut f = FaultyLink::new(lan(), 13);
        f.set_extra_jitter(SimTime::from_nanos(u64::MAX));
        for _ in 0..10 {
            let _ = f.deliver(SimTime::ZERO, 1);
        }
        let mut l = Link::builder()
            .latency_ms(1)
            .jitter(SimTime::from_nanos(u64::MAX))
            .build();
        for _ in 0..10 {
            let _ = l.deliver(SimTime::ZERO, 1);
        }
    }

    #[test]
    fn extra_latency_shifts_arrivals() {
        let mut f = FaultyLink::new(lan(), 3);
        let base = f.deliver(SimTime::ZERO, 0).unwrap();
        f.set_extra_latency(SimTime::from_millis(40));
        let shifted = f.deliver(SimTime::ZERO, 0).unwrap();
        assert_eq!(shifted, base + SimTime::from_millis(40));
    }

    #[test]
    fn base_link_loss_counts_as_drop() {
        let mut f = FaultyLink::new(Link::builder().loss_ppm(1_000_000).build(), 4);
        assert!(f.deliver(SimTime::ZERO, 1).is_none());
        assert_eq!(f.stats().dropped, 1);
    }

    #[test]
    fn drop_fraction_summary() {
        let s = LinkStats {
            delivered: 3,
            dropped: 1,
        };
        assert!((s.drop_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(LinkStats::default().drop_fraction(), 0.0);
    }

    #[test]
    fn partition_does_not_advance_base_stream() {
        // drops during partition must not perturb the post-heal jitter
        // stream relative to an unfaulted twin that saw only the delivered
        // messages — the base link consumes sequence numbers only for
        // messages that reach it.
        let mk = || {
            Link::builder()
                .latency_ms(1)
                .jitter(SimTime::from_millis(2))
                .seed(11)
                .build()
        };
        let mut f = FaultyLink::new(mk(), 8);
        let mut twin = mk();
        assert_eq!(f.deliver(SimTime::ZERO, 1), twin.deliver(SimTime::ZERO, 1));
        f.partition();
        for _ in 0..5 {
            assert!(f.deliver(SimTime::ZERO, 1).is_none());
        }
        f.heal();
        assert_eq!(f.deliver(SimTime::ZERO, 1), twin.deliver(SimTime::ZERO, 1));
    }
}
