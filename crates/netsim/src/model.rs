//! Named-site topology model.
//!
//! The paper's demonstrations span a fixed cast of sites: Manchester (AG
//! node + Bezier, the visualization Onyx), London/UCL (Dirac, the compute
//! Onyx), Jülich (PEPC + VISIT), Stuttgart (COVISE/HLRS), and the Phoenix
//! show floor. [`NetModel`] holds such a cast with a directed link for every
//! ordered pair and hands out per-pair [`Link`] clones for channels.

use crate::link::Link;
use crate::time::SimTime;
use std::collections::HashMap;

/// Opaque site handle (index into the model's site table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub usize);

/// A topology of named sites with directed links.
#[derive(Debug, Default)]
pub struct NetModel {
    names: Vec<String>,
    by_name: HashMap<String, SiteId>,
    /// links[(a,b)] = link used for messages a→b.
    links: HashMap<(SiteId, SiteId), Link>,
    default_link: Option<Link>,
}

impl NetModel {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a site; returns its id. Adding an existing name returns the
    /// existing id.
    pub fn add_site(&mut self, name: &str) -> SiteId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SiteId(self.names.len());
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no sites registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Site name.
    pub fn name(&self, id: SiteId) -> &str {
        &self.names[id.0]
    }

    /// Lookup a site by name.
    pub fn site(&self, name: &str) -> Option<SiteId> {
        self.by_name.get(name).copied()
    }

    /// All site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.names.len()).map(SiteId)
    }

    /// Install a directed link `a → b`.
    pub fn connect(&mut self, a: SiteId, b: SiteId, link: Link) {
        self.links.insert((a, b), link);
    }

    /// Install the same link parameters in both directions.
    pub fn connect_sym(&mut self, a: SiteId, b: SiteId, link: Link) {
        self.links.insert((a, b), link.clone());
        self.links.insert((b, a), link);
    }

    /// Fallback link used for pairs without an explicit entry.
    pub fn set_default_link(&mut self, link: Link) {
        self.default_link = Some(link);
    }

    /// Fetch a fresh (sequence-zero) link clone for `a → b`. Messages from a
    /// site to itself always use loopback.
    pub fn link(&self, a: SiteId, b: SiteId) -> Link {
        if a == b {
            return Link::loopback();
        }
        self.links
            .get(&(a, b))
            .or(self.default_link.as_ref())
            .cloned()
            .unwrap_or_else(Link::loopback)
    }

    /// Nominal round-trip time for a small message between two sites.
    pub fn rtt(&self, a: SiteId, b: SiteId) -> SimTime {
        let fwd = self.link(a, b).nominal_arrival(SimTime::ZERO, 64);
        let back = self.link(b, a).nominal_arrival(SimTime::ZERO, 64);
        fwd + back
    }

    /// The topology used throughout the paper's demonstrations:
    /// Manchester, London (UCL), Sheffield (e-Science All-Hands floor),
    /// Jülich, Stuttgart, Phoenix (SC'03 show floor).
    ///
    /// Link classes: UK national (Janet), continental (G-WiN class),
    /// transatlantic for anything ↔ Phoenix.
    pub fn sc2003() -> (NetModel, HashMap<String, SiteId>) {
        let mut m = NetModel::new();
        let names = [
            "manchester",
            "london",
            "sheffield",
            "juelich",
            "stuttgart",
            "phoenix",
        ];
        let ids: Vec<SiteId> = names.iter().map(|n| m.add_site(n)).collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in ids.iter().skip(i + 1) {
                let an = names[a.0];
                let bn = names[b.0];
                let link = if an == "phoenix" || bn == "phoenix" {
                    Link::transatlantic()
                } else if matches!(an, "juelich" | "stuttgart")
                    != matches!(bn, "juelich" | "stuttgart")
                {
                    // UK ↔ continent: combine Janet + GEANT-ish hop
                    Link::builder().latency_ms(18).bandwidth_mbit(155).build()
                } else if matches!(an, "juelich" | "stuttgart") {
                    Link::gwin()
                } else {
                    Link::uk_janet()
                };
                m.connect_sym(a, b, link);
            }
        }
        let map = names
            .iter()
            .map(|n| (n.to_string(), m.site(n).unwrap()))
            .collect();
        (m, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_site_is_idempotent() {
        let mut m = NetModel::new();
        let a = m.add_site("x");
        let a2 = m.add_site("x");
        assert_eq!(a, a2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn self_link_is_loopback() {
        let mut m = NetModel::new();
        let a = m.add_site("a");
        assert_eq!(m.link(a, a).latency, SimTime::ZERO);
    }

    #[test]
    fn missing_link_falls_back() {
        let mut m = NetModel::new();
        let a = m.add_site("a");
        let b = m.add_site("b");
        // no default: loopback
        assert_eq!(m.link(a, b).latency, SimTime::ZERO);
        m.set_default_link(Link::uk_janet());
        assert_eq!(m.link(a, b).latency, SimTime::from_millis(5));
    }

    #[test]
    fn sc2003_topology_is_complete_and_sane() {
        let (m, ids) = NetModel::sc2003();
        assert_eq!(m.len(), 6);
        let man = ids["manchester"];
        let lon = ids["london"];
        let phx = ids["phoenix"];
        let jue = ids["juelich"];
        // UK pair faster than UK↔continent, which is faster than transatlantic
        assert!(m.rtt(man, lon) < m.rtt(man, jue));
        assert!(m.rtt(man, jue) < m.rtt(man, phx));
        // symmetric by construction
        assert_eq!(m.rtt(man, phx), m.rtt(phx, man));
    }

    #[test]
    fn directed_links_can_differ() {
        let mut m = NetModel::new();
        let a = m.add_site("a");
        let b = m.add_site("b");
        m.connect(a, b, Link::builder().latency_ms(1).build());
        m.connect(b, a, Link::builder().latency_ms(9).build());
        assert_eq!(m.link(a, b).latency, SimTime::from_millis(1));
        assert_eq!(m.link(b, a).latency, SimTime::from_millis(9));
    }
}
