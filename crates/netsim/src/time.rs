//! Virtual time and per-actor logical clocks.
//!
//! All of the paper's reaction-time budgets (§4.2–4.4) are stated in wall
//! time: frame periods of 66–100 ms for VR, 200–333 ms for desktop, up to a
//! minute for the simulation loop. We model time as nanoseconds in a `u64`,
//! which covers ~584 years of virtual time — comfortably more than any
//! steering session.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since session start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of the simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 as f64 / 1e6;
        if ms >= 1000.0 {
            write!(f, "{:.3}s", ms / 1000.0)
        } else {
            write!(f, "{ms:.3}ms")
        }
    }
}

/// A per-actor logical clock using the virtual-time merge rule.
///
/// Each independently-acting party (a simulation, a visualization server, a
/// steering client at some site) owns a `VClock`. Local work advances the
/// clock by the modeled cost; receiving a message merges the sender-side
/// arrival time into the local clock. The resulting timestamps are exactly
/// the times a faithful discrete-event simulation would produce for
/// request/response interactions.
#[derive(Debug, Clone, Default)]
pub struct VClock {
    now: SimTime,
}

impl VClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        VClock { now: SimTime::ZERO }
    }

    /// A clock starting at an arbitrary time.
    pub fn at(t: SimTime) -> Self {
        VClock { now: t }
    }

    /// Current local time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Spend `d` of local compute/render time.
    pub fn advance(&mut self, d: SimTime) -> SimTime {
        self.now += d;
        self.now
    }

    /// Merge an incoming event timestamp (message arrival): local time
    /// becomes `max(local, arrival)`. Returns the new local time.
    pub fn merge(&mut self, arrival: SimTime) -> SimTime {
        self.now = self.now.max(arrival);
        self.now
    }

    /// Block until `t` (no-op if already past). Returns the new local time.
    pub fn wait_until(&mut self, t: SimTime) -> SimTime {
        self.merge(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_millis(3), SimTime::from_nanos(3_000_000));
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
    }

    #[test]
    fn accessors_truncate() {
        let t = SimTime::from_nanos(1_999_999);
        assert_eq!(t.as_millis(), 1);
        assert_eq!(t.as_micros(), 1_999);
        assert!((t.as_secs_f64() - 0.001999999).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a + b, SimTime::from_millis(14));
        assert_eq!(a - b, SimTime::from_millis(6));
        // subtraction saturates rather than wrapping
        assert_eq!(b - a, SimTime::ZERO);
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
    }

    #[test]
    fn clock_advance_and_merge() {
        let mut c = VClock::new();
        c.advance(SimTime::from_millis(5));
        assert_eq!(c.now(), SimTime::from_millis(5));
        // merging an earlier arrival is a no-op
        c.merge(SimTime::from_millis(3));
        assert_eq!(c.now(), SimTime::from_millis(5));
        // merging a later arrival jumps forward
        c.merge(SimTime::from_millis(9));
        assert_eq!(c.now(), SimTime::from_millis(9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
    }
}
