//! Clock-merge message channels.
//!
//! A [`SimChannel`] is a bidirectional, reliable, ordered byte-message pipe
//! between two virtual-time actors — the moral equivalent of the TCP
//! connections every system in the paper uses (VISIT data connections,
//! UNICORE client↔gateway, COVISE broker links). Each direction is shaped by
//! its own [`Link`].
//!
//! Ordering: arrivals on one direction are forced monotone (a later-sent
//! message never arrives before an earlier one), mirroring TCP's in-order
//! delivery even when jitter would reorder raw packets. Loss on a reliable
//! channel is modeled as *retransmission delay* (one extra RTT), not drop.

use crate::link::Link;
use crate::time::{SimTime, VClock};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// One queued message: payload plus its arrival time at the receiver.
#[derive(Debug, Clone)]
struct InFlight {
    arrival: SimTime,
    payload: Vec<u8>,
}

#[derive(Debug, Default)]
struct Queue {
    msgs: VecDeque<InFlight>,
    last_arrival: SimTime,
    closed: bool,
}

/// A bidirectional virtual-time channel; construct with [`SimChannel::pair`].
pub struct SimChannel;

impl SimChannel {
    /// Create the two endpoints of a channel. `link_ab` shapes messages
    /// from the first endpoint to the second, `link_ba` the reverse.
    pub fn pair(link_ab: Link, link_ba: Link) -> (SimEndpoint, SimEndpoint) {
        let q_ab = Arc::new(Mutex::new(Queue::default()));
        let q_ba = Arc::new(Mutex::new(Queue::default()));
        let a = SimEndpoint {
            out: q_ab.clone(),
            inc: q_ba.clone(),
            link: Mutex::new(link_ab).into(),
        };
        let b = SimEndpoint {
            out: q_ba,
            inc: q_ab,
            link: Mutex::new(link_ba).into(),
        };
        (a, b)
    }

    /// A symmetric channel using the same link parameters both ways.
    pub fn sym(link: Link) -> (SimEndpoint, SimEndpoint) {
        SimChannel::pair(link.clone(), link)
    }

    /// A loopback channel (zero cost both ways).
    pub fn loopback() -> (SimEndpoint, SimEndpoint) {
        SimChannel::sym(Link::loopback())
    }
}

/// One end of a [`SimChannel`].
pub struct SimEndpoint {
    out: Arc<Mutex<Queue>>,
    inc: Arc<Mutex<Queue>>,
    link: Arc<Mutex<Link>>,
}

/// Error returned by receive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message will arrive by the given deadline.
    Timeout,
    /// Peer endpoint has been dropped/closed and the queue is drained.
    Closed,
}

impl SimEndpoint {
    /// Send `payload`, stamping virtual-time costs on the caller's clock
    /// (serialization happens at the sender). Returns the arrival time at
    /// the peer.
    pub fn send(&self, clock: &mut VClock, payload: &[u8]) -> SimTime {
        let mut link = self.link.lock();
        // Reliable channel: a "lost" packet costs one extra nominal RTT
        // (retransmit) instead of disappearing.
        let departure = clock.now();
        let arrival = match link.deliver(departure, payload.len()) {
            Some(t) => t,
            None => {
                let retransmit = link.nominal_arrival(departure, payload.len());
                retransmit + link.latency + link.latency
            }
        };
        let mut q = self.out.lock();
        // enforce in-order delivery
        let arrival = arrival.max(q.last_arrival);
        q.last_arrival = arrival;
        q.msgs.push_back(InFlight {
            arrival,
            payload: payload.to_vec(),
        });
        arrival
    }

    /// Receive the next message, advancing `clock` to its arrival time.
    /// Fails with [`RecvError::Closed`] if the peer is gone and nothing is
    /// queued, or [`RecvError::Timeout`] if nothing has been *sent* yet
    /// (virtual-time channels cannot block for future sends — the caller's
    /// program order must have produced the message already).
    pub fn recv(&self, clock: &mut VClock) -> Result<Vec<u8>, RecvError> {
        let mut q = self.inc.lock();
        match q.msgs.pop_front() {
            Some(m) => {
                clock.merge(m.arrival);
                Ok(m.payload)
            }
            None if q.closed => Err(RecvError::Closed),
            None => Err(RecvError::Timeout),
        }
    }

    /// Receive the next message only if it arrives by `deadline`; otherwise
    /// the clock advances to `deadline` and `Timeout` is returned. This is
    /// the primitive under VISIT's "complete or fail by the user-specified
    /// timeout" guarantee.
    pub fn recv_deadline(
        &self,
        clock: &mut VClock,
        deadline: SimTime,
    ) -> Result<Vec<u8>, RecvError> {
        let mut q = self.inc.lock();
        match q.msgs.front() {
            Some(m) if m.arrival <= deadline => {
                let m = q.msgs.pop_front().unwrap();
                clock.merge(m.arrival);
                Ok(m.payload)
            }
            Some(_) => {
                clock.merge(deadline);
                Err(RecvError::Timeout)
            }
            None if q.closed => Err(RecvError::Closed),
            None => {
                clock.merge(deadline);
                Err(RecvError::Timeout)
            }
        }
    }

    /// Peek at the arrival time of the next queued message.
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.inc.lock().msgs.front().map(|m| m.arrival)
    }

    /// Number of queued inbound messages.
    pub fn pending(&self) -> usize {
        self.inc.lock().msgs.len()
    }

    /// Mark the outbound direction closed (peer sees `Closed` once drained).
    pub fn close(&self) {
        self.out.lock().closed = true;
    }

    /// True if the peer closed its outbound direction and the queue is empty.
    pub fn is_closed(&self) -> bool {
        let q = self.inc.lock();
        q.closed && q.msgs.is_empty()
    }
}

impl Drop for SimEndpoint {
    fn drop(&mut self) {
        self.out.lock().closed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    #[test]
    fn roundtrip_advances_clocks_by_rtt() {
        let link = Link::builder()
            .latency_ms(10)
            .bandwidth_bps(u64::MAX)
            .build();
        let (a, b) = SimChannel::sym(link);
        let mut ca = VClock::new();
        let mut cb = VClock::new();
        a.send(&mut ca, b"ping");
        let got = b.recv(&mut cb).unwrap();
        assert_eq!(got, b"ping");
        assert_eq!(cb.now(), SimTime::from_millis(10));
        b.send(&mut cb, b"pong");
        let got = a.recv(&mut ca).unwrap();
        assert_eq!(got, b"pong");
        assert_eq!(ca.now(), SimTime::from_millis(20));
    }

    #[test]
    fn bandwidth_charges_large_payloads() {
        let link = Link::builder()
            .latency_ms(0)
            .bandwidth_bps(1_000_000)
            .build(); // 1 MB/s
        let (a, b) = SimChannel::sym(link);
        let mut ca = VClock::new();
        let mut cb = VClock::new();
        a.send(&mut ca, &vec![0u8; 500_000]);
        b.recv(&mut cb).unwrap();
        assert_eq!(cb.now(), SimTime::from_millis(500));
    }

    #[test]
    fn ordering_is_fifo_despite_jitter() {
        let link = Link::builder()
            .latency_ms(5)
            .jitter(SimTime::from_millis(50))
            .seed(3)
            .build();
        let (a, b) = SimChannel::sym(link);
        let mut ca = VClock::new();
        let mut cb = VClock::new();
        for i in 0u8..50 {
            a.send(&mut ca, &[i]);
        }
        let mut last = SimTime::ZERO;
        for i in 0u8..50 {
            let m = b.recv(&mut cb).unwrap();
            assert_eq!(m[0], i);
            assert!(cb.now() >= last);
            last = cb.now();
        }
    }

    #[test]
    fn recv_deadline_times_out_and_advances() {
        let link = Link::builder().latency_ms(100).build();
        let (a, b) = SimChannel::sym(link);
        let mut ca = VClock::new();
        let mut cb = VClock::new();
        a.send(&mut ca, b"slow");
        let r = b.recv_deadline(&mut cb, SimTime::from_millis(50));
        assert_eq!(r, Err(RecvError::Timeout));
        assert_eq!(cb.now(), SimTime::from_millis(50));
        // message still arrives later
        let r = b.recv_deadline(&mut cb, SimTime::from_millis(200));
        assert_eq!(r.unwrap(), b"slow");
    }

    #[test]
    fn close_detected_after_drain() {
        let (a, b) = SimChannel::loopback();
        let mut ca = VClock::new();
        let mut cb = VClock::new();
        a.send(&mut ca, b"last");
        drop(a);
        assert_eq!(b.recv(&mut cb).unwrap(), b"last");
        assert_eq!(b.recv(&mut cb), Err(RecvError::Closed));
        assert!(b.is_closed());
    }

    #[test]
    fn empty_queue_is_timeout_not_closed() {
        let (_a, b) = SimChannel::loopback();
        let mut cb = VClock::new();
        assert_eq!(b.recv(&mut cb), Err(RecvError::Timeout));
    }

    #[test]
    fn loss_on_reliable_channel_delays_not_drops() {
        let link = Link::builder()
            .latency_ms(10)
            .loss_ppm(1_000_000) // every packet "lost" → retransmit path
            .build();
        let (a, b) = SimChannel::sym(link);
        let mut ca = VClock::new();
        let mut cb = VClock::new();
        a.send(&mut ca, b"x");
        let _ = b.recv(&mut cb).unwrap();
        // one retransmit = nominal (10ms + 1-byte serialization) + 2*latency
        assert!(cb.now() >= SimTime::from_millis(30));
        assert!(cb.now() < SimTime::from_millis(31));
    }
}
