//! Point-to-point link model.
//!
//! A [`Link`] turns a message size and departure time into an arrival time:
//!
//! ```text
//! arrival = departure + latency + size/bandwidth + jitter(seed, seq)
//! ```
//!
//! Jitter is produced by a small deterministic hash of `(seed, sequence
//! number)`, so a given link replays identically on every run — which is
//! what makes the paper's feedback-loop experiments reproducible. Loss is
//! likewise deterministic per sequence number.

use crate::time::SimTime;

/// Deterministic per-link behaviour parameters.
#[derive(Debug, Clone)]
pub struct Link {
    /// One-way propagation delay.
    pub latency: SimTime,
    /// Throughput in bytes per second. `u64::MAX` means "infinite".
    pub bandwidth_bps: u64,
    /// Maximum extra delay added by jitter (uniform in `[0, jitter]`).
    pub jitter: SimTime,
    /// Packet loss probability in parts-per-million (0 = lossless).
    pub loss_ppm: u32,
    /// Seed for the deterministic jitter/loss stream.
    pub seed: u64,
    /// Per-link monotone message counter (drives jitter/loss streams).
    seq: u64,
}

impl Default for Link {
    fn default() -> Self {
        Link::builder().build()
    }
}

/// Builder for [`Link`], with LAN-like defaults (0.1 ms, 1 GB/s, lossless).
#[derive(Debug, Clone)]
pub struct LinkBuilder {
    latency: SimTime,
    bandwidth_bps: u64,
    jitter: SimTime,
    loss_ppm: u32,
    seed: u64,
}

impl LinkBuilder {
    /// One-way propagation delay.
    pub fn latency(mut self, l: SimTime) -> Self {
        self.latency = l;
        self
    }

    /// Convenience: latency in milliseconds.
    pub fn latency_ms(mut self, ms: u64) -> Self {
        self.latency = SimTime::from_millis(ms);
        self
    }

    /// Bandwidth in bytes/second.
    pub fn bandwidth_bps(mut self, b: u64) -> Self {
        self.bandwidth_bps = b.max(1);
        self
    }

    /// Convenience: bandwidth in megabits/second (the unit the paper's
    /// networks were quoted in — SuperJanet, Gigabit Testbed West).
    pub fn bandwidth_mbit(mut self, mbit: u64) -> Self {
        self.bandwidth_bps = mbit * 1_000_000 / 8;
        self
    }

    /// Maximum jitter.
    pub fn jitter(mut self, j: SimTime) -> Self {
        self.jitter = j;
        self
    }

    /// Loss in parts-per-million.
    pub fn loss_ppm(mut self, p: u32) -> Self {
        self.loss_ppm = p.min(1_000_000);
        self
    }

    /// Seed for the deterministic jitter/loss stream.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Finalize.
    pub fn build(self) -> Link {
        Link {
            latency: self.latency,
            bandwidth_bps: self.bandwidth_bps,
            jitter: self.jitter,
            loss_ppm: self.loss_ppm,
            seed: self.seed,
            seq: 0,
        }
    }
}

/// SplitMix64 — tiny, high-quality deterministic hash used for the
/// jitter/loss streams (no external RNG needed on this hot path). Shared
/// with [`crate::fault`] so injected faults draw from the same family of
/// deterministic streams.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Link {
    /// Start building a link with LAN defaults.
    pub fn builder() -> LinkBuilder {
        LinkBuilder {
            latency: SimTime::from_micros(100),
            bandwidth_bps: 1_000_000_000,
            jitter: SimTime::ZERO,
            loss_ppm: 0,
            seed: 0x5EED,
        }
    }

    /// A loopback link: zero latency, infinite bandwidth.
    pub fn loopback() -> Link {
        Link::builder()
            .latency(SimTime::ZERO)
            .bandwidth_bps(u64::MAX)
            .build()
    }

    /// A campus/metro backbone hop — the tier a fan-out relay sits on,
    /// between the origin's LAN and the wide-area links viewers ride:
    /// ~1 ms one way, 1 Gbit, negligible jitter.
    pub fn campus() -> Link {
        Link::builder()
            .latency_ms(1)
            .bandwidth_mbit(1000)
            .jitter(SimTime::from_micros(100))
            .build()
    }

    /// A link shaped like the paper's UK national network segment
    /// (Manchester–London over SuperJanet, 2003): ~5 ms one way, 155 Mbit.
    pub fn uk_janet() -> Link {
        Link::builder()
            .latency_ms(5)
            .bandwidth_mbit(155)
            .jitter(SimTime::from_micros(500))
            .build()
    }

    /// A continental-European link (Jülich–Stuttgart over G-WiN):
    /// ~10 ms one way, 622 Mbit.
    pub fn gwin() -> Link {
        Link::builder()
            .latency_ms(10)
            .bandwidth_mbit(622)
            .jitter(SimTime::from_millis(1))
            .build()
    }

    /// A generic wide-area link between European national networks —
    /// the tier a restored process reconnects its remote clients over:
    /// ~25 ms one way, 100 Mbit, noticeable jitter, trace loss.
    pub fn wan() -> Link {
        Link::builder()
            .latency_ms(25)
            .bandwidth_mbit(100)
            .jitter(SimTime::from_millis(2))
            .loss_ppm(50)
            .build()
    }

    /// A transatlantic link (Europe–Phoenix show floor): ~75 ms one way,
    /// 45 Mbit effective, mild loss — the worst case in the paper's demos.
    pub fn transatlantic() -> Link {
        Link::builder()
            .latency_ms(75)
            .bandwidth_mbit(45)
            .jitter(SimTime::from_millis(3))
            .loss_ppm(100)
            .build()
    }

    /// Serialization delay for `size` bytes at this link's bandwidth.
    pub fn transfer_time(&self, size_bytes: usize) -> SimTime {
        if self.bandwidth_bps == u64::MAX {
            return SimTime::ZERO;
        }
        // ceil(size * 1e9 / bw) without overflow for realistic sizes
        let ns = (size_bytes as u128 * 1_000_000_000u128).div_ceil(self.bandwidth_bps as u128);
        SimTime::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Deterministic jitter for the `seq`-th message.
    fn jitter_for(&self, seq: u64) -> SimTime {
        if self.jitter == SimTime::ZERO {
            return SimTime::ZERO;
        }
        let h = splitmix64(self.seed ^ seq.wrapping_mul(0xA24B_AED4_963E_E407));
        // saturating: a u64::MAX-nanos jitter must not overflow the span
        SimTime::from_nanos(h % self.jitter.as_nanos().saturating_add(1))
    }

    /// Deterministic loss decision for the `seq`-th message.
    fn lost(&self, seq: u64) -> bool {
        if self.loss_ppm == 0 {
            return false;
        }
        let h = splitmix64(self.seed.rotate_left(17) ^ seq);
        (h % 1_000_000) < self.loss_ppm as u64
    }

    /// Compute the arrival time of a `size_bytes` message departing at
    /// `departure`, consuming one sequence number. Returns `None` if the
    /// message is lost.
    pub fn deliver(&mut self, departure: SimTime, size_bytes: usize) -> Option<SimTime> {
        let seq = self.seq;
        self.seq += 1;
        if self.lost(seq) {
            return None;
        }
        Some(departure + self.latency + self.transfer_time(size_bytes) + self.jitter_for(seq))
    }

    /// Like [`Link::deliver`] but without consuming a sequence number or
    /// modeling loss/jitter — the *nominal* arrival. Useful for analytic
    /// expectations in benchmarks.
    pub fn nominal_arrival(&self, departure: SimTime, size_bytes: usize) -> SimTime {
        departure + self.latency + self.transfer_time(size_bytes)
    }

    /// One-way latency + per-byte cost summary line (human-readable).
    pub fn describe(&self) -> String {
        format!(
            "latency={} bw={}B/s jitter={} loss={}ppm",
            self.latency, self.bandwidth_bps, self.jitter, self.loss_ppm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let l = Link::builder().bandwidth_bps(1_000_000).build(); // 1 MB/s
        assert_eq!(l.transfer_time(1_000_000), SimTime::from_secs(1));
        assert_eq!(l.transfer_time(500_000), SimTime::from_millis(500));
        assert_eq!(l.transfer_time(0), SimTime::ZERO);
    }

    #[test]
    fn infinite_bandwidth_is_free() {
        let l = Link::loopback();
        assert_eq!(l.transfer_time(usize::MAX / 2), SimTime::ZERO);
    }

    #[test]
    fn delivery_is_deterministic() {
        let mk = || {
            Link::builder()
                .latency_ms(10)
                .jitter(SimTime::from_millis(2))
                .seed(42)
                .build()
        };
        let mut a = mk();
        let mut b = mk();
        for i in 0..100 {
            let t = SimTime::from_millis(i);
            assert_eq!(a.deliver(t, 128), b.deliver(t, 128));
        }
    }

    #[test]
    fn jitter_bounded() {
        let mut l = Link::builder()
            .latency_ms(5)
            .jitter(SimTime::from_millis(2))
            .bandwidth_bps(u64::MAX)
            .build();
        for _ in 0..1000 {
            let arr = l.deliver(SimTime::ZERO, 0).unwrap();
            assert!(arr >= SimTime::from_millis(5));
            assert!(arr <= SimTime::from_millis(7));
        }
    }

    #[test]
    fn loss_rate_approximates_ppm() {
        let mut l = Link::builder().loss_ppm(100_000).seed(7).build(); // 10%
        let lost = (0..10_000)
            .filter(|_| l.deliver(SimTime::ZERO, 1).is_none())
            .count();
        // within a generous band around 1000/10000
        assert!((700..1300).contains(&lost), "lost={lost}");
    }

    #[test]
    fn lossless_never_drops() {
        let mut l = Link::uk_janet();
        for _ in 0..1000 {
            assert!(l.deliver(SimTime::ZERO, 1500).is_some());
        }
    }

    #[test]
    fn presets_are_ordered_by_distance() {
        assert!(Link::campus().latency < Link::uk_janet().latency);
        assert!(Link::uk_janet().latency < Link::gwin().latency);
        assert!(Link::gwin().latency < Link::wan().latency);
        assert!(Link::wan().latency < Link::transatlantic().latency);
        assert!(Link::wan().bandwidth_bps > Link::transatlantic().bandwidth_bps);
    }
}
