//! Pool-dispatch latency: persistent workers vs spawn-per-pass.
//!
//! The workload is shaped like one LBM step — three dependent passes over a
//! node array with a neighbour stencil — dispatched two ways at each thread
//! count: `spawn` creates fresh OS threads per pass (what the tree did
//! before `gridsteer_exec`), `pool` reuses the persistent workers. Both
//! legs run the identical chunk mapping, so their outputs are bit-identical
//! and only the dispatch overhead differs.
//!
//! With `BENCH_JSON=1` the bench also writes `BENCH_pool.json`
//! (per-cell mean ns plus an output digest) next to the working directory
//! or under `BENCH_JSON_DIR`.

use criterion::{criterion_group, criterion_main, Criterion};
use gridsteer_exec::ExecPool;
use std::hint::black_box;
use std::time::{Duration, Instant};

const NODES: usize = 32 * 32 * 32;
const PLANE: usize = 32 * 32;

/// One three-pass "step" over the buffers with plane-aligned chunks —
/// the dispatch pattern of `lbm::TwoFluidLbm::step`.
fn step(pool: &ExecPool, rho: &mut [f64], vel: &mut [f64], out: &mut [f64]) {
    let src: Vec<f64> = rho.to_vec();
    pool.parallel_chunks(rho, PLANE, |ci, chunk| {
        let start = ci * PLANE;
        for (k, r) in chunk.iter_mut().enumerate() {
            let n = start + k;
            *r = src[n] + src[(n + PLANE) % NODES] + src[(n + NODES - PLANE) % NODES];
        }
    });
    let rho_ro: &[f64] = rho;
    pool.parallel_chunks(vel, PLANE, |ci, chunk| {
        let start = ci * PLANE;
        for (k, v) in chunk.iter_mut().enumerate() {
            let n = start + k;
            *v = rho_ro[n] * 0.25 + rho_ro[(n + 1) % NODES] * 0.125;
        }
    });
    let vel_ro: &[f64] = vel;
    pool.parallel_chunks(out, PLANE, |ci, chunk| {
        let start = ci * PLANE;
        for (k, o) in chunk.iter_mut().enumerate() {
            let n = start + k;
            *o = 0.5 * (rho_ro[n] + vel_ro[(n + PLANE) % NODES]);
        }
    });
}

fn buffers() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let rho: Vec<f64> = (0..NODES).map(|i| (i % 97) as f64 * 0.01).collect();
    (rho, vec![0.0; NODES], vec![0.0; NODES])
}

fn fnv64(data: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn time_step(pool: &ExecPool) -> (f64, u64) {
    let (mut rho, mut vel, mut out) = buffers();
    // warmup
    step(pool, &mut rho, &mut vel, &mut out);
    let iters = 30u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        step(pool, &mut rho, &mut vel, &mut out);
    }
    let mean_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    (mean_ns, fnv64(&out))
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_vs_spawn");
    g.measurement_time(Duration::from_secs(1)).sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let pool = ExecPool::new(threads);
        let spawn = ExecPool::spawn_per_call(threads);
        let (mut rho, mut vel, mut out) = buffers();
        g.bench_function(format!("step_pool_t{threads}"), |b| {
            b.iter(|| {
                step(&pool, &mut rho, &mut vel, &mut out);
                black_box(out[0])
            })
        });
        let (mut rho, mut vel, mut out) = buffers();
        g.bench_function(format!("step_spawn_t{threads}"), |b| {
            b.iter(|| {
                step(&spawn, &mut rho, &mut vel, &mut out);
                black_box(out[0])
            })
        });
    }
    g.finish();
}

/// Machine-readable trajectory: one cell per (dispatch, threads) pair.
/// Gated like the exp binaries: `BENCH_JSON` set to anything but `0`.
fn emit_json() {
    if !std::env::var("BENCH_JSON").is_ok_and(|v| !v.is_empty() && v != "0") {
        return;
    }
    let mut cells = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        for (kind, pool) in [
            ("pool", ExecPool::new(threads)),
            ("spawn", ExecPool::spawn_per_call(threads)),
        ] {
            let (ns, digest) = time_step(&pool);
            cells.push(format!(
                "{{\"cell\":\"step_{kind}_t{threads}\",\"mean_ns\":{ns:.0},\"digest\":\"{digest:016x}\"}}"
            ));
        }
    }
    let body = format!("{{\"id\":\"pool\",\"cells\":[{}]}}\n", cells.join(","));
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_pool.json");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("BENCH_pool.json write failed: {e}");
    } else {
        eprintln!("wrote {}", path.display());
    }
}

fn bench_json(_c: &mut Criterion) {
    emit_json();
}

criterion_group!(benches, bench_dispatch, bench_json);
criterion_main!(benches);
