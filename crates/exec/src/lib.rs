//! # gridsteer_exec — the shared deterministic parallel executor
//!
//! Every hot path in the tree (LBM passes, PEPC force evaluation, the viz
//! rasterizer/isosurface/codec) dispatches through one persistent worker
//! pool instead of spawning OS threads per pass. The pool provides a scoped
//! `parallel_for` / `parallel_chunks` API with a **determinism contract**:
//!
//! * **Fixed chunk→index mapping.** Work is split into chunks whose
//!   boundaries depend only on the input length and the caller-chosen grain
//!   — never on the pool's thread count. Which worker executes which chunk
//!   is scheduling noise; *what* each chunk computes and *where* it writes
//!   is fixed.
//! * **Disjoint outputs.** Each chunk owns a disjoint `&mut` slice of the
//!   output, so there are no write races to order.
//! * **Ordered reduction.** [`ExecPool::map`] returns one result slot per
//!   chunk, in chunk order; callers fold that `Vec` sequentially, so
//!   floating-point reductions associate identically for any thread count.
//!
//! Together these guarantee **bit-identical results at any thread count**,
//! which is what lets the CI determinism matrix run the whole test suite at
//! `EXEC_THREADS=1` and `EXEC_THREADS=8` and demand equal bytes.
//!
//! ## Thread-count resolution
//!
//! [`default_threads`] auto-detects `available_parallelism()`, clamps it to
//! [`MAX_AUTO_THREADS`], and honours an explicit `EXEC_THREADS` environment
//! override for reproducible runs. Config structs across the tree default
//! their `threads` field to this value; an explicitly set field still wins
//! (it is passed to [`shared`] verbatim).
//!
//! ## Pool sharing
//!
//! [`shared`] hands out process-wide pools keyed by thread count, so every
//! simulation, scenario run and `exp_*` binary that asks for the same
//! parallelism reuses one set of persistent workers instead of re-spawning.
//! [`global`] is the default-sized shared pool.

use std::cell::Cell;
use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Cap applied to the *auto-detected* thread count. An explicit request
/// (config field or `EXEC_THREADS`) may exceed it.
pub const MAX_AUTO_THREADS: usize = 8;

/// The auto-detected-but-overridable default worker count:
/// `EXEC_THREADS` if set and parseable, else `available_parallelism()`
/// clamped to `1..=MAX_AUTO_THREADS`.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("EXEC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_AUTO_THREADS)
}

/// Resolve a config `threads` field: `0` means "use the default".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        default_threads()
    } else {
        requested
    }
}

static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ExecPool>>>> = OnceLock::new();

/// The process-wide shared pool for `threads` workers (`0` = default).
/// Pools are created on first use and persist for the process lifetime, so
/// all subsystems asking for the same parallelism share one worker set.
pub fn shared(threads: usize) -> Arc<ExecPool> {
    let t = resolve_threads(threads);
    let mut map = lock(POOLS.get_or_init(Default::default));
    map.entry(t)
        .or_insert_with(|| Arc::new(ExecPool::new(t)))
        .clone()
}

/// The default-sized shared pool (see [`default_threads`]).
pub fn global() -> Arc<ExecPool> {
    shared(0)
}

/// A job published to the workers: a type- and lifetime-erased task closure
/// plus its chunk counter. Sound because [`ExecPool::run`] does not return
/// until every worker has detached from the job, and clears the slot before
/// the referenced stack frames die.
#[derive(Clone, Copy)]
struct RawJob {
    task: *const (dyn Fn(usize) + Sync),
    count: usize,
    next: *const AtomicUsize,
    panic_slot: *const PanicSlot,
}
// SAFETY: the raw pointers reference stack frames the dispatcher keeps
// alive until every worker detaches (see run_persistent's barrier).
unsafe impl Send for RawJob {}

/// First caught task-panic payload; re-raised by the dispatcher so the
/// original message survives parallel dispatch.
type PanicSlot = Mutex<Option<Box<dyn std::any::Any + Send>>>;

struct Slot {
    /// Bumped once per published job so sleeping workers can tell a new job
    /// from a spurious wakeup.
    epoch: u64,
    job: Option<RawJob>,
    /// Workers currently holding a copy of `job`.
    attached: usize,
    shutdown: bool,
}

struct Shared {
    /// Held for the duration of one dispatch: concurrent `run` calls on a
    /// shared pool serialize here (tasks of one job never interleave with
    /// another job's).
    dispatch: Mutex<()>,
    slot: Mutex<Slot>,
    /// Workers wait here for the next job.
    work_cv: Condvar,
    /// The dispatcher waits here for every attached worker to detach.
    done_cv: Condvar,
}

enum Backend {
    /// Persistent workers parked on a condvar between jobs.
    Persistent {
        shared: Arc<Shared>,
        workers: Vec<JoinHandle<()>>,
    },
    /// Fresh OS threads per dispatch — the overhead the persistent pool
    /// exists to remove. Kept only as the measurable baseline for the
    /// `pool` criterion bench; results are identical to `Persistent`.
    SpawnPerCall,
}

/// A persistent, deterministic worker pool (see the crate docs for the
/// determinism contract). The dispatching thread always participates in
/// the work, so a 1-thread pool runs jobs inline with zero synchronization.
pub struct ExecPool {
    threads: usize,
    backend: Backend,
}

// Tasks running on this thread must not re-dispatch to the pool (the
// dispatch lock is not reentrant); nested calls run inline instead.
thread_local! {
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A task panic is caught outside the lock, so poisoning can only come
    // from a panic in the pool's own bookkeeping; recover rather than
    // cascade.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ExecPool {
    /// A pool of `threads` total workers (the dispatching thread counts as
    /// one, so this spawns `threads - 1` OS threads). `0` means
    /// [`default_threads`].
    pub fn new(threads: usize) -> ExecPool {
        let threads = resolve_threads(threads);
        if threads <= 1 {
            return ExecPool {
                threads: 1,
                backend: Backend::Persistent {
                    shared: Arc::new(Shared::new()),
                    workers: Vec::new(),
                },
            };
        }
        let shared = Arc::new(Shared::new());
        let workers = (1..threads)
            .map(|i| {
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("exec-worker-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn pool worker")
            })
            .collect();
        ExecPool {
            threads,
            backend: Backend::Persistent { shared, workers },
        }
    }

    /// A spawn-per-dispatch pool: every [`ExecPool::run`] call creates and
    /// joins fresh OS threads, exactly like the per-pass
    /// `crossbeam::thread::scope` code this crate replaced. This is the
    /// baseline leg of the `pool` bench — not for production use.
    pub fn spawn_per_call(threads: usize) -> ExecPool {
        ExecPool {
            threads: resolve_threads(threads).max(1),
            backend: Backend::SpawnPerCall,
        }
    }

    /// Total worker count (including the dispatching thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `count` independent tasks, `task(i)` for `i in 0..count`, across
    /// the pool. Blocks until all tasks finish. Task index → work mapping
    /// is the caller's; which thread runs which index is unspecified, so
    /// tasks must write only to disjoint data (the `parallel_*` helpers
    /// guarantee this). Panics if any task panicked. Nested calls from
    /// inside a task run inline on the calling thread.
    pub fn run<F: Fn(usize) + Sync>(&self, count: usize, task: F) {
        if count == 0 {
            return;
        }
        let serial = count == 1 || self.threads == 1 || IN_TASK.with(Cell::get);
        if serial {
            let was = IN_TASK.with(|t| t.replace(true));
            let result = catch_unwind(AssertUnwindSafe(|| {
                for i in 0..count {
                    task(i);
                }
            }));
            IN_TASK.with(|t| t.set(was));
            if let Err(p) = result {
                std::panic::resume_unwind(p);
            }
            return;
        }
        match &self.backend {
            Backend::Persistent { shared, .. } => self.run_persistent(shared, count, &task),
            Backend::SpawnPerCall => self.run_spawning(count, &task),
        }
    }

    fn run_persistent(&self, shared: &Shared, count: usize, task: &(dyn Fn(usize) + Sync)) {
        let _dispatch = lock(&shared.dispatch);
        let next = AtomicUsize::new(0);
        let panic_slot: PanicSlot = Mutex::new(None);
        let job = RawJob {
            // erase the borrow lifetime; see RawJob's safety comment
            task: unsafe {
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    task as *const _,
                )
            },
            count,
            next: &next,
            panic_slot: &panic_slot,
        };
        {
            let mut slot = lock(&shared.slot);
            debug_assert!(slot.job.is_none(), "concurrent dispatch on one pool");
            slot.epoch += 1;
            slot.job = Some(job);
            shared.work_cv.notify_all();
        }
        // The dispatcher is a full participant.
        drain(task, count, &next, &panic_slot);
        // Wait for every worker that picked the job up, then retire it so a
        // late-waking worker can never observe dangling pointers.
        let mut slot = lock(&shared.slot);
        while slot.attached > 0 {
            slot = shared.done_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
        slot.job = None;
        drop(slot);
        let payload = lock(&panic_slot).take();
        if let Some(p) = payload {
            std::panic::resume_unwind(p); // original payload, original message
        }
    }

    fn run_spawning(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        let next = AtomicUsize::new(0);
        let panic_slot: PanicSlot = Mutex::new(None);
        std::thread::scope(|s| {
            for _ in 1..self.threads {
                s.spawn(|| drain(task, count, &next, &panic_slot));
            }
            drain(task, count, &next, &panic_slot);
        });
        let payload = lock(&panic_slot).take();
        if let Some(p) = payload {
            std::panic::resume_unwind(p);
        }
    }

    /// Parallel iteration over `0..len` in fixed chunks of `grain`
    /// consecutive indices: `f` receives each half-open range. Chunk
    /// boundaries depend only on `len` and `grain`, never on the thread
    /// count.
    pub fn parallel_for<F: Fn(Range<usize>) + Sync>(&self, len: usize, grain: usize, f: F) {
        let grain = grain.max(1);
        let tasks = len.div_ceil(grain);
        self.run(tasks, move |i| {
            let start = i * grain;
            f(start..(start + grain).min(len));
        });
    }

    /// Split `data` into fixed chunks of `chunk_len` elements (last chunk
    /// may be short) and run `f(chunk_index, chunk)` for each in parallel.
    pub fn parallel_chunks<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let len = data.len();
        let cl = chunk_len.max(1);
        let tasks = len.div_ceil(cl);
        let base = SendPtr(data.as_mut_ptr());
        self.run(tasks, move |i| {
            let start = i * cl;
            let n = cl.min(len - start);
            // disjoint by construction: chunk i covers [i*cl, i*cl + n)
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.add(start), n) };
            f(i, chunk);
        });
    }

    /// Like [`ExecPool::parallel_chunks`] but over two slices chunked with
    /// identical chunk *counts*: chunk `i` covers `a[i*ca ..]` and
    /// `b[i*cb ..]`. Panics if the chunk counts disagree.
    pub fn parallel_chunks2<T, U, F>(
        &self,
        a: &mut [T],
        b: &mut [U],
        chunk_len_a: usize,
        chunk_len_b: usize,
        f: F,
    ) where
        T: Send,
        U: Send,
        F: Fn(usize, &mut [T], &mut [U]) + Sync,
    {
        let (la, lb) = (a.len(), b.len());
        let ca = chunk_len_a.max(1);
        let cb = chunk_len_b.max(1);
        let tasks = la.div_ceil(ca);
        assert_eq!(
            tasks,
            lb.div_ceil(cb),
            "parallel_chunks2: slices disagree on chunk count"
        );
        let pa = SendPtr(a.as_mut_ptr());
        let pb = SendPtr(b.as_mut_ptr());
        self.run(tasks, move |i| {
            let (sa, sb) = (i * ca, i * cb);
            let (na, nb) = (ca.min(la - sa), cb.min(lb - sb));
            // SAFETY: chunk i of each slice covers [i*c, i*c + n) — the
            // regions handed to distinct tasks are disjoint by construction.
            let chunk_a = unsafe { std::slice::from_raw_parts_mut(pa.add(sa), na) };
            let chunk_b = unsafe { std::slice::from_raw_parts_mut(pb.add(sb), nb) };
            f(i, chunk_a, chunk_b);
        });
    }

    /// Run `tasks` independent tasks and collect their results **in task
    /// order** — the ordered-reduction primitive: fold the returned `Vec`
    /// sequentially and the reduction order is independent of the thread
    /// count.
    pub fn map<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = Vec::new();
        out.resize_with(tasks, || None);
        {
            let base = SendPtr(out.as_mut_ptr());
            self.run(tasks, move |i| {
                // SAFETY: task i writes only slot i; slots are disjoint
                // and `out` outlives the scoped dispatch.
                let slot = unsafe { &mut *base.add(i) };
                *slot = Some(f(i));
            });
        }
        out.into_iter()
            .map(|r| r.expect("pool task completed"))
            .collect()
    }
}

/// A mutable slice pre-split into fixed chunks that [`ExecPool::run`]
/// tasks claim by index — the n-buffer companion to
/// [`ExecPool::parallel_chunks2`]. A structure-of-arrays kernel updates
/// many parallel buffers per chunk (six velocity components, nineteen
/// distribution rows); rather than grow a `parallel_chunksN` for every
/// arity, each buffer wraps itself in a `DisjointChunks` and the task for
/// chunk `ci` claims `ci` from each:
///
/// ```
/// # use gridsteer_exec::{ExecPool, DisjointChunks};
/// let pool = ExecPool::new(2);
/// let (mut a, mut b, mut c) = (vec![0u64; 64], vec![0u64; 64], vec![0u64; 64]);
/// let (da, db, dc) = (
///     DisjointChunks::new(&mut a, 16),
///     DisjointChunks::new(&mut b, 16),
///     DisjointChunks::new(&mut c, 16),
/// );
/// pool.run(da.chunk_count(), |ci| {
///     let (ca, cb, cc) = (da.claim(ci), db.claim(ci), dc.claim(ci));
///     for k in 0..ca.len() {
///         ca[k] = ci as u64;
///         cb[k] = 1;
///         cc[k] = 2;
///     }
/// });
/// assert_eq!(a[17], 1);
/// ```
///
/// Soundness is enforced at runtime: each chunk index is claimable exactly
/// once per `DisjointChunks` (an atomic turnstile per chunk), so two tasks
/// — or one task calling twice — can never hold aliasing `&mut` chunks;
/// the second claim panics. The chunk map is fixed by `(len, chunk_len)`
/// alone, preserving the pool's thread-count-independence contract.
pub struct DisjointChunks<'a, T> {
    base: SendPtr<T>,
    len: usize,
    chunk_len: usize,
    taken: Vec<AtomicBool>,
    _borrow: std::marker::PhantomData<&'a mut [T]>,
}

impl<'a, T: Send> DisjointChunks<'a, T> {
    /// Split `data` into chunks of `chunk_len` (the last may be short).
    pub fn new(data: &'a mut [T], chunk_len: usize) -> DisjointChunks<'a, T> {
        let chunk_len = chunk_len.max(1);
        let chunks = data.len().div_ceil(chunk_len);
        let mut taken = Vec::with_capacity(chunks);
        taken.resize_with(chunks, || AtomicBool::new(false));
        DisjointChunks {
            base: SendPtr(data.as_mut_ptr()),
            len: data.len(),
            chunk_len,
            taken,
            _borrow: std::marker::PhantomData,
        }
    }

    /// Number of chunks (pass to [`ExecPool::run`]).
    pub fn chunk_count(&self) -> usize {
        self.taken.len()
    }

    /// Element range covered by chunk `ci`.
    pub fn range(&self, ci: usize) -> Range<usize> {
        let start = ci * self.chunk_len;
        start..(start + self.chunk_len).min(self.len)
    }

    /// Claim chunk `ci`, exactly once. Panics on out-of-range or repeat
    /// claims — the aliasing guard that keeps this API safe.
    #[allow(clippy::mut_from_ref)] // one &mut per chunk, enforced by the turnstile below
    pub fn claim(&self, ci: usize) -> &mut [T] {
        assert!(
            !self.taken[ci].swap(true, Ordering::AcqRel),
            "chunk {ci} claimed twice"
        );
        let r = self.range(ci);
        // SAFETY: the turnstile above hands each chunk out at most once,
        // chunk regions are disjoint by construction, and the PhantomData
        // borrow keeps the underlying slice alive and exclusively ours.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(r.start), r.len()) }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        if let Backend::Persistent { shared, workers } = &mut self.backend {
            {
                let mut slot = lock(&shared.slot);
                slot.shutdown = true;
                shared.work_cv.notify_all();
            }
            for w in workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("threads", &self.threads)
            .field(
                "persistent",
                &matches!(self.backend, Backend::Persistent { .. }),
            )
            .finish()
    }
}

impl Shared {
    fn new() -> Shared {
        Shared {
            dispatch: Mutex::new(()),
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                attached: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }
}

/// Claim and run task indices until the counter is exhausted.
fn drain(task: &(dyn Fn(usize) + Sync), count: usize, next: &AtomicUsize, panic_slot: &PanicSlot) {
    let was = IN_TASK.with(|t| t.replace(true));
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= count {
            break;
        }
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| task(i))) {
            let mut slot = lock(panic_slot);
            // keep the first payload; later panics are dropped
            slot.get_or_insert(p);
        }
    }
    IN_TASK.with(|t| t.set(was));
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = lock(&shared.slot);
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen {
                    if let Some(job) = slot.job {
                        seen = slot.epoch;
                        slot.attached += 1;
                        break job;
                    }
                    // the job this epoch was already retired; skip it
                    seen = slot.epoch;
                }
                slot = shared.work_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Pointers stay valid while we are attached: the dispatcher blocks
        // until `attached == 0` before retiring the job.
        unsafe {
            drain(&*job.task, job.count, &*job.next, &*job.panic_slot);
        }
        let mut slot = lock(&shared.slot);
        slot.attached -= 1;
        if slot.attached == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A raw pointer that may cross threads. Safety rests on the chunk math in
/// the `parallel_*` helpers handing out disjoint regions. Accessed only
/// through [`SendPtr::add`] so closures capture the wrapper (with its
/// `Sync` impl), not the bare pointer field.
struct SendPtr<T>(*mut T);
// SAFETY: see above — disjoint-region chunk math is the whole contract.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: same contract; shared references only ever read the pointer value.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// `self.0 + n` elements. Caller guarantees the offset stays in bounds
    /// and the resulting region is not aliased by another task.
    fn add(&self, n: usize) -> *mut T {
        unsafe { self.0.add(n) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_pool(threads: usize) -> ExecPool {
        ExecPool::new(threads)
    }

    #[test]
    fn run_covers_every_index_exactly_once() {
        let pool = counting_pool(4);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = counting_pool(4);
        pool.run(0, |_| panic!("must not run"));
        pool.parallel_for(0, 8, |_| panic!("must not run"));
        let empty: Vec<u64> = pool.map(0, |i| i as u64);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_slice_chunks_are_a_noop() {
        let pool = counting_pool(4);
        let mut data: Vec<u32> = Vec::new();
        pool.parallel_chunks(&mut data, 16, |_, _| panic!("must not run"));
        let mut a: Vec<u32> = Vec::new();
        let mut b: Vec<u8> = Vec::new();
        pool.parallel_chunks2(&mut a, &mut b, 4, 8, |_, _, _| panic!("must not run"));
    }

    #[test]
    fn more_threads_than_tasks() {
        // threads > chunk count: extra workers find the counter exhausted
        let pool = counting_pool(8);
        let mut data = vec![0u32; 3];
        pool.parallel_chunks(&mut data, 1, |i, c| c[0] = i as u32 + 1);
        assert_eq!(data, vec![1, 2, 3]);
    }

    #[test]
    fn single_element_slice() {
        let pool = counting_pool(4);
        let mut data = vec![7u64];
        pool.parallel_chunks(&mut data, 100, |i, c| {
            assert_eq!(i, 0);
            c[0] *= 2;
        });
        assert_eq!(data, vec![14]);
    }

    #[test]
    fn parallel_for_ranges_tile_exactly() {
        let pool = counting_pool(3);
        let seen = Mutex::new(vec![false; 23]);
        pool.parallel_for(23, 5, |r| {
            assert!(r.len() <= 5 && !r.is_empty());
            let mut s = lock(&seen);
            for i in r {
                assert!(!s[i], "index {i} covered twice");
                s[i] = true;
            }
        });
        assert!(lock(&seen).iter().all(|&b| b));
    }

    #[test]
    fn ragged_tail_chunk_is_short() {
        let pool = counting_pool(2);
        let mut data = vec![0u8; 10];
        let sizes = Mutex::new(Vec::new());
        pool.parallel_chunks(&mut data, 4, |i, c| {
            lock(&sizes).push((i, c.len()));
        });
        let mut s = lock(&sizes).clone();
        s.sort();
        assert_eq!(s, vec![(0, 4), (1, 4), (2, 2)]);
    }

    #[test]
    fn chunks2_pairs_matching_chunks() {
        let pool = counting_pool(4);
        let mut nodes = vec![0u32; 12];
        let mut wide = vec![0u32; 36]; // 3 per node
        pool.parallel_chunks2(&mut nodes, &mut wide, 4, 12, |i, a, b| {
            for v in a.iter_mut() {
                *v = i as u32;
            }
            for v in b.iter_mut() {
                *v = 10 + i as u32;
            }
        });
        assert_eq!(nodes, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        assert!(wide[..12].iter().all(|&v| v == 10));
        assert!(wide[24..].iter().all(|&v| v == 12));
    }

    #[test]
    #[should_panic(expected = "disagree on chunk count")]
    fn chunks2_mismatched_counts_panic() {
        let pool = counting_pool(2);
        let mut a = vec![0u8; 10];
        let mut b = vec![0u8; 10];
        pool.parallel_chunks2(&mut a, &mut b, 2, 5, |_, _, _| {});
    }

    #[test]
    fn map_preserves_task_order() {
        let pool = counting_pool(4);
        let out = pool.map(50, |i| i * i);
        assert_eq!(out, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // the determinism contract, end to end: fixed grain, ordered fold
        let work = |pool: &ExecPool| -> (Vec<f64>, f64) {
            let partials = pool.map(10, |i| {
                let mut s = 0.0f64;
                for k in 0..100 {
                    s += ((i * 100 + k) as f64).sqrt();
                }
                s
            });
            let total = partials.iter().fold(0.0, |a, b| a + b); // ordered
            (partials, total)
        };
        let (p1, t1) = work(&counting_pool(1));
        let (p4, t4) = work(&counting_pool(4));
        let (p8, t8) = work(&counting_pool(8));
        assert_eq!(p1, p4);
        assert_eq!(p1, p8);
        assert_eq!(t1.to_bits(), t4.to_bits());
        assert_eq!(t1.to_bits(), t8.to_bits());
    }

    #[test]
    fn spawn_per_call_matches_persistent() {
        let a = counting_pool(4);
        let b = ExecPool::spawn_per_call(4);
        let mut va = vec![0u64; 100];
        let mut vb = vec![0u64; 100];
        a.parallel_chunks(&mut va, 7, |i, c| {
            for (k, v) in c.iter_mut().enumerate() {
                *v = (i * 1000 + k) as u64;
            }
        });
        b.parallel_chunks(&mut vb, 7, |i, c| {
            for (k, v) in c.iter_mut().enumerate() {
                *v = (i * 1000 + k) as u64;
            }
        });
        assert_eq!(va, vb);
    }

    #[test]
    fn pool_survives_many_dispatches() {
        let pool = counting_pool(4);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run(16, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 500 * 16);
    }

    #[test]
    fn task_panic_propagates_and_pool_remains_usable() {
        let pool = counting_pool(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
            })
        }));
        // the original payload must survive parallel dispatch, so a
        // diagnostic message is never reduced to a generic wrapper
        let payload = r.expect_err("panic must propagate to the dispatcher");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        // the pool still works afterwards
        let out = pool.map(4, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        let pool = Arc::new(counting_pool(4));
        let inner_total = AtomicUsize::new(0);
        let p2 = pool.clone();
        pool.run(4, |_| {
            // would deadlock if it tried to take the dispatch path
            p2.run(4, |_| {
                inner_total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn shared_registry_reuses_pools() {
        let a = shared(3);
        let b = shared(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.threads(), 3);
        let g = global();
        assert_eq!(g.threads(), default_threads());
    }

    #[test]
    fn resolve_and_default_threads_sane() {
        assert!(default_threads() >= 1);
        assert_eq!(resolve_threads(5), 5);
        assert_eq!(resolve_threads(0), default_threads());
    }

    #[test]
    fn concurrent_dispatchers_on_one_pool_serialize() {
        // two threads hammering the same shared pool: dispatches must
        // serialize, never interleave or corrupt each other's jobs
        let pool = Arc::new(counting_pool(4));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let p = pool.clone();
                let t = total.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        p.run(8, |_| {
                            t.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 3 * 100 * 8);
    }

    #[test]
    fn concurrent_dispatchers_on_distinct_pools() {
        // two threads driving two pools at once must not interfere
        let p1 = Arc::new(counting_pool(4));
        let p2 = Arc::new(counting_pool(4));
        let t1 = {
            let p = p1.clone();
            std::thread::spawn(move || {
                let mut v = vec![0u32; 1000];
                for _ in 0..50 {
                    p.parallel_chunks(&mut v, 100, |i, c| {
                        for x in c.iter_mut() {
                            *x = x.wrapping_add(i as u32);
                        }
                    });
                }
                v
            })
        };
        let mut v2 = vec![0u32; 1000];
        for _ in 0..50 {
            p2.parallel_chunks(&mut v2, 100, |i, c| {
                for x in c.iter_mut() {
                    *x = x.wrapping_add(i as u32);
                }
            });
        }
        let v1 = t1.join().unwrap();
        assert_eq!(v1, v2);
    }

    #[test]
    fn disjoint_chunks_cover_multiple_buffers_per_chunk() {
        let pool = counting_pool(4);
        let mut a = vec![0u64; 103]; // last chunk short
        let mut b = vec![0u64; 103];
        {
            let da = DisjointChunks::new(&mut a, 16);
            let db = DisjointChunks::new(&mut b, 16);
            assert_eq!(da.chunk_count(), 7);
            assert_eq!(da.range(6), 96..103);
            pool.run(da.chunk_count(), |ci| {
                let (ca, cb) = (da.claim(ci), db.claim(ci));
                for (k, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    *x = (ci * 16 + k) as u64;
                    *y = 2 * (ci * 16 + k) as u64;
                }
            });
        }
        assert!(a.iter().enumerate().all(|(i, &v)| v == i as u64));
        assert!(b.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn disjoint_chunk_double_claim_panics() {
        let mut a = vec![0u8; 32];
        let d = DisjointChunks::new(&mut a, 8);
        let _first = d.claim(1);
        let _second = d.claim(1);
    }
}
