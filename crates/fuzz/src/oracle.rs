//! The invariant oracle: replay a scenario, judge its report.
//!
//! [`audit_with`] runs one scenario twice — on a 1-thread and an 8-thread
//! executor pool — and checks every invariant the harness promises. The
//! in-run structural probes (master-token uniqueness, monitor seq
//! monotonicity, stale-seq commits) ride in
//! [`ScenarioReport::probe_violations`], which is deliberately excluded
//! from the digest, so probing never perturbs what it measures.
//!
//! The [`Runner`] seam exists for the shrinker's tests: a sabotaged runner
//! injects a fault (e.g. an extra applied steer on the wide pool) and the
//! whole catch → shrink → corpus pipeline is exercised against it without
//! touching the real engine.

use gridsteer_harness::{Action, Scenario, ScenarioReport};
use netsim::SimTime;
use std::collections::BTreeSet;
use std::fmt;

/// Quiet margin a clean crash chain requires between the last ordinary
/// action and the checkpoint cut: worst-case transit on the slowest preset
/// link (75 ms transatlantic) plus generated jitter, rounded up hard.
pub const CHAIN_MARGIN: SimTime = SimTime::from_millis(200);

/// The properties the oracle checks on every generated scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Invariant {
    /// Report digest identical at 1 and 8 executor threads.
    ThreadDigest,
    /// Exactly one master per non-empty shard at every sample tick.
    MasterToken,
    /// No steer batch commits at/below its origin's high-water seq.
    StaleSeq,
    /// `broadcasts + broadcasts_skipped` equals the scheduled tick count.
    LoopAccounting,
    /// Viewer frame seqs strictly increase between (re)attachments.
    MonitorSeq,
    /// A clean checkpoint/crash/restore chain replays byte-identically
    /// to the same scenario without the crash.
    CrashRestore,
}

impl Invariant {
    /// Every invariant, in a fixed order.
    pub const ALL: [Invariant; 6] = [
        Invariant::ThreadDigest,
        Invariant::MasterToken,
        Invariant::StaleSeq,
        Invariant::LoopAccounting,
        Invariant::MonitorSeq,
        Invariant::CrashRestore,
    ];

    /// Stable name, used in corpus `#! check:` headers.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::ThreadDigest => "thread-digest",
            Invariant::MasterToken => "master-token",
            Invariant::StaleSeq => "stale-seq",
            Invariant::LoopAccounting => "loop-accounting",
            Invariant::MonitorSeq => "monitor-seq",
            Invariant::CrashRestore => "crash-restore",
        }
    }

    /// Inverse of [`Invariant::name`].
    pub fn from_name(name: &str) -> Option<Invariant> {
        Invariant::ALL.into_iter().find(|i| i.name() == name)
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observed invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// Human-readable evidence (probe string, digest pair, counts).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// How the oracle executes a scenario. The seam the shrinker tests use to
/// inject faults.
pub trait Runner {
    /// Run `s` on an executor pool of the given width.
    fn run(&self, s: &Scenario, threads: usize) -> ScenarioReport;
}

/// The real engine: `Scenario::run` on a shared [`gridsteer_exec`] pool.
pub struct PoolRunner;

impl Runner for PoolRunner {
    fn run(&self, s: &Scenario, threads: usize) -> ScenarioReport {
        s.clone().pool(gridsteer_exec::shared(threads)).run()
    }
}

/// The oracle's full verdict on one scenario.
#[derive(Debug, Clone)]
pub struct Audit {
    /// The serial (1-thread) report digest — the scenario's identity for
    /// cross-process comparison (soak folds these).
    pub digest: String,
    /// Every invariant violation found; empty on a healthy scenario.
    pub violations: Vec<Violation>,
}

/// [`audit_with`] on the real engine, violations only.
pub fn check(s: &Scenario) -> Vec<Violation> {
    audit_with(&PoolRunner, s).violations
}

/// [`audit_with`] on a custom runner, violations only.
pub fn check_with<R: Runner + ?Sized>(runner: &R, s: &Scenario) -> Vec<Violation> {
    audit_with(runner, s).violations
}

/// Run the full invariant suite against one well-formed scenario.
///
/// Panics if `s.validate()` fails — generate feeds this only valid
/// scenarios, and corpus files are validated at parse time.
pub fn audit_with<R: Runner + ?Sized>(runner: &R, s: &Scenario) -> Audit {
    s.validate()
        .expect("oracle requires a well-formed scenario");
    let r1 = runner.run(s, 1);
    let r8 = runner.run(s, 8);
    let mut violations = Vec::new();

    if r1.digest() != r8.digest() {
        violations.push(Violation {
            invariant: Invariant::ThreadDigest,
            detail: format!(
                "digest {} at 1 thread vs {} at 8 threads",
                r1.digest(),
                r8.digest()
            ),
        });
    }

    // structural probes from either run (probe strings are not part of
    // the digest, so a wide-pool-only violation needs its own scan)
    let probes: BTreeSet<&str> = r1
        .probe_violations
        .iter()
        .chain(r8.probe_violations.iter())
        .map(String::as_str)
        .collect();
    for probe in probes {
        let invariant = if probe.contains("masters") {
            Invariant::MasterToken
        } else if probe.contains("stale-seq") {
            Invariant::StaleSeq
        } else {
            Invariant::MonitorSeq
        };
        violations.push(Violation {
            invariant,
            detail: probe.to_string(),
        });
    }

    let scheduled = s.ticks();
    if r1.broadcasts + r1.broadcasts_skipped != scheduled {
        violations.push(Violation {
            invariant: Invariant::LoopAccounting,
            detail: format!(
                "{} broadcasts + {} skipped != {scheduled} scheduled ticks",
                r1.broadcasts, r1.broadcasts_skipped
            ),
        });
    }

    if clean_crash_chain(s) {
        let twin = strip_crash_chain(s);
        let rt = runner.run(&twin, 1);
        if rt.digest() != r1.digest() {
            violations.push(Violation {
                invariant: Invariant::CrashRestore,
                detail: format!(
                    "recovered digest {} != uncrashed twin {}",
                    r1.digest(),
                    rt.digest()
                ),
            });
        }
    }

    Audit {
        digest: r1.digest(),
        violations,
    }
}

/// True when a scenario's crash/restore shape is clean enough that
/// recovery must be byte-invisible (the `crash-restore` invariant):
///
/// * a checkpoint cadence that is a whole multiple of the sample interval;
/// * exactly one crash and one restore, crash before restore, both
///   strictly inside a single sample window;
/// * the window opens on a tick where a checkpoint is due (so the cut is
///   up-to-date when the process dies);
/// * no migrations (their pauses shift which tick cuts);
/// * every other action at least [`CHAIN_MARGIN`] before the cut, so no
///   steer or frame is in flight across it.
pub fn clean_crash_chain(s: &Scenario) -> bool {
    let sns = s.sample_interval().as_nanos();
    if sns == 0 {
        return false;
    }
    let Some(ck) = s.checkpoint_interval() else {
        return false;
    };
    if ck.as_nanos() == 0 || !ck.as_nanos().is_multiple_of(sns) {
        return false;
    }
    let mut crash = None;
    let mut restore = None;
    for (t, a) in s.actions() {
        match a {
            Action::Crash if crash.is_some() => return false,
            Action::Crash => crash = Some(*t),
            Action::Restore if restore.is_some() => return false,
            Action::Restore => restore = Some(*t),
            Action::Migrate { .. } => return false,
            _ => {}
        }
    }
    let (Some(c), Some(r)) = (crash, restore) else {
        return false;
    };
    if c >= r {
        return false;
    }
    let window = c.as_nanos() / sns;
    if r.as_nanos() / sns != window {
        return false;
    }
    let ws = window * sns;
    if c.as_nanos() == ws {
        return false; // at the boundary the tick pops first (FIFO)
    }
    if ws == 0 || !ws.is_multiple_of(ck.as_nanos()) {
        return false;
    }
    for (t, a) in s.actions() {
        if matches!(a, Action::Crash | Action::Restore) {
            continue;
        }
        if t.as_nanos() + CHAIN_MARGIN.as_nanos() > ws {
            return false;
        }
    }
    true
}

/// The crash-free twin: same scenario minus every crash/restore action
/// (the checkpoint cadence stays — cutting must be invisible too).
fn strip_crash_chain(s: &Scenario) -> Scenario {
    let mut t = s.clone();
    while let Some(i) = t
        .actions()
        .iter()
        .position(|(_, a)| matches!(a, Action::Crash | Action::Restore))
    {
        t = t.without_action(i);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsteer_harness::Scenario;
    use lbm::LbmConfig;
    use netsim::Link;

    fn base(name: &str) -> Scenario {
        Scenario::named(name)
            .seed(9)
            .lbm(LbmConfig {
                nx: 6,
                ny: 6,
                nz: 6,
                ..LbmConfig::default()
            })
            .participant("p0", Link::uk_janet())
            .participant("p1", Link::wan())
            .duration(SimTime::from_secs(1))
    }

    #[test]
    fn invariant_names_roundtrip() {
        for i in Invariant::ALL {
            assert_eq!(Invariant::from_name(i.name()), Some(i));
        }
        assert_eq!(Invariant::from_name("nonsense"), None);
    }

    #[test]
    fn a_healthy_scenario_audits_clean() {
        let s = base("oracle-clean")
            .steer_at(SimTime::from_millis(250), "p0", "miscibility", 0.4)
            .partition_at(SimTime::from_millis(400), "p1")
            .checkpoint_every(SimTime::from_millis(200));
        let audit = audit_with(&PoolRunner, &s);
        assert_eq!(audit.digest.len(), 16);
        assert!(
            audit.violations.is_empty(),
            "healthy scenario flagged: {:?}",
            audit.violations
        );
    }

    #[test]
    fn clean_chain_predicate_draws_the_line() {
        let chain = |s: Scenario| {
            s.checkpoint_every(SimTime::from_millis(200))
                .crash_at(SimTime::from_millis(820))
                .restore_at(SimTime::from_millis(860))
        };
        assert!(clean_crash_chain(&chain(base("yes"))));
        // a steer too close to the cut breaks the quiet margin
        assert!(!clean_crash_chain(&chain(base("late-steer").steer_at(
            SimTime::from_millis(700),
            "p0",
            "miscibility",
            0.1
        ))));
        // a migration disqualifies outright
        assert!(!clean_crash_chain(&chain(base("mig").migrate_at(
            SimTime::from_millis(100),
            "london",
            "manchester"
        ))));
        // crash exactly on the tick boundary is not strictly inside
        assert!(!clean_crash_chain(
            &base("on-tick")
                .checkpoint_every(SimTime::from_millis(200))
                .crash_at(SimTime::from_millis(800))
                .restore_at(SimTime::from_millis(860))
        ));
        // restore spilling into the next window
        assert!(!clean_crash_chain(
            &base("spill")
                .checkpoint_every(SimTime::from_millis(200))
                .crash_at(SimTime::from_millis(820))
                .restore_at(SimTime::from_millis(910))
        ));
        // cadence not aligned to the sample interval
        assert!(!clean_crash_chain(
            &base("skew")
                .checkpoint_every(SimTime::from_millis(250))
                .crash_at(SimTime::from_millis(820))
                .restore_at(SimTime::from_millis(860))
        ));
        // no checkpointing at all
        assert!(!clean_crash_chain(&base("none")));
    }

    #[test]
    fn a_clean_chain_audits_green_on_the_real_engine() {
        let s = base("oracle-chain")
            .steer_at(SimTime::from_millis(250), "p0", "miscibility", 0.35)
            .checkpoint_every(SimTime::from_millis(200))
            .crash_at(SimTime::from_millis(820))
            .restore_at(SimTime::from_millis(860));
        assert!(clean_crash_chain(&s));
        let v = check(&s);
        assert!(v.is_empty(), "clean chain flagged: {v:?}");
    }

    #[test]
    fn a_sabotaged_runner_is_caught_as_a_thread_digest_violation() {
        struct Skewed;
        impl Runner for Skewed {
            fn run(&self, s: &Scenario, threads: usize) -> ScenarioReport {
                let mut r = PoolRunner.run(s, threads);
                if threads > 1 {
                    r.steers_applied += 1;
                }
                r
            }
        }
        let s = base("oracle-sab");
        let v = check_with(&Skewed, &s);
        assert!(
            v.iter().any(|v| v.invariant == Invariant::ThreadDigest),
            "sabotage not caught: {v:?}"
        );
    }
}
