//! # gridsteer-fuzz — generative scenario fuzzing
//!
//! The scenario harness replays *hand-written* runs byte-identically; this
//! crate turns that determinism into a search light. A seeded [`generate`]
//! emits random-but-valid [`Scenario`](gridsteer_harness::Scenario) scripts
//! — backend choice, participant/viewer/relay topologies over mixed
//! transports, churn, partitions/loss/jitter, steer storms, master passes,
//! shard splits, migrations, and checkpoint/crash/restore chains — and the
//! invariant [`oracle`] replays each one at 1 and 8 executor threads,
//! checking the properties the paper's steering loop promises:
//!
//! * **thread-digest** — the report digest is identical at any pool width;
//! * **master-token** — every non-empty shard has exactly one master at
//!   every sample tick (and an empty shard has none);
//! * **stale-seq** — the steer hub never commits a batch at or below an
//!   origin's committed high-water mark;
//! * **loop-accounting** — `broadcasts + broadcasts_skipped` equals the
//!   scheduled tick count;
//! * **monitor-seq** — each viewer's received frame sequence numbers are
//!   strictly increasing between (re)attachments;
//! * **crash-restore** — a clean checkpoint/crash/restore chain replays
//!   byte-identically to a run that never crashed.
//!
//! When a generated scenario fails, [`shrink`] greedily minimizes it while
//! the same invariant still fails, and [`corpus`] serializes the survivor
//! to a human-readable `.scen` file under `crates/fuzz/corpus/` — replayed
//! forever by `tests/fuzz_regressions.rs`. The soak driver lives in
//! `gridsteer_bench::exp_fuzz_soak` (`exp_fuzz_soak` binary).
//!
//! Everything here is seeded: same seed + same [`FuzzConfig`] ⇒ the same
//! scenario, byte for byte. No wall clocks, no ambient entropy.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrinker;

pub use gen::{generate, FuzzConfig};
pub use oracle::{
    audit_with, check, check_with, clean_crash_chain, Audit, Invariant, PoolRunner, Runner,
    Violation,
};
pub use shrinker::shrink;
