//! Greedy fixpoint shrinker: minimize a failing scenario while the same
//! invariant keeps failing.
//!
//! Each pass tries one structural reduction at a time — drop an action
//! (last first), drop a viewer, drop a relay (children before parents),
//! drop a participant, drop the checkpoint cadence, collapse shards,
//! halve the duration — and keeps a candidate only if it still validates
//! **and** still fails the target invariant under the same [`Runner`].
//! Passes repeat until none of the reductions stick. Every accepted step
//! strictly shrinks some bounded quantity, so the loop terminates.

use crate::oracle::{check_with, Invariant, Runner};
use gridsteer_harness::Scenario;
use netsim::SimTime;

/// Minimize `scenario` while `target` still fails under `runner`.
///
/// Panics if the input does not fail `target` in the first place — a
/// shrink without a reproducer is a bug in the caller.
pub fn shrink<R: Runner + ?Sized>(runner: &R, scenario: &Scenario, target: Invariant) -> Scenario {
    let fails = |c: &Scenario| {
        c.validate().is_ok() && check_with(runner, c).iter().any(|v| v.invariant == target)
    };
    assert!(
        fails(scenario),
        "shrink needs a scenario that fails {target}"
    );
    let mut cur = scenario.clone();
    loop {
        let mut progressed = false;

        // drop actions, newest first (late actions are most often noise)
        let mut i = cur.actions().len();
        while i > 0 {
            i -= 1;
            let cand = cur.without_action(i);
            if fails(&cand) {
                cur = cand;
                progressed = true;
            }
        }

        // drop viewers
        for name in cur
            .viewer_names()
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
        {
            let cand = cur.without_viewer(&name);
            if fails(&cand) {
                cur = cand;
                progressed = true;
            }
        }

        // drop relays, children (declared later) before parents — dropping
        // a parent that still has children fails validation and is skipped
        for name in cur
            .relay_names()
            .iter()
            .rev()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
        {
            let cand = cur.without_relay(&name);
            if fails(&cand) {
                cur = cand;
                progressed = true;
            }
        }

        // drop participants
        for name in cur
            .participant_names()
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
        {
            let cand = cur.without_participant(&name);
            if fails(&cand) {
                cur = cand;
                progressed = true;
            }
        }

        // drop the checkpoint cadence (invalid while a restore remains)
        if cur.checkpoint_interval().is_some() {
            let cand = cur.without_checkpoints();
            if fails(&cand) {
                cur = cand;
                progressed = true;
            }
        }

        // collapse shards
        if cur.shard_count() > 1 {
            let cand = cur.clone().shards(1);
            if fails(&cand) {
                cur = cand;
                progressed = true;
            }
        }

        // halve the duration, rounded down to whole sample windows —
        // actions past the new end fail validation and the candidate dies
        let ticks = cur.ticks();
        if ticks > 1 {
            let half = SimTime::from_nanos((ticks / 2) * cur.sample_interval().as_nanos());
            let cand = cur.clone().duration(half);
            if fails(&cand) {
                cur = cand;
                progressed = true;
            }
        }

        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, FuzzConfig};
    use crate::oracle::PoolRunner;
    use gridsteer_harness::ScenarioReport;

    /// Fails ThreadDigest whenever any steer landed: the wide pool
    /// double-applies. The minimal reproducer therefore needs exactly one
    /// participant and one landing steer.
    struct DoubleApply;
    impl Runner for DoubleApply {
        fn run(&self, s: &Scenario, threads: usize) -> ScenarioReport {
            let mut r = PoolRunner.run(s, threads);
            if threads > 1 && r.steers_applied > 0 {
                r.steers_applied += 1;
            }
            r
        }
    }

    #[test]
    fn shrinking_keeps_only_what_the_fault_needs() {
        let cfg = FuzzConfig::default();
        let fat = (0..64)
            .map(|seed| generate(seed, &cfg))
            .find(|s| {
                check_with(&DoubleApply, s)
                    .iter()
                    .any(|v| v.invariant == Invariant::ThreadDigest)
            })
            .expect("no seed in 0..64 lands a steer");
        let small = shrink(&DoubleApply, &fat, Invariant::ThreadDigest);
        assert!(small.actions().len() <= fat.actions().len());
        assert!(
            small.actions().len() <= 2,
            "a double-apply repro needs one landing steer, got {} actions:\n{}",
            small.actions().len(),
            small.to_script()
        );
        assert!(small.viewer_names().is_empty());
        assert!(small.relay_names().is_empty());
        // the sender survives either as a t=0 declaration or a join action
        assert!(small.participant_names().len() <= 1);
        // still a reproducer, and clean on the real engine
        assert!(check_with(&DoubleApply, &small)
            .iter()
            .any(|v| v.invariant == Invariant::ThreadDigest));
        assert!(check_with(&PoolRunner, &small).is_empty());
    }

    #[test]
    #[should_panic(expected = "shrink needs a scenario")]
    fn shrinking_a_healthy_scenario_panics() {
        let s = generate(0, &FuzzConfig::default());
        let _ = shrink(&PoolRunner, &s, Invariant::ThreadDigest);
    }
}
