//! The regression corpus: shrunk reproducers as human-readable files.
//!
//! A corpus file is a scenario script (see `gridsteer_harness::script`)
//! plus one `#! check:` header naming the invariants the file was minimized
//! against. `tests/fuzz_regressions.rs` replays every `.scen` file under
//! `crates/fuzz/corpus/` on each run, so a fixed bug stays fixed.
//!
//! Blessing a new reproducer is mechanical: when the soak reports a
//! failing seed, shrink it and write the rendered text —
//!
//! ```ignore
//! let fat = gridsteer_fuzz::generate(seed, &cfg);
//! let small = gridsteer_fuzz::shrink(&PoolRunner, &fat, violated);
//! std::fs::write(
//!     corpus_dir().join("issue-NNN.scen"),
//!     render(&small, &[violated]),
//! )?;
//! ```
//!
//! The file is plain text, diff-friendly, and editable by hand.

use crate::oracle::{self, Invariant};
use gridsteer_harness::Scenario;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Header prefix naming the invariants a corpus file must keep passing.
pub const CHECK_HEADER: &str = "#! check:";

/// One parsed corpus file.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Invariants recorded in the `#! check:` header (all of them when
    /// the header is absent).
    pub checks: Vec<Invariant>,
    /// The replayable scenario.
    pub scenario: Scenario,
}

/// Render a scenario plus its checked invariants as corpus file text.
pub fn render(scenario: &Scenario, checks: &[Invariant]) -> String {
    let names: Vec<&str> = checks.iter().map(|i| i.name()).collect();
    format!(
        "{CHECK_HEADER} {}\n{}",
        names.join(","),
        scenario.to_script()
    )
}

/// Parse corpus file text: extract the checked invariants, parse and
/// validate the script.
pub fn parse(text: &str) -> Result<CorpusEntry, String> {
    let mut checks = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(CHECK_HEADER) {
            for name in rest.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                let inv = Invariant::from_name(name)
                    .ok_or_else(|| format!("unknown invariant {name:?} in {CHECK_HEADER}"))?;
                if !checks.contains(&inv) {
                    checks.push(inv);
                }
            }
        }
    }
    if checks.is_empty() {
        checks = Invariant::ALL.to_vec();
    }
    let scenario = Scenario::from_script(text).map_err(|e| e.to_string())?;
    scenario.validate().map_err(|e| e.to_string())?;
    Ok(CorpusEntry { checks, scenario })
}

/// Replay one corpus text on the real engine; `Err` lists every recorded
/// invariant that no longer holds.
pub fn check_text(text: &str) -> Result<(), String> {
    let entry = parse(text)?;
    let violations = oracle::check(&entry.scenario);
    let hits: Vec<String> = violations
        .iter()
        .filter(|v| entry.checks.contains(&v.invariant))
        .map(|v| v.to_string())
        .collect();
    if hits.is_empty() {
        Ok(())
    } else {
        Err(hits.join("; "))
    }
}

/// The in-tree corpus directory (`crates/fuzz/corpus`).
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Load every `.scen` file in `dir` as `(file name, contents)`, sorted by
/// name so replay order is deterministic.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|x| x.to_str()) == Some("scen") {
            out.push((
                entry.file_name().to_string_lossy().into_owned(),
                fs::read_to_string(&path)?,
            ));
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, FuzzConfig};

    #[test]
    fn render_parse_roundtrips_checks_and_scenario() {
        let s = generate(7, &FuzzConfig::default());
        let text = render(&s, &[Invariant::ThreadDigest, Invariant::MasterToken]);
        let entry = parse(&text).unwrap();
        assert_eq!(
            entry.checks,
            vec![Invariant::ThreadDigest, Invariant::MasterToken]
        );
        assert_eq!(entry.scenario.to_script(), s.to_script());
    }

    #[test]
    fn a_headerless_script_checks_everything() {
        let s = generate(3, &FuzzConfig::default());
        let entry = parse(&s.to_script()).unwrap();
        assert_eq!(entry.checks, Invariant::ALL.to_vec());
    }

    #[test]
    fn unknown_invariant_names_are_rejected() {
        let s = generate(3, &FuzzConfig::default());
        let text = format!("{CHECK_HEADER} not-a-thing\n{}", s.to_script());
        let err = parse(&text).unwrap_err();
        assert!(err.contains("not-a-thing"), "{err}");
    }

    #[test]
    fn broken_script_text_is_a_parse_error_not_a_panic() {
        assert!(parse("scenario x\nbackend warp\n").is_err());
        assert!(check_text("gibberish").is_err());
    }
}
