//! The seeded scenario generator.
//!
//! [`generate`] maps `(seed, FuzzConfig)` to one random-but-**valid**
//! [`Scenario`]: every emitted script passes
//! [`Scenario::validate`](gridsteer_harness::Scenario::validate) by
//! construction. Validity is structural, not behavioral — actions may
//! reference participants that already left, partition a relay uplink
//! forever, or steer an unknown parameter; the engine records those as
//! misses and the oracle's invariants must hold regardless.
//!
//! Crash/restore chains are the one behaviorally-constrained shape: a
//! scenario gets a chain only in the *clean* form the `crash-restore`
//! invariant can judge (see [`crate::oracle::clean_crash_chain`]) — the
//! checkpoint cadence divides the sample interval's multiples, the single
//! crash/restore pair sits strictly inside one sample window whose start
//! is a checkpoint cut, no migrations, and every other action lands at
//! least [`crate::oracle::CHAIN_MARGIN`] before the cut so nothing is
//! still in flight when the process dies.

use crate::oracle::CHAIN_MARGIN;
use gridsteer_harness::{Scenario, Transport};
use lbm::LbmConfig;
use netsim::{Link, SimTime};
use pepc::PepcConfig;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use steer_core::LoopBudget;

/// Knobs bounding what [`generate`] may emit. The defaults match the CI
/// soak profile; tests shrink them for speed.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Participants declared at t=0 (at least 1).
    pub max_participants: usize,
    /// Viewers declared at t=0.
    pub max_viewers: usize,
    /// Relay tiers declared at t=0.
    pub max_relays: usize,
    /// Scheduled mid-run actions.
    pub max_actions: usize,
    /// Probability a scenario is a clean checkpoint/crash/restore chain.
    pub crash_chain_prob: f64,
    /// Probability the backend is PEPC rather than LBM.
    pub pepc_prob: f64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            max_participants: 4,
            max_viewers: 3,
            max_relays: 2,
            max_actions: 10,
            crash_chain_prob: 0.3,
            pepc_prob: 0.25,
        }
    }
}

/// Steerable parameters per backend: `(name, lo, hi)`. Mostly the real
/// registry; the generator occasionally strays outside it on purpose
/// (unknown parameters must be refused gracefully, not crash the run).
const LBM_PARAMS: &[(&str, f64, f64)] = &[("miscibility", 0.0, 1.0)];
const PEPC_PARAMS: &[(&str, f64, f64)] = &[
    ("beam_intensity", 0.0, 100.0),
    ("laser_amplitude", 0.0, 100.0),
    ("damping", 0.0, 1.0),
];

/// The sc2003 testbed sites migrations shuttle between.
const SITES: &[&str] = &[
    "manchester",
    "london",
    "sheffield",
    "juelich",
    "stuttgart",
    "phoenix",
];

fn pick_link(rng: &mut StdRng) -> Link {
    match rng.gen_range(0..7u8) {
        0 => Link::loopback(),
        1 => Link::builder().build(), // the LAN default
        2 => Link::campus(),
        3 => Link::uk_janet(),
        4 => Link::gwin(),
        5 => Link::wan(),
        _ => Link::transatlantic(),
    }
}

fn pick_transport(rng: &mut StdRng) -> Transport {
    Transport::ALL[rng.gen_range(0..Transport::ALL.len())]
}

fn pick<'a>(rng: &mut StdRng, pool: &'a [String]) -> &'a str {
    &pool[rng.gen_range(0..pool.len())]
}

/// Deterministically generate one valid scenario from a seed.
///
/// Same `(seed, cfg)` ⇒ the same scenario, byte for byte (compare
/// `to_script()` output). Every returned scenario satisfies
/// `validate().is_ok()`.
pub fn generate(seed: u64, cfg: &FuzzConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Scenario::named(&format!("fuzz-{seed:08x}")).seed(rng.next_u64());

    // --- backend ---------------------------------------------------------
    let pepc = rng.gen_bool(cfg.pepc_prob);
    let params = if pepc {
        let n_target = rng.gen_range(60..=150usize);
        let ranks = rng.gen_range(1..=4u16);
        s = s.pepc(PepcConfig {
            n_target,
            ranks,
            ..PepcConfig::default()
        });
        PEPC_PARAMS
    } else {
        let n = rng.gen_range(6..=8usize);
        s = s.lbm(LbmConfig {
            nx: n,
            ny: n,
            nz: n,
            ..LbmConfig::default()
        });
        LBM_PARAMS
    };

    // --- clock -----------------------------------------------------------
    let sample = SimTime::from_millis(if rng.gen_bool(0.5) { 50 } else { 100 });
    let sns = sample.as_nanos();
    let ticks = rng.gen_range(4..=10u64);
    let duration = SimTime::from_nanos(ticks * sns);
    s = s.sample_every(sample).duration(duration);
    if rng.gen_bool(0.25) {
        s = s.steps_per_sample(2);
    }
    if rng.gen_bool(0.3) {
        s = s.shards(rng.gen_range(2..=3usize));
    }

    // --- crash-chain plan (decided early: it bounds action times) --------
    // `(checkpoint_every, window_start, crash_at, restore_at)`
    let mut chain = None;
    if rng.gen_bool(cfg.crash_chain_prob) {
        let ck_mult = rng.gen_range(1..=2u64);
        // last tick that is a checkpoint cut AND starts a full window
        let ws_idx = ((ticks - 1) / ck_mult) * ck_mult;
        // the cut must leave room for the quiet margin, or every action
        // (even at t=0) would dirty the chain
        if ws_idx >= ck_mult && ws_idx * sns >= CHAIN_MARGIN.as_nanos() {
            let ws = ws_idx * sns;
            chain = Some((
                SimTime::from_nanos(ck_mult * sns),
                SimTime::from_nanos(ws),
                SimTime::from_nanos(ws + sns / 5),
                SimTime::from_nanos(ws + 2 * sns / 5),
            ));
        }
    }
    let t_max_ms = match chain {
        Some((_, ws, _, _)) => ws.as_nanos().saturating_sub(CHAIN_MARGIN.as_nanos()) / 1_000_000,
        None => duration.as_nanos() / 1_000_000,
    };

    // --- topology ---------------------------------------------------------
    let n_p = rng.gen_range(1..=cfg.max_participants.max(1));
    for i in 0..n_p {
        let name = format!("p{i}");
        s = s.participant(&name, pick_link(&mut rng));
        if rng.gen_bool(0.5) {
            s = s.route(&name, pick_transport(&mut rng));
        }
    }
    let n_r = rng.gen_range(0..=cfg.max_relays);
    for i in 0..n_r {
        let name = format!("r{i}");
        if i == 0 || rng.gen_bool(0.5) {
            s = s.relay(&name, pick_link(&mut rng));
        } else {
            let parent = format!("r{}", rng.gen_range(0..i));
            s = s.relay_under(&name, &parent, pick_link(&mut rng));
        }
        if rng.gen_bool(0.5) {
            s = s.relay_every(&name, rng.gen_range(2..=3u32));
        }
        if rng.gen_bool(0.3) {
            s = s.relay_child_budget(&name, rng.gen_range(1..=4usize));
        }
    }
    let n_v = rng.gen_range(0..=cfg.max_viewers);
    for i in 0..n_v {
        let name = format!("v{i}");
        let transport = pick_transport(&mut rng);
        if n_r > 0 && rng.gen_bool(0.4) {
            let relay = format!("r{}", rng.gen_range(0..n_r));
            s = s.viewer_at_relay(&name, &relay, pick_link(&mut rng), transport);
        } else {
            let budget = match rng.gen_range(0..3u8) {
                0 => LoopBudget::VrRender,
                1 => LoopBudget::DesktopRender,
                _ => LoopBudget::PostProcessing,
            };
            s = s.viewer_with_budget(&name, pick_link(&mut rng), transport, budget);
        }
        if rng.gen_bool(0.4) {
            s = s.viewer_every(&name, rng.gen_range(2..=3u32));
        }
    }

    // --- actions ----------------------------------------------------------
    // Name pools deliberately overshoot the declared topology: the extras
    // are mid-run joiners, and references to never-joined names exercise
    // the engine's miss paths.
    let pool_p: Vec<String> = (0..n_p + 2).map(|i| format!("p{i}")).collect();
    let pool_v: Vec<String> = (0..n_v + 2).map(|i| format!("v{i}")).collect();
    let mut fault_names = pool_p.clone();
    fault_names.extend((0..n_v).map(|i| format!("v{i}")));
    fault_names.extend((0..n_r).map(|i| format!("r{i}")));

    let n_a = rng.gen_range(0..=cfg.max_actions);
    for _ in 0..n_a {
        let t = SimTime::from_millis(rng.gen_range(0..=t_max_ms));
        let mut roll = rng.gen_range(0..100u32);
        if chain.is_some() && (87..=91).contains(&roll) {
            roll = 0; // no migrations inside a clean chain: steer instead
        }
        s = match roll {
            0..=24 => {
                let (param, lo, hi) = params[rng.gen_range(0..params.len())];
                let param = if rng.gen_bool(0.05) {
                    "warp_factor"
                } else {
                    param
                };
                let value = rng.gen_range(lo..=hi);
                let who = pick(&mut rng, &pool_p).to_string();
                s.steer_at(t, &who, param, value)
            }
            25..=34 => {
                let who = pick(&mut rng, &pool_p).to_string();
                let link = pick_link(&mut rng);
                s.join_at(t, &who, link)
            }
            35..=44 => {
                let who = pick(&mut rng, &pool_p).to_string();
                s.leave_at(t, &who)
            }
            45..=52 => {
                let from = pick(&mut rng, &pool_p).to_string();
                let to = pick(&mut rng, &pool_p).to_string();
                s.pass_master_at(t, &from, &to)
            }
            53..=60 => {
                let who = pick(&mut rng, &fault_names).to_string();
                s.partition_at(t, &who)
            }
            61..=68 => {
                let who = pick(&mut rng, &fault_names).to_string();
                s.heal_at(t, &who)
            }
            69..=78 => {
                let who = pick(&mut rng, &fault_names).to_string();
                s.loss_at(t, &who, rng.gen_range(10_000..=400_000u32))
            }
            79..=86 => {
                let who = pick(&mut rng, &fault_names).to_string();
                s.jitter_at(t, &who, SimTime::from_millis(rng.gen_range(1..=40u64)))
            }
            87..=91 => {
                let from = SITES[rng.gen_range(0..SITES.len())];
                let to = SITES[rng.gen_range(0..SITES.len())];
                s.migrate_at(t, from, to)
            }
            92..=95 => {
                let who = pick(&mut rng, &pool_v).to_string();
                s.viewer_leave_at(t, &who)
            }
            _ => {
                let who = pick(&mut rng, &pool_v).to_string();
                let link = pick_link(&mut rng);
                let transport = pick_transport(&mut rng);
                if n_r > 0 && rng.gen_bool(0.4) {
                    let relay = format!("r{}", rng.gen_range(0..n_r));
                    s.viewer_join_relay_at(t, &who, &relay, link, transport)
                } else {
                    s.viewer_join_at(t, &who, link, transport)
                }
            }
        };
    }

    // --- checkpointing ----------------------------------------------------
    match chain {
        Some((ck, _, crash, restore)) => {
            s = s.checkpoint_every(ck).crash_at(crash).restore_at(restore);
        }
        None => {
            // checkpoint cutting must be invisible even without a crash
            if rng.gen_bool(0.3) {
                s = s.checkpoint_every(SimTime::from_nanos(rng.gen_range(1..=2u64) * sns));
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::clean_crash_chain;

    #[test]
    fn every_seed_yields_a_valid_scenario() {
        let cfg = FuzzConfig::default();
        for seed in 0..256 {
            let s = generate(seed, &cfg);
            s.validate()
                .unwrap_or_else(|e| panic!("seed {seed} generated an invalid scenario: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FuzzConfig::default();
        for seed in [0, 1, 42, 0xdead_beef] {
            let a = generate(seed, &cfg).to_script();
            let b = generate(seed, &cfg).to_script();
            assert_eq!(a, b, "seed {seed} generated two different scripts");
        }
    }

    #[test]
    fn the_seed_window_covers_both_backends_and_chain_shapes() {
        let cfg = FuzzConfig::default();
        let mut pepc = 0;
        let mut chains = 0;
        let mut sharded = 0;
        for seed in 0..128 {
            let s = generate(seed, &cfg);
            if s.to_script().contains("backend pepc") {
                pepc += 1;
            }
            if clean_crash_chain(&s) {
                chains += 1;
            }
            if s.shard_count() > 1 {
                sharded += 1;
            }
        }
        assert!(pepc > 0, "no PEPC scenario in the window");
        assert!(chains > 0, "no clean crash chain in the window");
        assert!(sharded > 0, "no sharded scenario in the window");
    }

    #[test]
    fn generated_chains_always_satisfy_the_clean_predicate() {
        // when generate() decides to emit a crash/restore pair it must be
        // in exactly the form the crash-restore invariant can judge
        let cfg = FuzzConfig {
            crash_chain_prob: 1.0,
            ..FuzzConfig::default()
        };
        let mut chains = 0;
        for seed in 0..128 {
            let s = generate(seed, &cfg);
            let has_crash = s.to_script().contains(" crash");
            if has_crash {
                chains += 1;
                assert!(
                    clean_crash_chain(&s),
                    "seed {seed} emitted a dirty crash chain:\n{}",
                    s.to_script()
                );
            }
        }
        assert!(chains > 80, "chain probability 1.0 barely fired: {chains}");
    }
}
