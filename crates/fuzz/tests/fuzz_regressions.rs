//! Tier-1 fuzz regression suite.
//!
//! Three jobs, run on every `cargo test`:
//!
//! 1. **Corpus replay** — every `.scen` file under `crates/fuzz/corpus/`
//!    parses, is in canonical rendered form, and still passes the
//!    invariants its `#! check:` header records. A shrunk reproducer that
//!    lands in the corpus is replayed forever.
//! 2. **Seed-window soak** — a small fixed seed window of generated
//!    scenarios audits green on the real engine (the big window runs in
//!    CI via `exp_fuzz_soak`).
//! 3. **Pipeline demo** — a seeded fault injected behind the [`Runner`]
//!    seam is caught by the oracle, shrunk to a ≤ 8-action reproducer,
//!    survives the corpus text round-trip, and is provably absent from
//!    the real engine.

use gridsteer_fuzz::{
    check, check_with, corpus, generate, shrink, FuzzConfig, Invariant, PoolRunner, Runner,
};
use gridsteer_harness::{Scenario, ScenarioReport};

#[test]
fn corpus_replays_forever() {
    let files = corpus::load_dir(&corpus::corpus_dir()).expect("corpus dir must exist");
    assert!(
        files.len() >= 3,
        "corpus went missing: only {} .scen files",
        files.len()
    );
    for (name, text) in files {
        corpus::check_text(&text).unwrap_or_else(|e| panic!("corpus file {name} regressed: {e}"));
    }
}

#[test]
fn corpus_files_are_canonical() {
    // parse → re-render is byte-identical: files stay diff-friendly and
    // nobody hand-edits one into a form the parser merely tolerates
    for (name, text) in corpus::load_dir(&corpus::corpus_dir()).unwrap() {
        let entry = corpus::parse(&text)
            .unwrap_or_else(|e| panic!("corpus file {name} does not parse: {e}"));
        assert_eq!(
            corpus::render(&entry.scenario, &entry.checks),
            text,
            "corpus file {name} is not in canonical rendered form"
        );
    }
}

#[test]
fn a_fixed_seed_window_audits_green() {
    let cfg = FuzzConfig::default();
    for seed in 0..24 {
        let s = generate(seed, &cfg);
        let v = check(&s);
        assert!(v.is_empty(), "seed {seed} violated invariants: {v:?}");
    }
}

/// The seeded fault for the end-to-end demo: whenever any steer landed,
/// the wide pool reports one extra application — the kind of lost-guard
/// concurrency bug the thread-digest invariant exists to catch.
struct SeededFault;

impl Runner for SeededFault {
    fn run(&self, s: &Scenario, threads: usize) -> ScenarioReport {
        let mut r = PoolRunner.run(s, threads);
        if threads > 1 && r.steers_applied > 0 {
            r.steers_applied += 1;
        }
        r
    }
}

#[test]
fn injected_fault_is_caught_shrunk_and_replayable() {
    let cfg = FuzzConfig::default();
    // the soak loop in miniature: walk seeds until the oracle trips
    let fat = (0..64)
        .map(|seed| generate(seed, &cfg))
        .find(|s| {
            check_with(&SeededFault, s)
                .iter()
                .any(|v| v.invariant == Invariant::ThreadDigest)
        })
        .expect("no seed in 0..64 tripped the seeded fault");

    let small = shrink(&SeededFault, &fat, Invariant::ThreadDigest);
    assert!(
        small.actions().len() <= 8,
        "shrinker left {} actions:\n{}",
        small.actions().len(),
        small.to_script()
    );

    // the reproducer survives serialization to corpus text…
    let text = corpus::render(&small, &[Invariant::ThreadDigest]);
    let replayed = corpus::parse(&text).unwrap().scenario;
    assert!(
        check_with(&SeededFault, &replayed)
            .iter()
            .any(|v| v.invariant == Invariant::ThreadDigest),
        "replayed reproducer no longer trips the fault:\n{text}"
    );
    // …and the real engine is clean on it: the violation was the fault,
    // not the scenario
    assert!(check(&replayed).is_empty());
}

/// Not a test of the tree — the bless workflow. Run explicitly to
/// regenerate the seed-derived corpus files after a deliberate format or
/// engine change:
///
/// ```text
/// cargo test -p gridsteer_fuzz --test fuzz_regressions -- --ignored bless
/// ```
#[test]
#[ignore = "writes corpus files; run explicitly to bless"]
fn bless_seed_corpus() {
    let cfg = FuzzConfig::default();
    let all = Invariant::ALL;
    let mut picks: Vec<(&str, Scenario)> = Vec::new();
    let mut chain = None;
    let mut sharded = None;
    let mut relayed = None;
    for seed in 0..256u64 {
        let s = generate(seed, &cfg);
        let script = s.to_script();
        if chain.is_none() && gridsteer_fuzz::clean_crash_chain(&s) {
            chain = Some(s);
        } else if sharded.is_none() && s.shard_count() > 1 && script.contains("backend pepc") {
            sharded = Some(s);
        } else if relayed.is_none()
            && !s.relay_names().is_empty()
            && !s.viewer_names().is_empty()
            && script.contains("partition")
            && !script.contains(" crash")
        {
            relayed = Some(s);
        }
    }
    picks.push(("seed-crash-chain.scen", chain.expect("no chain seed")));
    picks.push((
        "seed-pepc-shards.scen",
        sharded.expect("no sharded pepc seed"),
    ));
    picks.push((
        "seed-relay-faults.scen",
        relayed.expect("no relay+fault seed"),
    ));
    for (file, s) in picks {
        let v = check(&s);
        assert!(v.is_empty(), "candidate {file} is not green: {v:?}");
        std::fs::write(corpus::corpus_dir().join(file), corpus::render(&s, &all)).unwrap();
        println!("blessed {file}");
    }
}
