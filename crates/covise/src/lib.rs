//! # covise — a COVISE-style collaborative visualization environment
//!
//! §4.5 of the paper describes COVISE's architecture, reproduced here
//! piece by piece:
//!
//! * "COVISE in contrast to other visualization systems uses the notion of
//!   **data objects** instead of relying on a pure data flow paradigm. The
//!   underlying data management takes care of assigning system-wide unique
//!   names to data generated during a session in the shared data spaces"
//!   → [`data::DataObject`], [`data::SharedDataSpace`].
//! * "**Request brokers** on each participating host take care of data
//!   management, efficient data transfer and conversion between different
//!   platforms" → [`broker::RequestBroker`].
//! * "Distributed applications can be built by combining **modules**
//!   (modeled as processes) from different application categories on
//!   different hosts to form module networks" → [`module::Module`] and the
//!   stock modules (ReadField, CutPlane, IsoSurface, Colors, Renderer).
//! * "Session management … is done in a central **controller** which has
//!   the only knowledge about the whole application topology" →
//!   [`controller::Controller`].
//! * "In a **collaborative session** all partners see the same screen
//!   representations at the same time … only synchronisation information
//!   such as the parameter set for the cutting plane determination is
//!   exchanged" → [`collab::CollabSession`] with its two sync modes
//!   (parameter-sync vs pixel-stream), the subject of experiments E43/EC1.

pub mod broker;
pub mod collab;
pub mod controller;
pub mod data;
pub mod module;

pub use broker::RequestBroker;
pub use collab::{CollabSession, SyncMode, SyncReport};
pub use controller::{Controller, ExecError, ModuleId};
pub use data::{DataObject, Payload, SharedDataSpace};
pub use module::{CutPlane, IsoSurface, Module, ReadField, Renderer};
