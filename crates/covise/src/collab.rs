//! Collaborative sessions: parameter-sync vs pixel-stream.
//!
//! §4.5: "In a collaborative session all partners see the same screen
//! representations at the same time on their local workstation. The
//! results of the visualization as well as user interactions are displayed
//! in a synchronized way at each site." And §4.3: "such scene update rates
//! are only possible if the generation of the new content is done locally
//! and only synchronisation information such as the parameter set for the
//! cutting plane determination is exchanged."
//!
//! [`CollabSession`] holds one mirrored pipeline per site and implements
//! both synchronization strategies:
//!
//! * [`SyncMode::ParamSync`] — COVISE's way: ship the changed parameter
//!   (tens of bytes), every site recomputes locally. Traffic is
//!   independent of scene size (§4.6: "the collaboration speed does not
//!   degrade with the volume of displayed geometric data").
//! * [`SyncMode::PixelStream`] — the vnc/VizServer way: the master
//!   recomputes and ships compressed framebuffers. Traffic scales with
//!   image (and, via compression, scene) content.
//!
//! Every change reports bytes, per-site arrival skew, and a consistency
//! check — the measurements of experiments E43/EC1/F4.

use crate::broker::{HostArch, RequestBroker};
use crate::controller::{Controller, ExecError, ModuleId};
use netsim::{Link, SimTime, VClock};
use std::time::Duration;
use viz::codec::DeltaRleCodec;
use viz::Framebuffer;

/// How the session keeps sites consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Ship parameters; every site recomputes (COVISE).
    ParamSync,
    /// Ship rendered frames from the master (vnc/VizServer).
    PixelStream,
}

/// Outcome of one synchronized parameter change.
#[derive(Debug, Clone)]
pub struct SyncReport {
    /// Mode used.
    pub mode: SyncMode,
    /// Bytes the master sent (total over all remote sites).
    pub bytes_sent: u64,
    /// Virtual arrival time of the update at each remote site.
    pub arrivals: Vec<SimTime>,
    /// max − min arrival (the §4.2/§4.3 divergence bound — should stay
    /// within a frame).
    pub skew: SimTime,
    /// Wall time the *master* spent recomputing.
    pub master_wall: Duration,
    /// True if every site's final image equals the master's.
    pub consistent: bool,
}

/// Size of one parameter-sync message on the wire (module id + key hash +
/// value + framing).
pub const PARAM_MSG_BYTES: usize = 32;

struct Site {
    // kept for debugging dumps; not read on any code path yet
    #[allow(dead_code)]
    name: String,
    controller: Controller,
    broker: RequestBroker,
    clock: VClock,
    /// Link from the master to this site.
    from_master: Link,
    /// Decoder state for PixelStream mode.
    decoder: DeltaRleCodec,
    /// Last displayed frame.
    display: Option<Framebuffer>,
}

/// A collaborative session of mirrored pipelines.
pub struct CollabSession {
    sites: Vec<Site>,
    /// Index of the master site.
    pub master: usize,
    /// Sync strategy.
    pub mode: SyncMode,
    /// Renderer module id (same in every mirrored pipeline).
    render_id: ModuleId,
    /// Encoder state for PixelStream mode (master side).
    encoder: DeltaRleCodec,
}

impl CollabSession {
    /// Build a session of `site_names.len()` sites. `build` constructs the
    /// identical single-host pipeline for each site and returns the
    /// renderer's module id; `link_to(i)` gives the master→site link.
    pub fn new(
        site_names: &[&str],
        mode: SyncMode,
        mut build: impl FnMut(&mut Controller, usize) -> ModuleId,
        mut link_to: impl FnMut(usize) -> Link,
    ) -> CollabSession {
        let mut sites = Vec::new();
        let mut render_id = ModuleId(0);
        for (i, name) in site_names.iter().enumerate() {
            let mut broker = RequestBroker::new();
            let host = broker.add_host(name, HostArch::Little);
            let mut controller = Controller::new();
            render_id = build(&mut controller, host);
            sites.push(Site {
                name: name.to_string(),
                controller,
                broker,
                clock: VClock::new(),
                from_master: link_to(i),
                decoder: DeltaRleCodec::new(),
                display: None,
            });
        }
        CollabSession {
            sites,
            master: 0,
            mode,
            render_id,
            encoder: DeltaRleCodec::new(),
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Move the master role ("collaborating partners … need to be able to
    /// change roles", §4.3).
    pub fn pass_master(&mut self, to: usize) -> bool {
        if to < self.sites.len() {
            self.master = to;
            // pixel-stream history is master-specific
            self.encoder.reset();
            for s in &mut self.sites {
                s.decoder.reset();
            }
            true
        } else {
            false
        }
    }

    /// The last frame displayed at a site.
    pub fn display(&self, site: usize) -> Option<&Framebuffer> {
        self.sites[site].display.as_ref()
    }

    /// Execute every site's pipeline once (initial content without any
    /// parameter change).
    pub fn warm_up(&mut self) -> Result<(), ExecError> {
        let render_id = self.render_id;
        for s in &mut self.sites {
            s.controller.execute(&mut s.broker)?;
            s.display = s.controller.image(&s.broker, render_id);
        }
        Ok(())
    }

    /// The master changes `(module, key) = value`; the session synchronizes
    /// every site according to the mode and reports the cost.
    pub fn change_param(
        &mut self,
        module: ModuleId,
        key: &str,
        value: f64,
    ) -> Result<SyncReport, ExecError> {
        match self.mode {
            SyncMode::ParamSync => self.change_param_sync(module, key, value),
            SyncMode::PixelStream => self.change_pixel_stream(module, key, value),
        }
    }

    fn change_param_sync(
        &mut self,
        module: ModuleId,
        key: &str,
        value: f64,
    ) -> Result<SyncReport, ExecError> {
        let render_id = self.render_id;
        let master = self.master;
        // master applies + recomputes
        // detlint::allow(R1, "measures real pipeline wall time for SyncReport stats; never feeds a digest")
        let t0 = std::time::Instant::now();
        {
            let m = &mut self.sites[master];
            m.controller.set_param(module, key, value);
            m.controller.execute(&mut m.broker)?;
            m.display = m.controller.image(&m.broker, render_id);
        }
        let master_wall = t0.elapsed();
        let depart = self.sites[master].clock.now();
        let mut arrivals = Vec::new();
        let mut bytes = 0u64;
        for i in 0..self.sites.len() {
            if i == master {
                continue;
            }
            let s = &mut self.sites[i];
            let arrival = s
                .from_master
                .deliver(depart, PARAM_MSG_BYTES)
                .unwrap_or_else(|| s.from_master.nominal_arrival(depart, PARAM_MSG_BYTES));
            bytes += PARAM_MSG_BYTES as u64;
            s.clock.merge(arrival);
            // remote site applies the tiny sync message and recomputes
            s.controller.set_param(module, key, value);
            s.controller.execute(&mut s.broker)?;
            s.display = s.controller.image(&s.broker, render_id);
            arrivals.push(arrival);
        }
        Ok(self.finish_report(SyncMode::ParamSync, bytes, arrivals, master_wall))
    }

    fn change_pixel_stream(
        &mut self,
        module: ModuleId,
        key: &str,
        value: f64,
    ) -> Result<SyncReport, ExecError> {
        let render_id = self.render_id;
        let master = self.master;
        // detlint::allow(R1, "measures real pipeline wall time for SyncReport stats; never feeds a digest")
        let t0 = std::time::Instant::now();
        let frame = {
            let m = &mut self.sites[master];
            m.controller.set_param(module, key, value);
            m.controller.execute(&mut m.broker)?;
            let img = m
                .controller
                .image(&m.broker, render_id)
                .ok_or(ExecError::TransferFailed(render_id))?;
            m.display = Some(img.clone());
            img
        };
        let encoded = self.encoder.encode(&frame);
        let master_wall = t0.elapsed();
        let depart = self.sites[master].clock.now();
        let (w, h) = (frame.width(), frame.height());
        let mut arrivals = Vec::new();
        let mut bytes = 0u64;
        for i in 0..self.sites.len() {
            if i == master {
                continue;
            }
            let s = &mut self.sites[i];
            let size = encoded.wire_size();
            let arrival = s
                .from_master
                .deliver(depart, size)
                .unwrap_or_else(|| s.from_master.nominal_arrival(depart, size));
            bytes += size as u64;
            s.clock.merge(arrival);
            s.display = s.decoder.decode(&encoded, w, h);
            arrivals.push(arrival);
        }
        Ok(self.finish_report(SyncMode::PixelStream, bytes, arrivals, master_wall))
    }

    fn finish_report(
        &self,
        mode: SyncMode,
        bytes_sent: u64,
        arrivals: Vec<SimTime>,
        master_wall: Duration,
    ) -> SyncReport {
        let skew = match (arrivals.iter().min(), arrivals.iter().max()) {
            (Some(&lo), Some(&hi)) => hi - lo,
            _ => SimTime::ZERO,
        };
        let master_img = self.sites[self.master].display.as_ref();
        let consistent = self.sites.iter().all(|s| match (&s.display, master_img) {
            (Some(a), Some(b)) => a == b,
            (None, None) => true,
            _ => false,
        });
        SyncReport {
            mode,
            bytes_sent,
            arrivals,
            skew,
            master_wall,
            consistent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{IsoSurface, ReadField, Renderer};
    use viz::Field3;

    fn sphere_field(n: usize, r: f32) -> Field3 {
        let c = (n as f32 - 1.0) / 2.0;
        Field3::from_fn(n, n, n, |x, y, z| {
            r - ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt()
        })
    }

    fn build_pipeline(ctl: &mut Controller, host: usize) -> ModuleId {
        let read = ctl.add_module(host, Box::new(ReadField::new(sphere_field(12, 4.0))));
        let iso = ctl.add_module(host, Box::new(IsoSurface::new()));
        let render = ctl.add_module(host, Box::new(Renderer::new(48)));
        ctl.connect(read, "field", iso, "field").unwrap();
        ctl.connect(iso, "mesh", render, "mesh").unwrap();
        render
    }

    /// Module id of the IsoSurface in the standard 3-module pipeline.
    const ISO: ModuleId = ModuleId(1);

    fn session(n: usize, mode: SyncMode) -> CollabSession {
        let names: Vec<String> = (0..n).map(|i| format!("site{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut s = CollabSession::new(&name_refs, mode, build_pipeline, |_| {
            Link::builder().latency_ms(10).bandwidth_mbit(100).build()
        });
        s.warm_up().unwrap();
        s
    }

    #[test]
    fn param_sync_keeps_sites_consistent() {
        let mut s = session(4, SyncMode::ParamSync);
        let r = s.change_param(ISO, "isovalue", 1.5).unwrap();
        assert!(r.consistent, "sites diverged under param-sync");
        assert_eq!(r.arrivals.len(), 3);
    }

    #[test]
    fn pixel_stream_keeps_sites_consistent() {
        let mut s = session(3, SyncMode::PixelStream);
        let r = s.change_param(ISO, "isovalue", 1.5).unwrap();
        assert!(r.consistent, "sites diverged under pixel-stream");
    }

    #[test]
    fn param_sync_bytes_independent_of_scene() {
        let mut s = session(3, SyncMode::ParamSync);
        let r1 = s.change_param(ISO, "isovalue", 0.5).unwrap();
        let r2 = s.change_param(ISO, "isovalue", -2.0).unwrap();
        // always exactly one 32-byte message per remote site
        assert_eq!(r1.bytes_sent, 2 * PARAM_MSG_BYTES as u64);
        assert_eq!(r2.bytes_sent, r1.bytes_sent);
    }

    #[test]
    fn pixel_stream_ships_more_bytes_than_param_sync() {
        let mut ps = session(3, SyncMode::ParamSync);
        let mut px = session(3, SyncMode::PixelStream);
        let a = ps.change_param(ISO, "isovalue", 1.0).unwrap();
        let b = px.change_param(ISO, "isovalue", 1.0).unwrap();
        assert!(
            b.bytes_sent > a.bytes_sent * 4,
            "pixel {} vs param {}",
            b.bytes_sent,
            a.bytes_sent
        );
    }

    #[test]
    fn skew_bounded_by_link_jitter() {
        let names = ["a", "b", "c", "d"];
        let mut s = CollabSession::new(&names, SyncMode::ParamSync, build_pipeline, |i| {
            Link::builder()
                .latency_ms(5 + 5 * i as u64) // heterogeneous sites
                .build()
        });
        s.warm_up().unwrap();
        let r = s.change_param(ISO, "isovalue", 0.7).unwrap();
        // arrivals spread over the latency spread: 10..15ms after depart
        assert!(r.skew >= SimTime::from_millis(9));
        assert!(r.skew <= SimTime::from_millis(12));
    }

    #[test]
    fn master_handoff_still_consistent() {
        let mut s = session(3, SyncMode::PixelStream);
        s.change_param(ISO, "isovalue", 1.0).unwrap();
        assert!(s.pass_master(2));
        let r = s.change_param(ISO, "isovalue", 2.0).unwrap();
        assert!(r.consistent, "handoff broke consistency");
        assert!(!s.pass_master(99));
    }

    #[test]
    fn displays_update_on_change() {
        let mut s = session(2, SyncMode::ParamSync);
        let before = s.display(1).unwrap().clone();
        s.change_param(ISO, "isovalue", 3.0).unwrap();
        let after = s.display(1).unwrap();
        assert!(before.diff_fraction(after) > 0.0);
    }
}
