//! Request brokers: cross-host data transfer with conversion.
//!
//! §4.5: "Request brokers on each participating host take care of data
//! management, efficient data transfer and conversion between different
//! platforms. … Between heterogeneous hardware platform\[s\] data type
//! conversion is done by the request brokers which is thus invisible for
//! the application modules." A [`RequestBroker`] moves a
//! [`crate::data::DataObject`] from one host's shared data
//! space to another's, charging the netsim link for the bytes and a
//! per-byte conversion cost when the platforms' byte orders differ.

use crate::data::{DataObject, SharedDataSpace};
use netsim::{Link, SimTime, VClock};
use std::collections::HashMap;

/// Platform descriptor — what the brokers convert between. The paper's
/// hosts mixed big-endian SGI/Cray machines with little-endian PCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostArch {
    /// Little-endian (PCs, the steering laptops).
    Little,
    /// Big-endian (the Onyx/T3E machines of 2003).
    Big,
}

/// A host participating in the session.
pub struct Host {
    /// Host name.
    pub name: String,
    /// Platform byte order.
    pub arch: HostArch,
    /// The host's shared data space.
    pub sds: SharedDataSpace,
    /// The host's virtual clock.
    pub clock: VClock,
}

impl Host {
    /// A host with an empty SDS at time zero.
    pub fn new(name: &str, arch: HostArch) -> Host {
        Host {
            name: name.to_string(),
            arch,
            sds: SharedDataSpace::new(),
            clock: VClock::new(),
        }
    }
}

/// Transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BrokerStats {
    /// Objects moved between hosts.
    pub transfers: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Objects that needed platform conversion.
    pub conversions: u64,
}

/// The broker fabric: hosts plus the links between them.
#[derive(Default)]
pub struct RequestBroker {
    hosts: Vec<Host>,
    /// links[(from, to)] shapes transfers in that direction.
    links: HashMap<(usize, usize), Link>,
    /// Conversion throughput in bytes/second (byte-swap speed).
    pub convert_bps: u64,
    stats: BrokerStats,
}

impl RequestBroker {
    /// Empty fabric.
    pub fn new() -> Self {
        RequestBroker {
            hosts: Vec::new(),
            links: HashMap::new(),
            convert_bps: 500_000_000, // 500 MB/s byte-swap
            stats: BrokerStats::default(),
        }
    }

    /// Add a host; returns its index.
    pub fn add_host(&mut self, name: &str, arch: HostArch) -> usize {
        self.hosts.push(Host::new(name, arch));
        self.hosts.len() - 1
    }

    /// Connect two hosts symmetrically.
    pub fn connect(&mut self, a: usize, b: usize, link: Link) {
        self.links.insert((a, b), link.clone());
        self.links.insert((b, a), link);
    }

    /// Host accessor.
    pub fn host(&self, idx: usize) -> &Host {
        &self.hosts[idx]
    }

    /// Mutable host accessor.
    pub fn host_mut(&mut self, idx: usize) -> &mut Host {
        &mut self.hosts[idx]
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> BrokerStats {
        self.stats
    }

    /// Move (copy) object `name` from host `from` to host `to`. Returns
    /// the arrival time at `to`, or `None` if the object is missing.
    /// Same-host "transfers" are free (shared memory, §4.5).
    pub fn transfer(&mut self, name: &str, from: usize, to: usize) -> Option<SimTime> {
        let obj: DataObject = {
            let src = &self.hosts[from];
            (*src.sds.get(name)?).clone()
        };
        if from == to {
            return Some(self.hosts[from].clock.now());
        }
        let bytes = obj.byte_size();
        self.stats.transfers += 1;
        self.stats.bytes += bytes as u64;
        let departure = self.hosts[from].clock.now();
        let mut link = self
            .links
            .get(&(from, to))
            .cloned()
            .unwrap_or_else(Link::loopback);
        let mut arrival = link
            .deliver(departure, bytes)
            .unwrap_or_else(|| link.nominal_arrival(departure, bytes));
        // platform conversion on the receiving broker
        if self.hosts[from].arch != self.hosts[to].arch {
            self.stats.conversions += 1;
            let convert = SimTime::from_nanos(
                (bytes as u128 * 1_000_000_000 / self.convert_bps as u128) as u64,
            );
            arrival += convert;
        }
        let dst = &mut self.hosts[to];
        dst.clock.merge(arrival);
        let renamed = DataObject {
            name: obj.name.clone(),
            payload: obj.payload,
            attributes: obj.attributes,
        };
        dst.sds.put(renamed);
        Some(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Payload;
    use viz::Field3;

    fn fabric() -> RequestBroker {
        let mut rb = RequestBroker::new();
        let onyx = rb.add_host("bezier.man.ac.uk", HostArch::Big);
        let pc = rb.add_host("laptop", HostArch::Little);
        rb.connect(
            onyx,
            pc,
            Link::builder().latency_ms(5).bandwidth_mbit(155).build(),
        );
        rb
    }

    #[test]
    fn transfer_copies_object_and_charges_link() {
        let mut rb = fabric();
        let field = DataObject::new("phi", Payload::Field(Field3::zeros(16, 16, 16)));
        let name = field.name.clone();
        rb.host_mut(0).sds.put(field);
        let arrival = rb.transfer(&name, 0, 1).unwrap();
        assert!(arrival >= SimTime::from_millis(5));
        assert!(rb.host(1).sds.get(&name).is_some());
        // source keeps its copy
        assert!(rb.host(0).sds.get(&name).is_some());
        assert_eq!(rb.stats().transfers, 1);
        assert_eq!(rb.stats().bytes, 16 * 16 * 16 * 4);
    }

    #[test]
    fn cross_arch_transfer_pays_conversion() {
        let mut rb = RequestBroker::new();
        let a = rb.add_host("be", HostArch::Big);
        let b = rb.add_host("le", HostArch::Little);
        let c = rb.add_host("be2", HostArch::Big);
        rb.connect(a, b, Link::loopback());
        rb.connect(a, c, Link::loopback());
        let obj = DataObject::new("x", Payload::Field(Field3::zeros(32, 32, 32)));
        let name = obj.name.clone();
        rb.host_mut(a).sds.put(obj);
        let t_conv = rb.transfer(&name, a, b).unwrap();
        let t_same = rb.transfer(&name, a, c).unwrap();
        assert!(
            t_conv > t_same,
            "conversion must cost time: {t_conv} vs {t_same}"
        );
        assert_eq!(rb.stats().conversions, 1);
    }

    #[test]
    fn same_host_transfer_is_free() {
        let mut rb = fabric();
        let obj = DataObject::new("x", Payload::Scalar(1.0));
        let name = obj.name.clone();
        rb.host_mut(0).sds.put(obj);
        let t = rb.transfer(&name, 0, 0).unwrap();
        assert_eq!(t, SimTime::ZERO);
        assert_eq!(rb.stats().transfers, 0);
    }

    #[test]
    fn missing_object_is_none() {
        let mut rb = fabric();
        assert!(rb.transfer("ghost_999", 0, 1).is_none());
    }

    #[test]
    fn receiver_clock_advances_with_transfer() {
        let mut rb = fabric();
        let obj = DataObject::new("x", Payload::Field(Field3::zeros(64, 64, 64)));
        let name = obj.name.clone();
        rb.host_mut(0).sds.put(obj);
        rb.transfer(&name, 0, 1);
        // 1 MiB over 155 Mbit ≈ 54 ms + 5 ms latency
        assert!(rb.host(1).clock.now() > SimTime::from_millis(40));
    }
}
