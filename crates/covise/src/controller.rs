//! The central controller.
//!
//! §4.5: "Session management for adding new hosts and synchronizing the
//! tasks in the module network is done in a central controller which has
//! the only knowledge about the whole application topology." The
//! [`Controller`] owns the module network (modules placed on broker
//! hosts, port-to-port connections), fires modules in dependency order,
//! routes cross-host objects through the [`RequestBroker`], and reports
//! wall time and transfer cost per execution — the measurements behind
//! experiments E42/E43.

use crate::broker::RequestBroker;
use crate::data::{DataObject, Payload};
use crate::module::Module;
use netsim::SimTime;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies a module within a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub usize);

/// Execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The port graph has a cycle.
    Cycle,
    /// An input port has no incoming connection.
    UnconnectedInput(ModuleId, &'static str),
    /// A module faulted.
    ModuleFailed(ModuleId, String),
    /// A cross-host transfer failed.
    TransferFailed(ModuleId),
    /// Bad module id or port name in a connection.
    BadConnection,
}

/// One port-to-port connection.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Wire {
    from: ModuleId,
    out_port: usize,
    to: ModuleId,
    in_port: usize,
}

/// Per-execution report.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Wall time per module, in firing order.
    pub module_wall: Vec<(ModuleId, Duration)>,
    /// Total wall time of the execution.
    pub total_wall: Duration,
    /// Bytes moved between hosts.
    pub bytes_transferred: u64,
    /// Latest virtual arrival time across all hosts after execution.
    pub virtual_finish: SimTime,
}

struct Placement {
    host: usize,
    module: Box<dyn Module>,
    /// Names of the outputs of the last firing, by port index.
    last_outputs: Vec<String>,
}

/// The module-network controller.
pub struct Controller {
    modules: Vec<Placement>,
    wires: Vec<Wire>,
}

impl Default for Controller {
    fn default() -> Self {
        Self::new()
    }
}

impl Controller {
    /// Empty network.
    pub fn new() -> Self {
        Controller {
            modules: Vec::new(),
            wires: Vec::new(),
        }
    }

    /// Place a module on a broker host; returns its id.
    pub fn add_module(&mut self, host: usize, module: Box<dyn Module>) -> ModuleId {
        self.modules.push(Placement {
            host,
            module,
            last_outputs: Vec::new(),
        });
        ModuleId(self.modules.len() - 1)
    }

    /// Connect `from.out_port` to `to.in_port` (port names).
    pub fn connect(
        &mut self,
        from: ModuleId,
        out_port: &str,
        to: ModuleId,
        in_port: &str,
    ) -> Result<(), ExecError> {
        let op = self
            .modules
            .get(from.0)
            .and_then(|p| p.module.outputs().iter().position(|&n| n == out_port))
            .ok_or(ExecError::BadConnection)?;
        let ip = self
            .modules
            .get(to.0)
            .and_then(|p| p.module.inputs().iter().position(|&n| n == in_port))
            .ok_or(ExecError::BadConnection)?;
        self.wires.push(Wire {
            from,
            out_port: op,
            to,
            in_port: ip,
        });
        Ok(())
    }

    /// Set a module parameter (the steering path of §4.3). Returns `false`
    /// if the module does not know the parameter.
    pub fn set_param(&mut self, id: ModuleId, key: &str, value: f64) -> bool {
        self.modules
            .get_mut(id.0)
            .map(|p| p.module.set_param(key, value))
            .unwrap_or(false)
    }

    /// Read a module parameter.
    pub fn param(&self, id: ModuleId, key: &str) -> Option<f64> {
        self.modules.get(id.0).and_then(|p| p.module.param(key))
    }

    /// Direct access to a module (e.g. to feed a new field into ReadField).
    pub fn module_mut(&mut self, id: ModuleId) -> &mut dyn Module {
        &mut *self.modules[id.0].module
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True if the network has no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Dependency-ordered firing sequence (Kahn; ready modules fire in id
    /// order for determinism).
    fn firing_order(&self) -> Result<Vec<ModuleId>, ExecError> {
        let n = self.modules.len();
        let mut indeg = vec![0usize; n];
        let mut dependents: HashMap<usize, Vec<usize>> = HashMap::new();
        for w in &self.wires {
            indeg[w.to.0] += 1;
            dependents.entry(w.from.0).or_default().push(w.to.0);
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::from(ready);
        while let Some(i) = queue.pop_front() {
            order.push(ModuleId(i));
            if let Some(deps) = dependents.get(&i) {
                let mut newly: Vec<usize> = Vec::new();
                for &d in deps {
                    indeg[d] -= 1;
                    if indeg[d] == 0 {
                        newly.push(d);
                    }
                }
                newly.sort_unstable();
                queue.extend(newly);
            }
        }
        if order.len() != n {
            return Err(ExecError::Cycle);
        }
        Ok(order)
    }

    /// Execute the whole network: fire every module in dependency order,
    /// routing cross-host inputs through the broker.
    pub fn execute(&mut self, broker: &mut RequestBroker) -> Result<ExecReport, ExecError> {
        let order = self.firing_order()?;
        let mut report = ExecReport::default();
        // detlint::allow(R1, "ExecReport wall-time stats are advisory output, never digest input")
        let t0 = Instant::now();
        let bytes0 = broker.stats().bytes;
        for id in order {
            // gather inputs
            let n_inputs = self.modules[id.0].module.inputs().len();
            let my_host = self.modules[id.0].host;
            let mut inputs: Vec<Option<Arc<DataObject>>> = vec![None; n_inputs];
            let incoming: Vec<Wire> = self.wires.iter().filter(|w| w.to == id).cloned().collect();
            for w in &incoming {
                let src = &self.modules[w.from.0];
                let obj_name = src
                    .last_outputs
                    .get(w.out_port)
                    .cloned()
                    .ok_or(ExecError::TransferFailed(id))?;
                let src_host = src.host;
                if src_host != my_host {
                    broker
                        .transfer(&obj_name, src_host, my_host)
                        .ok_or(ExecError::TransferFailed(id))?;
                }
                let obj = broker
                    .host(my_host)
                    .sds
                    .get(&obj_name)
                    .ok_or(ExecError::TransferFailed(id))?;
                inputs[w.in_port] = Some(obj);
            }
            let gathered: Vec<Arc<DataObject>> = inputs
                .into_iter()
                .enumerate()
                .map(|(port, o)| {
                    o.ok_or(ExecError::UnconnectedInput(
                        id,
                        self.modules[id.0].module.inputs()[port],
                    ))
                })
                .collect::<Result<_, _>>()?;
            // fire
            // detlint::allow(R1, "per-module wall time for ExecReport stats; advisory only")
            let tm = Instant::now();
            let outputs = self.modules[id.0]
                .module
                .execute(&gathered)
                .map_err(|e| ExecError::ModuleFailed(id, e))?;
            report.module_wall.push((id, tm.elapsed()));
            // publish outputs into this host's SDS
            let mut names = Vec::with_capacity(outputs.len());
            for o in outputs {
                names.push(o.name.clone());
                broker.host_mut(my_host).sds.put(o);
            }
            self.modules[id.0].last_outputs = names;
        }
        report.total_wall = t0.elapsed();
        report.bytes_transferred = broker.stats().bytes - bytes0;
        report.virtual_finish = (0..broker.host_count())
            .map(|h| broker.host(h).clock.now())
            .max()
            .unwrap_or(SimTime::ZERO);
        Ok(report)
    }

    /// Fetch the object produced on `(module, port)` in the last
    /// execution, from that module's host.
    pub fn output(
        &self,
        broker: &RequestBroker,
        id: ModuleId,
        port: &str,
    ) -> Option<Arc<DataObject>> {
        let p = self.modules.get(id.0)?;
        let idx = p.module.outputs().iter().position(|&n| n == port)?;
        let name = p.last_outputs.get(idx)?;
        broker.host(p.host).sds.get(name)
    }

    /// Convenience: the image produced by a Renderer module.
    pub fn image(&self, broker: &RequestBroker, id: ModuleId) -> Option<viz::Framebuffer> {
        match &self.output(broker, id, "image")?.payload {
            Payload::Image(fb) => Some(fb.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::HostArch;
    use crate::module::{CutPlane, IsoSurface, ReadField, Renderer};
    use netsim::Link;
    use viz::Field3;

    fn sphere_field(n: usize, r: f32) -> Field3 {
        let c = (n as f32 - 1.0) / 2.0;
        Field3::from_fn(n, n, n, |x, y, z| {
            r - ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt()
        })
    }

    /// The paper's Figure-1 pipeline split across two hosts: simulation
    /// host produces the field, visualization host isosurfaces + renders.
    fn two_host_pipeline() -> (Controller, RequestBroker, ModuleId, ModuleId) {
        let mut rb = RequestBroker::new();
        let compute = rb.add_host("dirac.ucl", HostArch::Big);
        let vis = rb.add_host("bezier.man", HostArch::Big);
        rb.connect(compute, vis, Link::uk_janet());
        let mut ctl = Controller::new();
        let read = ctl.add_module(compute, Box::new(ReadField::new(sphere_field(16, 5.0))));
        let iso = ctl.add_module(vis, Box::new(IsoSurface::new()));
        let render = ctl.add_module(vis, Box::new(Renderer::new(64)));
        ctl.connect(read, "field", iso, "field").unwrap();
        ctl.connect(iso, "mesh", render, "mesh").unwrap();
        (ctl, rb, read, render)
    }

    #[test]
    fn pipeline_executes_end_to_end() {
        let (mut ctl, mut rb, _read, render) = two_host_pipeline();
        let report = ctl.execute(&mut rb).unwrap();
        assert_eq!(report.module_wall.len(), 3);
        assert!(report.bytes_transferred >= 16 * 16 * 16 * 4);
        assert!(report.virtual_finish > SimTime::from_millis(5));
        let img = ctl.image(&rb, render).unwrap();
        assert_eq!(img.width(), 64);
    }

    #[test]
    fn param_change_changes_output() {
        let (mut ctl, mut rb, _read, render) = two_host_pipeline();
        ctl.execute(&mut rb).unwrap();
        let img_a = ctl.image(&rb, render).unwrap();
        assert!(ctl.set_param(render, "yaw", 1.0));
        ctl.execute(&mut rb).unwrap();
        let img_b = ctl.image(&rb, render).unwrap();
        assert!(img_a.diff_fraction(&img_b) > 0.0);
    }

    #[test]
    fn cycle_detected() {
        let mut rb = RequestBroker::new();
        let h = rb.add_host("x", HostArch::Little);
        let mut ctl = Controller::new();
        let a = ctl.add_module(h, Box::new(IsoSurface::new()));
        let b = ctl.add_module(h, Box::new(Renderer::new(32)));
        // nonsense wiring creating a cycle via port positions
        ctl.wires.push(Wire {
            from: a,
            out_port: 0,
            to: b,
            in_port: 0,
        });
        ctl.wires.push(Wire {
            from: b,
            out_port: 0,
            to: a,
            in_port: 0,
        });
        assert_eq!(ctl.execute(&mut rb).unwrap_err(), ExecError::Cycle);
    }

    #[test]
    fn unconnected_input_detected() {
        let mut rb = RequestBroker::new();
        let h = rb.add_host("x", HostArch::Little);
        let mut ctl = Controller::new();
        let iso = ctl.add_module(h, Box::new(IsoSurface::new()));
        let err = ctl.execute(&mut rb).unwrap_err();
        assert_eq!(err, ExecError::UnconnectedInput(iso, "field"));
    }

    #[test]
    fn bad_connection_rejected() {
        let mut rb = RequestBroker::new();
        let h = rb.add_host("x", HostArch::Little);
        let mut ctl = Controller::new();
        let read = ctl.add_module(h, Box::new(ReadField::new(Field3::zeros(4, 4, 4))));
        let iso = ctl.add_module(h, Box::new(IsoSurface::new()));
        assert_eq!(
            ctl.connect(read, "nonexistent", iso, "field"),
            Err(ExecError::BadConnection)
        );
        assert_eq!(
            ctl.connect(read, "field", iso, "nonexistent"),
            Err(ExecError::BadConnection)
        );
    }

    #[test]
    fn single_host_pipeline_transfers_nothing() {
        let mut rb = RequestBroker::new();
        let h = rb.add_host("solo", HostArch::Little);
        let mut ctl = Controller::new();
        let read = ctl.add_module(h, Box::new(ReadField::new(sphere_field(12, 4.0))));
        let iso = ctl.add_module(h, Box::new(IsoSurface::new()));
        ctl.connect(read, "field", iso, "field").unwrap();
        let report = ctl.execute(&mut rb).unwrap();
        assert_eq!(report.bytes_transferred, 0);
    }

    #[test]
    fn cutplane_in_network() {
        let mut rb = RequestBroker::new();
        let h = rb.add_host("solo", HostArch::Little);
        let mut ctl = Controller::new();
        let f = Field3::from_fn(8, 8, 8, |_, _, z| z as f32);
        let read = ctl.add_module(h, Box::new(ReadField::new(f)));
        let cut = ctl.add_module(h, Box::new(CutPlane::new()));
        ctl.connect(read, "field", cut, "field").unwrap();
        ctl.set_param(cut, "z_fraction", 1.0);
        ctl.execute(&mut rb).unwrap();
        let out = ctl.output(&rb, cut, "slice").unwrap();
        let Payload::Slice { values, .. } = &out.payload else {
            panic!()
        };
        assert!(values.iter().all(|&v| v == 7.0));
    }

    #[test]
    fn repeated_execution_updates_with_new_samples() {
        let (mut ctl, mut rb, read, render) = two_host_pipeline();
        ctl.execute(&mut rb).unwrap();
        let img_a = ctl.image(&rb, render).unwrap();
        // new sample from the simulation: bigger sphere
        let rf = ctl.module_mut(read);
        // downcast via trait object dance: rebuild instead
        let _ = rf;
        let mut ctl2 = Controller::new();
        let mut rb2 = RequestBroker::new();
        let compute = rb2.add_host("c", HostArch::Big);
        let vis = rb2.add_host("v", HostArch::Big);
        rb2.connect(compute, vis, Link::uk_janet());
        let read2 = ctl2.add_module(compute, Box::new(ReadField::new(sphere_field(16, 2.0))));
        let iso2 = ctl2.add_module(vis, Box::new(IsoSurface::new()));
        let render2 = ctl2.add_module(vis, Box::new(Renderer::new(64)));
        ctl2.connect(read2, "field", iso2, "field").unwrap();
        ctl2.connect(iso2, "mesh", render2, "mesh").unwrap();
        ctl2.execute(&mut rb2).unwrap();
        let img_b = ctl2.image(&rb2, render2).unwrap();
        assert!(img_a.diff_fraction(&img_b) > 0.0);
    }
}
