//! Modules — the processes of a COVISE module network.
//!
//! §4.5: "Distributed applications can be built by combining modules
//! (modeled as processes) from different application categories on
//! different hosts to form module networks. At the end of such networks
//! the rendering step performs the final visualization." The stock modules
//! here mirror the demo pipelines: read a simulation field, cut planes
//! through it (§4.3's canonical interaction), extract isosurfaces (§2.2),
//! render.

use crate::data::{DataObject, Payload};
use std::collections::BTreeMap;
use std::sync::Arc;
use viz::{mc, Camera, ColorMap, Field3, Rasterizer, Vec3};

/// A module in the network: named parameters, typed ports, one execution
/// function. (The Map-editor GUI of real COVISE is out of scope; networks
/// are built programmatically — see DESIGN.md §7.)
pub trait Module: Send {
    /// Module type name (e.g. `"CutPlane"`).
    fn name(&self) -> &str;
    /// Input port names, in positional order.
    fn inputs(&self) -> &'static [&'static str];
    /// Output port names, in positional order.
    fn outputs(&self) -> &'static [&'static str];
    /// Set a named numeric parameter; `false` if unknown.
    fn set_param(&mut self, key: &str, value: f64) -> bool;
    /// Read a named parameter.
    fn param(&self, key: &str) -> Option<f64>;
    /// Execute: consume one object per input port, produce one per output
    /// port.
    fn execute(&mut self, inputs: &[Arc<DataObject>]) -> Result<Vec<DataObject>, String>;
    /// Feed a fresh simulation sample into the module. Source modules
    /// (ReadField) accept it and return `true`; everything else ignores it.
    /// This is the coupling point where "the simulation component …
    /// emits 'samples' for consumption by the visualization component"
    /// (§2.1 of the paper).
    fn feed_field(&mut self, _field: Field3) -> bool {
        false
    }
}

/// Source module holding a field provided by the simulation coupling.
pub struct ReadField {
    field: Field3,
    /// Generation counter (bumped on [`ReadField::set_field`]).
    pub generation: u64,
}

impl ReadField {
    /// Start with a given field.
    pub fn new(field: Field3) -> Self {
        ReadField {
            field,
            generation: 0,
        }
    }

    /// Replace the field (a new sample arrived from the simulation).
    pub fn set_field(&mut self, field: Field3) {
        self.field = field;
        self.generation += 1;
    }
}

impl Module for ReadField {
    fn name(&self) -> &str {
        "ReadField"
    }
    fn inputs(&self) -> &'static [&'static str] {
        &[]
    }
    fn outputs(&self) -> &'static [&'static str] {
        &["field"]
    }
    fn set_param(&mut self, _key: &str, _value: f64) -> bool {
        false
    }
    fn param(&self, _key: &str) -> Option<f64> {
        None
    }
    fn execute(&mut self, _inputs: &[Arc<DataObject>]) -> Result<Vec<DataObject>, String> {
        Ok(vec![DataObject::new(
            "field",
            Payload::Field(self.field.clone()),
        )
        .with_attr("producer", "ReadField")])
    }
    fn feed_field(&mut self, field: Field3) -> bool {
        self.set_field(field);
        true
    }
}

/// Cutting plane through a field at a parameterized z fraction (§4.3's
/// "modifying parameters of a visualization tool such as a cutting plane
/// position").
pub struct CutPlane {
    params: BTreeMap<String, f64>,
}

impl CutPlane {
    /// Plane at the mid-height by default.
    pub fn new() -> Self {
        let mut params = BTreeMap::new();
        params.insert("z_fraction".to_string(), 0.5);
        CutPlane { params }
    }
}

impl Default for CutPlane {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for CutPlane {
    fn name(&self) -> &str {
        "CutPlane"
    }
    fn inputs(&self) -> &'static [&'static str] {
        &["field"]
    }
    fn outputs(&self) -> &'static [&'static str] {
        &["slice"]
    }
    fn set_param(&mut self, key: &str, value: f64) -> bool {
        if key == "z_fraction" {
            self.params.insert(key.to_string(), value.clamp(0.0, 1.0));
            true
        } else {
            false
        }
    }
    fn param(&self, key: &str) -> Option<f64> {
        self.params.get(key).copied()
    }
    fn execute(&mut self, inputs: &[Arc<DataObject>]) -> Result<Vec<DataObject>, String> {
        let Some(Payload::Field(f)) = inputs.first().map(|o| &o.payload) else {
            return Err("CutPlane needs a field input".into());
        };
        let (nx, _ny, nz) = f.dims();
        let zf = self.params["z_fraction"];
        let k = ((nz as f64 - 1.0) * zf).round() as usize;
        Ok(vec![DataObject::new(
            "slice",
            Payload::Slice {
                values: f.slice_z(k.min(nz - 1)),
                width: nx,
            },
        )
        .with_attr("producer", "CutPlane")
        .with_attr("z_index", &k.to_string())])
    }
}

/// Isosurface extraction (marching tetrahedra over the field).
pub struct IsoSurface {
    params: BTreeMap<String, f64>,
}

impl IsoSurface {
    /// Isovalue 0 by default (the zero crossing of the LB order parameter).
    pub fn new() -> Self {
        let mut params = BTreeMap::new();
        params.insert("isovalue".to_string(), 0.0);
        IsoSurface { params }
    }
}

impl Default for IsoSurface {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for IsoSurface {
    fn name(&self) -> &str {
        "IsoSurface"
    }
    fn inputs(&self) -> &'static [&'static str] {
        &["field"]
    }
    fn outputs(&self) -> &'static [&'static str] {
        &["mesh"]
    }
    fn set_param(&mut self, key: &str, value: f64) -> bool {
        if key == "isovalue" {
            self.params.insert(key.to_string(), value);
            true
        } else {
            false
        }
    }
    fn param(&self, key: &str) -> Option<f64> {
        self.params.get(key).copied()
    }
    fn execute(&mut self, inputs: &[Arc<DataObject>]) -> Result<Vec<DataObject>, String> {
        let Some(Payload::Field(f)) = inputs.first().map(|o| &o.payload) else {
            return Err("IsoSurface needs a field input".into());
        };
        let mesh = mc::isosurface_smooth(f, self.params["isovalue"] as f32);
        Ok(vec![
            DataObject::new("iso", Payload::Mesh(mesh)).with_attr("producer", "IsoSurface")
        ])
    }
}

/// The rendering sink: mesh in, image out.
pub struct Renderer {
    params: BTreeMap<String, f64>,
    /// Image resolution (square).
    pub resolution: usize,
}

impl Renderer {
    /// Renderer at the given square resolution.
    pub fn new(resolution: usize) -> Self {
        let mut params = BTreeMap::new();
        params.insert("yaw".to_string(), 0.0);
        params.insert("distance".to_string(), 3.0);
        Renderer { params, resolution }
    }
}

impl Module for Renderer {
    fn name(&self) -> &str {
        "Renderer"
    }
    fn inputs(&self) -> &'static [&'static str] {
        &["mesh"]
    }
    fn outputs(&self) -> &'static [&'static str] {
        &["image"]
    }
    fn set_param(&mut self, key: &str, value: f64) -> bool {
        if matches!(key, "yaw" | "distance") {
            self.params.insert(key.to_string(), value);
            true
        } else {
            false
        }
    }
    fn param(&self, key: &str) -> Option<f64> {
        self.params.get(key).copied()
    }
    fn execute(&mut self, inputs: &[Arc<DataObject>]) -> Result<Vec<DataObject>, String> {
        let Some(Payload::Mesh(mesh)) = inputs.first().map(|o| &o.payload) else {
            return Err("Renderer needs a mesh input".into());
        };
        let center = mesh
            .bounds()
            .map(|(lo, hi)| lo.add(hi).scale(0.5))
            .unwrap_or(Vec3::ZERO);
        let extent = mesh
            .bounds()
            .map(|(lo, hi)| hi.sub(lo).len().max(1.0))
            .unwrap_or(1.0);
        let yaw = self.params["yaw"] as f32;
        let dist = self.params["distance"] as f32 * extent * 0.5;
        let mut cam = Camera::look_at(
            Vec3::new(center.x, center.y + 0.3 * dist, center.z - dist),
            center,
        );
        cam.orbit(yaw);
        let mut r = Rasterizer::new(self.resolution, self.resolution);
        r.clear([12, 12, 32, 255]);
        let color = ColorMap::CoolWarm.map(0.75);
        r.draw_mesh(&cam, mesh, color);
        Ok(vec![DataObject::new(
            "image",
            Payload::Image(r.into_framebuffer()),
        )
        .with_attr("producer", "Renderer")])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_field(n: usize, r: f32) -> Field3 {
        let c = (n as f32 - 1.0) / 2.0;
        Field3::from_fn(n, n, n, |x, y, z| {
            r - ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt()
        })
    }

    #[test]
    fn read_field_emits_its_field() {
        let mut m = ReadField::new(Field3::zeros(4, 4, 4));
        let out = m.execute(&[]).unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, Payload::Field(_)));
        m.set_field(Field3::zeros(8, 8, 8));
        assert_eq!(m.generation, 1);
    }

    #[test]
    fn feed_field_accepted_only_by_sources() {
        let mut rf = ReadField::new(Field3::zeros(2, 2, 2));
        assert!(rf.feed_field(Field3::zeros(4, 4, 4)));
        assert_eq!(rf.generation, 1);
        assert!(!CutPlane::new().feed_field(Field3::zeros(2, 2, 2)));
        assert!(!Renderer::new(16).feed_field(Field3::zeros(2, 2, 2)));
    }

    #[test]
    fn cutplane_extracts_requested_plane() {
        let f = Field3::from_fn(4, 4, 4, |_, _, z| z as f32);
        let mut m = CutPlane::new();
        assert!(m.set_param("z_fraction", 1.0));
        let input = Arc::new(DataObject::new("f", Payload::Field(f)));
        let out = m.execute(std::slice::from_ref(&input)).unwrap();
        let Payload::Slice { values, width } = &out[0].payload else {
            panic!("expected slice");
        };
        assert_eq!(*width, 4);
        assert!(values.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn cutplane_param_clamped_and_unknown_rejected() {
        let mut m = CutPlane::new();
        assert!(m.set_param("z_fraction", 9.0));
        assert_eq!(m.param("z_fraction"), Some(1.0));
        assert!(!m.set_param("bogus", 1.0));
    }

    #[test]
    fn isosurface_produces_mesh_for_crossing_value() {
        let mut m = IsoSurface::new();
        let input = Arc::new(DataObject::new("f", Payload::Field(sphere_field(16, 5.0))));
        let out = m.execute(std::slice::from_ref(&input)).unwrap();
        let Payload::Mesh(mesh) = &out[0].payload else {
            panic!("expected mesh");
        };
        assert!(mesh.tri_count() > 50);
    }

    #[test]
    fn isovalue_changes_surface_size() {
        let field = sphere_field(20, 8.0);
        let count_at = |iso: f64| {
            let mut m = IsoSurface::new();
            m.set_param("isovalue", iso);
            let input = Arc::new(DataObject::new("f", Payload::Field(field.clone())));
            let out = m.execute(std::slice::from_ref(&input)).unwrap();
            match &out[0].payload {
                Payload::Mesh(mesh) => mesh.tri_count(),
                _ => 0,
            }
        };
        // iso=0 → r=8 sphere; iso=4 → r=4 sphere (smaller)
        assert!(count_at(0.0) > count_at(4.0));
    }

    #[test]
    fn renderer_draws_nonempty_image() {
        let mut iso = IsoSurface::new();
        let input = Arc::new(DataObject::new("f", Payload::Field(sphere_field(16, 5.0))));
        let mesh_obj = Arc::new(iso.execute(std::slice::from_ref(&input)).unwrap().remove(0));
        let mut r = Renderer::new(64);
        let out = r.execute(std::slice::from_ref(&mesh_obj)).unwrap();
        let Payload::Image(img) = &out[0].payload else {
            panic!("expected image");
        };
        let lit = img
            .bytes()
            .chunks_exact(4)
            .filter(|p| p[0] != 12 || p[1] != 12 || p[2] != 32)
            .count();
        assert!(lit > 100, "only {lit} non-background pixels");
    }

    #[test]
    fn renderer_yaw_changes_image() {
        let mut iso = IsoSurface::new();
        let input = Arc::new(DataObject::new("f", Payload::Field(sphere_field(12, 4.0))));
        let mesh_obj = Arc::new(iso.execute(std::slice::from_ref(&input)).unwrap().remove(0));
        let render = |yaw: f64| {
            let mut r = Renderer::new(48);
            r.set_param("yaw", yaw);
            let out = r.execute(std::slice::from_ref(&mesh_obj)).unwrap();
            match out.into_iter().next().unwrap().payload {
                Payload::Image(img) => img,
                _ => panic!(),
            }
        };
        let a = render(0.0);
        let b = render(1.2);
        assert!(a.diff_fraction(&b) > 0.0, "orbiting must change the image");
    }

    #[test]
    fn modules_reject_wrong_inputs() {
        let scalar = Arc::new(DataObject::new("s", Payload::Scalar(1.0)));
        assert!(CutPlane::new()
            .execute(std::slice::from_ref(&scalar))
            .is_err());
        assert!(IsoSurface::new()
            .execute(std::slice::from_ref(&scalar))
            .is_err());
        assert!(Renderer::new(32)
            .execute(std::slice::from_ref(&scalar))
            .is_err());
        assert!(CutPlane::new().execute(&[]).is_err());
    }
}
