//! Data objects and the shared data space.
//!
//! §4.5: "Scientific data is handled as data objects which have attributes
//! such as names and lifetime. They represent grids on which dependent data
//! is defined." And: "the shared data space (SDS) is used on a single host
//! for the exchange of data objects between the locally running modules to
//! minimize copying overhead. On most platforms this is realized as shared
//! memory communication" — here, `Arc`-shared objects in a per-host store,
//! which is exactly shared memory with zero-copy reads.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use viz::{Field3, Framebuffer, TriMesh};

/// Global sequence for system-wide unique object names.
static NAME_SEQ: AtomicU64 = AtomicU64::new(0);

/// Typed payload of a data object.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A scalar value (parameters, metrics).
    Scalar(f64),
    /// A regular-grid scalar field.
    Field(Field3),
    /// A triangle mesh.
    Mesh(TriMesh),
    /// A 2-D slice (row-major values + width).
    Slice {
        /// Row-major values.
        values: Vec<f32>,
        /// Row width.
        width: usize,
    },
    /// A rendered image.
    Image(Framebuffer),
}

impl Payload {
    /// Approximate in-memory/wire size in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            Payload::Scalar(_) => 8,
            Payload::Field(f) => f.byte_size(),
            Payload::Mesh(m) => m.byte_size(),
            Payload::Slice { values, .. } => values.len() * 4,
            Payload::Image(fb) => fb.byte_size(),
        }
    }

    /// Short kind string (for attributes and diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Scalar(_) => "scalar",
            Payload::Field(_) => "field",
            Payload::Mesh(_) => "mesh",
            Payload::Slice { .. } => "slice",
            Payload::Image(_) => "image",
        }
    }
}

/// A named, attributed data object.
#[derive(Debug, Clone)]
pub struct DataObject {
    /// System-wide unique name.
    pub name: String,
    /// The payload.
    pub payload: Payload,
    /// Free-form attributes (the paper names "names and lifetime";
    /// modules add provenance).
    pub attributes: BTreeMap<String, String>,
}

impl DataObject {
    /// Create an object with a fresh system-wide unique name derived from
    /// `base`.
    pub fn new(base: &str, payload: Payload) -> DataObject {
        let seq = NAME_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut attributes = BTreeMap::new();
        attributes.insert("kind".to_string(), payload.kind().to_string());
        DataObject {
            name: format!("{base}_{seq}"),
            payload,
            attributes,
        }
    }

    /// Attach an attribute (builder style).
    pub fn with_attr(mut self, key: &str, value: &str) -> DataObject {
        self.attributes.insert(key.to_string(), value.to_string());
        self
    }

    /// Payload size in bytes.
    pub fn byte_size(&self) -> usize {
        self.payload.byte_size()
    }
}

/// A per-host object store.
#[derive(Debug, Default)]
pub struct SharedDataSpace {
    objects: BTreeMap<String, Arc<DataObject>>,
}

impl SharedDataSpace {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Put an object; returns the shared handle. Names are unique by
    /// construction, so an existing entry under the same name is a logic
    /// error and panics in debug builds.
    pub fn put(&mut self, obj: DataObject) -> Arc<DataObject> {
        debug_assert!(
            !self.objects.contains_key(&obj.name),
            "duplicate SDS name {}",
            obj.name
        );
        let arc = Arc::new(obj);
        self.objects.insert(arc.name.clone(), arc.clone());
        arc
    }

    /// Zero-copy lookup.
    pub fn get(&self, name: &str) -> Option<Arc<DataObject>> {
        self.objects.get(name).cloned()
    }

    /// Remove an object (end of its lifetime).
    pub fn remove(&mut self, name: &str) -> bool {
        self.objects.remove(name).is_some()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total bytes held.
    pub fn total_bytes(&self) -> usize {
        self.objects.values().map(|o| o.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_even_for_same_base() {
        let a = DataObject::new("cut", Payload::Scalar(1.0));
        let b = DataObject::new("cut", Payload::Scalar(2.0));
        assert_ne!(a.name, b.name);
        assert!(a.name.starts_with("cut_"));
    }

    #[test]
    fn kind_attribute_auto_set() {
        let o = DataObject::new("f", Payload::Field(Field3::zeros(2, 2, 2)));
        assert_eq!(o.attributes.get("kind").map(String::as_str), Some("field"));
    }

    #[test]
    fn sds_put_get_is_zero_copy() {
        let mut sds = SharedDataSpace::new();
        let obj = DataObject::new("mesh", Payload::Mesh(TriMesh::unit_cube()));
        let name = obj.name.clone();
        let a = sds.put(obj);
        let b = sds.get(&name).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "SDS must hand out the same allocation");
    }

    #[test]
    fn sds_remove_and_counters() {
        let mut sds = SharedDataSpace::new();
        let o = sds.put(DataObject::new("x", Payload::Scalar(1.0)));
        assert_eq!(sds.len(), 1);
        assert_eq!(sds.total_bytes(), 8);
        assert!(sds.remove(&o.name));
        assert!(!sds.remove(&o.name));
        assert!(sds.is_empty());
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::Scalar(0.0).byte_size(), 8);
        assert_eq!(Payload::Field(Field3::zeros(4, 4, 4)).byte_size(), 256);
        assert_eq!(
            Payload::Slice {
                values: vec![0.0; 16],
                width: 4
            }
            .byte_size(),
            64
        );
        assert_eq!(
            Payload::Image(Framebuffer::new(8, 8)).byte_size(),
            8 * 8 * 4
        );
    }

    #[test]
    fn with_attr_builder() {
        let o = DataObject::new("x", Payload::Scalar(0.0)).with_attr("producer", "CutPlane");
        assert_eq!(
            o.attributes.get("producer").map(String::as_str),
            Some("CutPlane")
        );
    }
}
