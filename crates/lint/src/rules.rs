//! The determinism rules R1–R7.
//!
//! Each rule walks the token stream of one [`SourceFile`] and reports
//! hazards with a line, message, and fix hint. Test-only code (lines
//! inside `#[cfg(test)]` modules / `#[test]` fns) is exempt from every
//! rule: the contract protects the digest-producing paths, and the
//! dynamic 1-vs-8-thread matrix already covers tests.

use crate::source::{match_paren, path_ends_at, SourceFile};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Wall-clock reads (`Instant::now`, `SystemTime`, `Utc::now`, ...).
    R1,
    /// Iteration over `HashMap`/`HashSet` (nondeterministic order).
    R2,
    /// Raw threading (`thread::spawn`, `crossbeam`) outside the executor.
    R3,
    /// Unseeded RNG (`thread_rng`, `from_entropy`, `OsRng`).
    R4,
    /// Unordered float reduction (`.sum()`/`.fold()`) inside `parallel_*`.
    R5,
    /// `#[allow(...)]` / `unsafe` without a justification comment.
    R6,
    /// Float reassociation hazards: fast-math intrinsics and lane-width-
    /// dependent horizontal reductions (`hsum`-style) whose result bits
    /// change with lane count or association order.
    R7,
    /// A `detlint::allow` that carries no reason string (meta rule —
    /// cannot itself be suppressed).
    BadAllow,
}

impl RuleId {
    /// All suppressible rules, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
    ];

    /// Parse `"R1"`..`"R7"`.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim() {
            "R1" => Some(RuleId::R1),
            "R2" => Some(RuleId::R2),
            "R3" => Some(RuleId::R3),
            "R4" => Some(RuleId::R4),
            "R5" => Some(RuleId::R5),
            "R6" => Some(RuleId::R6),
            "R7" => Some(RuleId::R7),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleId::R1 => "R1",
            RuleId::R2 => "R2",
            RuleId::R3 => "R3",
            RuleId::R4 => "R4",
            RuleId::R5 => "R5",
            RuleId::R6 => "R6",
            RuleId::R7 => "R7",
            RuleId::BadAllow => "R0",
        };
        f.write_str(s)
    }
}

/// One reported hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    pub line: u32,
    pub message: String,
    pub hint: String,
}

/// Run every rule in `enabled` over `src`, apply inline suppressions, and
/// append a [`RuleId::BadAllow`] finding for each reasonless suppression.
/// Findings come back sorted by (line, rule).
pub fn lint_source(src: &str, enabled: &BTreeSet<RuleId>) -> Vec<Finding> {
    let file = SourceFile::parse(src);
    let mut raw: Vec<Finding> = Vec::new();
    if enabled.contains(&RuleId::R1) {
        r1_wall_clock(&file, &mut raw);
    }
    if enabled.contains(&RuleId::R2) {
        r2_hash_iteration(&file, &mut raw);
    }
    if enabled.contains(&RuleId::R3) {
        r3_raw_threads(&file, &mut raw);
    }
    if enabled.contains(&RuleId::R4) {
        r4_unseeded_rng(&file, &mut raw);
    }
    if enabled.contains(&RuleId::R5) {
        r5_unordered_reduce(&file, &mut raw);
    }
    if enabled.contains(&RuleId::R6) {
        r6_unjustified_escape(&file, &mut raw);
    }
    if enabled.contains(&RuleId::R7) {
        r7_reassociation(&file, &mut raw);
    }
    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| !file.is_test_line(f.line))
        .filter(|f| file.suppression_for(f.rule, f.line).is_none())
        .collect();
    for s in &file.suppressions {
        if s.reason.is_none() {
            out.push(Finding {
                rule: RuleId::BadAllow,
                line: s.line,
                message: "detlint::allow without a reason string".into(),
                hint: "write detlint::allow(Rn, \"why this site is safe\")".into(),
            });
        }
    }
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// R1 — wall-clock reads. The virtual clock (`SimTime`) is the only time
/// source replayable across runs; `Instant`/`SystemTime` values differ
/// per host and feed timing jitter into anything they touch.
fn r1_wall_clock(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let hit = match t.text.as_str() {
            "SystemTime" => true,
            "now" => ["Instant", "Utc", "Local", "Date"]
                .iter()
                .any(|ty| path_ends_at(toks, i, &[ty, ":", ":", "now"])),
            _ => false,
        };
        if hit {
            out.push(Finding {
                rule: RuleId::R1,
                line: t.line,
                message: format!("wall-clock read `{}` breaks replay determinism", t.text),
                hint: "use the scenario virtual clock (SimTime) or move timing into a \
                       bench/exp binary"
                    .into(),
            });
        }
    }
}

const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// R2 — iteration over hash-ordered collections. `HashMap`/`HashSet`
/// iteration order is randomized per process; any digest, fan-out, or
/// reduction fed by it is nondeterministic. Detection is per-file: names
/// declared (or typed) as `HashMap`/`HashSet` are tracked, and iterating
/// method calls or `for` loops over those names are flagged.
fn r2_hash_iteration(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    let names = hash_collection_names(file);
    if names.is_empty() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        // name . method (    |    self . name . method (
        if ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].text == "."
            && names.contains(&toks[i - 2].text)
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            out.push(Finding {
                rule: RuleId::R2,
                line: t.line,
                message: format!(
                    "iteration over hash-ordered collection `{}` (`.{}()`)",
                    toks[i - 2].text,
                    t.text
                ),
                hint: "switch to BTreeMap/BTreeSet, or collect and sort before use".into(),
            });
        }
        // for <pat> in <expr containing a tracked name> {
        if t.text == "for" {
            let mut j = i + 1;
            let mut in_at = None;
            let mut depth = 0i32;
            while j < toks.len() && j < i + 64 {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "in" if depth == 0 => {
                        in_at = Some(j);
                        break;
                    }
                    "{" | ";" => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(start) = in_at else { continue };
            let mut k = start + 1;
            let mut depth = 0i32;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    ";" => break,
                    name if names.contains(name) => {
                        // `m.get(..)`-style member calls inside the header
                        // were already handled above; a bare `&name` (or
                        // `name` feeding IntoIterator) is the hazard here.
                        let called = toks.get(k + 1).is_some_and(|n| n.text == ".");
                        if !called {
                            out.push(Finding {
                                rule: RuleId::R2,
                                line: toks[k].line,
                                message: format!("for-loop over hash-ordered collection `{name}`"),
                                hint: "switch to BTreeMap/BTreeSet, or collect and sort \
                                       before use"
                                    .into(),
                            });
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
}

/// Names bound to `HashMap`/`HashSet` in this file: `name: HashMap<..>`
/// type ascriptions (fields, params, lets) and `let name = HashMap::new()`
/// style initializers.
fn hash_collection_names(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.lexed.tokens;
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.text != "HashMap" && t.text != "HashSet" {
            continue;
        }
        // Walk back over a path prefix / reference sigils to `ident :`.
        let mut j = i;
        while j > 0 {
            let p = toks[j - 1].text.as_str();
            if p == ":" && j >= 2 && toks[j - 2].text == ":" {
                j -= 2; // `::` path separator
            } else if ["std", "collections", "&", "mut", "'"].contains(&p)
                || toks[j - 1].kind == crate::lexer::TokKind::Lifetime
            {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].kind == crate::lexer::TokKind::Ident {
            names.insert(toks[j - 2].text.clone());
        }
    }
    // let [mut] name ... = <rhs containing HashMap/HashSet before `;`>
    for (i, t) in toks.iter().enumerate() {
        if t.text != "let" {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else {
            continue;
        };
        if name_tok.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        let mut k = j + 1;
        let mut saw_eq = false;
        while k < toks.len() && k < j + 48 {
            match toks[k].text.as_str() {
                ";" => break,
                "=" => saw_eq = true,
                "HashMap" | "HashSet" if saw_eq => {
                    names.insert(name_tok.text.clone());
                    break;
                }
                _ => {}
            }
            k += 1;
        }
    }
    names
}

/// R3 — raw threading. All parallelism must route through
/// `gridsteer_exec` (fixed chunk→index mapping); ad-hoc `thread::spawn`
/// or `crossbeam` reintroduces scheduling-order dependence.
fn r3_raw_threads(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.text == "crossbeam" {
            out.push(Finding {
                rule: RuleId::R3,
                line: t.line,
                message: "crossbeam used outside gridsteer_exec".into(),
                hint: "route parallelism through the shared ExecPool".into(),
            });
        }
        if t.text == "spawn" && path_ends_at(toks, i, &["thread", ":", ":", "spawn"]) {
            out.push(Finding {
                rule: RuleId::R3,
                line: t.line,
                message: "thread::spawn outside gridsteer_exec".into(),
                hint: "route parallelism through the shared ExecPool".into(),
            });
        }
    }
}

/// R4 — unseeded randomness. Every RNG must be constructed from an
/// explicit seed recorded in the scenario, or replay diverges.
fn r4_unseeded_rng(file: &SourceFile, out: &mut Vec<Finding>) {
    for t in &file.lexed.tokens {
        if ["thread_rng", "from_entropy", "OsRng"].contains(&t.text.as_str()) {
            out.push(Finding {
                rule: RuleId::R4,
                line: t.line,
                message: format!("unseeded RNG source `{}`", t.text),
                hint: "use StdRng::seed_from_u64 with a scenario-recorded seed".into(),
            });
        }
    }
}

/// R5 — unordered float reduction inside a parallel region. `.sum()` /
/// `.fold()` in a closure handed to a `parallel_*` helper accumulates in
/// completion order unless wrapped by an ordered reduce (the pool's
/// `map` + sequential fold).
fn r5_unordered_reduce(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    // Collect `ordered_reduce(...)` spans so reductions inside them pass.
    let mut ordered: Vec<(usize, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.text == "ordered_reduce" && toks.get(i + 1).is_some_and(|n| n.text == "(") {
            ordered.push((i + 1, match_paren(toks, i + 1)));
        }
    }
    for (i, t) in toks.iter().enumerate() {
        if !t.text.starts_with("parallel_") || toks.get(i + 1).map(|n| n.text.as_str()) != Some("(")
        {
            continue;
        }
        let close = match_paren(toks, i + 1);
        for k in (i + 2)..close {
            let m = &toks[k];
            if (m.text == "sum" || m.text == "fold")
                && toks[k - 1].text == "."
                && toks.get(k + 1).is_some_and(|n| n.text == "(")
                && !ordered.iter().any(|&(a, b)| a < k && k < b)
            {
                out.push(Finding {
                    rule: RuleId::R5,
                    line: m.line,
                    message: format!(
                        "float accumulation `.{}()` inside `{}` closure runs in \
                         completion order",
                        m.text, t.text
                    ),
                    hint: "use pool.map(..) and fold the returned Vec sequentially \
                           (ordered reduce)"
                        .into(),
                });
            }
        }
    }
}

/// R6 — escape hatches need stated reasons: `#[allow(...)]` attributes
/// and `unsafe` tokens must carry a comment on the same line or within
/// the two lines above explaining why the escape is sound.
fn r6_unjustified_escape(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let (is_escape, what) = if t.text == "unsafe" {
            (true, "unsafe")
        } else if t.text == "allow" && i >= 2 && toks[i - 1].text == "[" {
            // `#[allow` or `#![allow`
            let h = &toks[i - 2].text;
            (h == "#" || h == "!", "#[allow(..)]")
        } else {
            (false, "")
        };
        if is_escape && !file.has_nearby_comment(t.line) {
            out.push(Finding {
                rule: RuleId::R6,
                line: t.line,
                message: format!("{what} without a justification comment"),
                hint: "add a comment (same line or just above) stating why this \
                       escape is sound"
                    .into(),
            });
        }
    }
}

/// Fast-math intrinsics: each licenses LLVM to reassociate/contract, so
/// the result bits depend on optimization choices, not the source.
const FAST_MATH: [&str; 10] = [
    "fadd_fast",
    "fsub_fast",
    "fmul_fast",
    "fdiv_fast",
    "frem_fast",
    "fadd_algebraic",
    "fsub_algebraic",
    "fmul_algebraic",
    "fdiv_algebraic",
    "frem_algebraic",
];

/// Horizontal SIMD reductions: the fold shape (and therefore the float
/// association order) is a function of lane width, so the same data gives
/// different bits on different vector units.
const LANE_REDUCTIONS: [&str; 8] = [
    "hsum",
    "hmin",
    "hmax",
    "reduce_sum",
    "reduce_add",
    "reduce_min",
    "reduce_max",
    "horizontal_sum",
];

/// R7 — float reassociation hazards. Fast-math intrinsics hand the
/// compiler a reassociation license, and lane-width-dependent horizontal
/// reductions bake the vector width into the association tree; either way
/// the digest depends on how the code was compiled rather than what it
/// computes. Sites that pin their fold shape (like a fixed-width pairwise
/// tree) justify themselves with `// detlint::allow(R7, "...")`.
fn r7_reassociation(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let name = t.text.as_str();
        let called = toks.get(i + 1).is_some_and(|n| n.text == "(")
            || toks.get(i + 1).is_some_and(|n| n.text == ":");
        if !called {
            continue;
        }
        if FAST_MATH.contains(&name) {
            out.push(Finding {
                rule: RuleId::R7,
                line: t.line,
                message: format!("fast-math intrinsic `{name}` licenses float reassociation"),
                hint: "use plain float ops (fixed association), or justify with \
                       detlint::allow(R7, ...)"
                    .into(),
            });
        } else if LANE_REDUCTIONS.contains(&name) {
            out.push(Finding {
                rule: RuleId::R7,
                line: t.line,
                message: format!(
                    "horizontal reduction `{name}` folds in lane-width-dependent order"
                ),
                hint: "accumulate per-lane and fold the lanes in a fixed order, or \
                       justify the fixed fold shape with detlint::allow(R7, ...)"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> BTreeSet<RuleId> {
        RuleId::ALL.iter().copied().collect()
    }

    fn rules_of(src: &str) -> Vec<(RuleId, u32)> {
        lint_source(src, &all())
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn r1_flags_instant_and_systemtime_only_outside_tests() {
        let src = "fn a() { let t = Instant::now(); }\n\
                   fn b() { let s = SystemTime::now(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn c() { let t = Instant::now(); }\n}\n";
        assert_eq!(rules_of(src), vec![(RuleId::R1, 1), (RuleId::R1, 2)]);
    }

    #[test]
    fn r2_flags_method_iteration_and_for_loops() {
        let src = "struct S { m: HashMap<u32, u8> }\n\
                   impl S {\n\
                     fn f(&self) { for v in self.m.values() {} }\n\
                     fn g(&self) { let m2: HashSet<u8> = HashSet::new(); for x in &m2 {} }\n\
                     fn h(&self) { let _ = self.m.get(&1); }\n\
                   }\n";
        assert_eq!(rules_of(src), vec![(RuleId::R2, 3), (RuleId::R2, 4)]);
    }

    #[test]
    fn r2_ignores_lookup_only_maps() {
        let src = "fn f(m: &HashMap<String, u32>) -> Option<u32> { m.get(\"x\").copied() }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn r3_flags_spawn_and_crossbeam() {
        let src = "use crossbeam::channel::bounded;\nfn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_of(src), vec![(RuleId::R3, 1), (RuleId::R3, 2)]);
    }

    #[test]
    fn r4_flags_entropy_sources() {
        let src = "fn f() { let mut r = thread_rng(); let s = StdRng::from_entropy(); }\n";
        assert_eq!(rules_of(src), vec![(RuleId::R4, 1), (RuleId::R4, 1)]);
    }

    #[test]
    fn r5_flags_sum_inside_parallel_closure_only() {
        let src = "fn f(pool: &P, v: &mut [f64]) {\n\
                     pool.parallel_chunks(v, 8, |_, c| {\n\
                       let s: f64 = c.iter().sum();\n\
                       let _ = s;\n\
                     });\n\
                     let fine: f64 = v.iter().sum();\n\
                   }\n";
        assert_eq!(rules_of(src), vec![(RuleId::R5, 3)]);
    }

    #[test]
    fn r6_flags_unjustified_allow_and_unsafe() {
        let src = "#[allow(dead_code)]\nfn f() { let p = unsafe { *x }; }\n\
                   // sound: slot is pinned for the pool's lifetime\nfn g() { let q = unsafe { *y }; }\n";
        assert_eq!(rules_of(src), vec![(RuleId::R6, 1), (RuleId::R6, 2)]);
    }

    #[test]
    fn r7_flags_fast_math_and_lane_reductions() {
        let src = "fn f(a: f64, b: f64) -> f64 { unsafe { std::intrinsics::fadd_fast(a, b) } }\n\
                   fn g(v: F64x4) -> f64 { v.hsum() }\n\
                   fn h(v: &[f64]) -> f64 { v.iter().sum() }\n\
                   fn ok(v: F64x4) -> f64 { v.hsum() } // detlint::allow(R7, \"fixed pairwise tree\")\n";
        // line 1 also trips R6 (unjustified unsafe)
        assert_eq!(
            rules_of(src),
            vec![(RuleId::R6, 1), (RuleId::R7, 1), (RuleId::R7, 2)]
        );
    }

    #[test]
    fn suppression_with_reason_silences_without_reason_reports() {
        let src = "fn a() { let t = Instant::now(); } // detlint::allow(R1, \"io timeout\")\n\
                   fn b() { let t = Instant::now(); } // detlint::allow(R1)\n";
        assert_eq!(rules_of(src), vec![(RuleId::BadAllow, 2)]);
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let mut enabled = all();
        enabled.remove(&RuleId::R1);
        let f = lint_source("fn a() { let t = Instant::now(); }", &enabled);
        assert!(f.is_empty());
    }
}
