//! Workspace walker: discover member crates, lint each crate's `src/`
//! tree under its policy, and aggregate findings.
//!
//! Only `src/` trees are linted: `tests/`, `benches/`, and `examples/`
//! are dynamic-check territory (and host the lint's own known-bad fixture
//! corpus). Excluded prefixes from the policy (`vendor/`, `target/`) are
//! never walked.

use crate::policy::Policy;
use crate::rules::{lint_source, Finding, RuleId};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// A [`Finding`] with the file it was found in (workspace-relative).
#[derive(Debug, Clone)]
pub struct FileFinding {
    pub file: String,
    pub finding: Finding,
}

impl FileFinding {
    /// `file:line: [rule] message (hint: ..)` — the report line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {} (hint: {})",
            self.file,
            self.finding.line,
            self.finding.rule,
            self.finding.message,
            self.finding.hint
        )
    }
}

/// A fatal engine problem (I/O, bad policy).
#[derive(Debug)]
pub struct EngineError(pub String);

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One discovered workspace member.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CrateDir {
    pub name: String,
    pub dir: PathBuf,
}

/// Find member crates: every directory under `root` (recursively, skipping
/// excluded prefixes, `target`, and dot-dirs) holding a `Cargo.toml` with a
/// `[package]` name. Sorted by name for stable reports.
pub fn discover_crates(root: &Path, policy: &Policy) -> Result<Vec<CrateDir>, EngineError> {
    let mut out = BTreeSet::new();
    walk_for_crates(root, root, policy, &mut out)?;
    Ok(out.into_iter().collect())
}

fn walk_for_crates(
    root: &Path,
    dir: &Path,
    policy: &Policy,
    out: &mut BTreeSet<CrateDir>,
) -> Result<(), EngineError> {
    let rel = rel_str(root, dir);
    if policy.is_excluded(&rel) {
        return Ok(());
    }
    let manifest = dir.join("Cargo.toml");
    if manifest.is_file() {
        if let Some(name) = package_name(&manifest) {
            out.insert(CrateDir {
                name,
                dir: dir.to_path_buf(),
            });
        }
    }
    let entries =
        fs::read_dir(dir).map_err(|e| EngineError(format!("read_dir {}: {e}", dir.display())))?;
    let mut subdirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    subdirs.sort();
    for sub in subdirs {
        let base = sub.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if base.starts_with('.') || base == "target" {
            continue;
        }
        walk_for_crates(root, &sub, policy, out)?;
    }
    Ok(())
}

/// Pull `name = "..."` out of a manifest's `[package]` section.
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix('[') {
            in_package = rest.trim_end_matches(']').trim() == "package";
            continue;
        }
        if in_package {
            if let Some((k, v)) = line.split_once('=') {
                if k.trim() == "name" {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Lint the whole workspace under `root` with `policy`. Findings are
/// sorted by (file, line, rule).
pub fn lint_workspace(root: &Path, policy: &Policy) -> Result<Vec<FileFinding>, EngineError> {
    let mut out = Vec::new();
    for cr in discover_crates(root, policy)? {
        let rules = policy.enabled_rules(&cr.name);
        if rules.is_empty() {
            continue;
        }
        let src_dir = cr.dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        lint_tree(root, &src_dir, &rules, &mut out)?;
    }
    out.sort_by(|a, b| {
        (&a.file, a.finding.line, a.finding.rule).cmp(&(&b.file, b.finding.line, b.finding.rule))
    });
    Ok(out)
}

/// Lint every `.rs` file under `dir` (used for both crate `src/` trees
/// and explicit `--root` corpus runs), with all findings keyed relative
/// to `root`.
pub fn lint_tree(
    root: &Path,
    dir: &Path,
    rules: &BTreeSet<RuleId>,
    out: &mut Vec<FileFinding>,
) -> Result<(), EngineError> {
    let mut files = Vec::new();
    collect_rs(dir, &mut files)?;
    files.sort();
    for f in files {
        let src = fs::read_to_string(&f)
            .map_err(|e| EngineError(format!("read {}: {e}", f.display())))?;
        let rel = rel_str(root, &f);
        for finding in lint_source(&src, rules) {
            out.push(FileFinding {
                file: rel.clone(),
                finding,
            });
        }
    }
    Ok(())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), EngineError> {
    let entries =
        fs::read_dir(dir).map_err(|e| EngineError(format!("read_dir {}: {e}", dir.display())))?;
    for e in entries.filter_map(|e| e.ok()) {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn rel_str(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_reads_package_section_only() {
        let dir = std::env::temp_dir().join("detlint_engine_test_pkg");
        fs::create_dir_all(&dir).unwrap();
        let man = dir.join("Cargo.toml");
        fs::write(
            &man,
            "[workspace]\nmembers = []\n[package]\nname = \"demo_pkg\"\nversion = \"0.0.0\"\n",
        )
        .unwrap();
        assert_eq!(package_name(&man).as_deref(), Some("demo_pkg"));
        fs::remove_dir_all(&dir).ok();
    }
}
