//! Per-file source model built on top of the raw token stream: test-region
//! detection (`#[cfg(test)]` modules and `#[test]` functions), inline
//! `detlint::allow(...)` suppressions, and small token-walking helpers the
//! rules share.

use crate::lexer::{lex, Lexed, Token};
use crate::rules::RuleId;
use std::collections::BTreeSet;

/// An inline suppression parsed from a comment:
/// `// detlint::allow(R2, "hash order irrelevant: removal-only pass")`.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: RuleId,
    pub reason: Option<String>,
    /// Line of the comment itself.
    pub line: u32,
    /// Line the suppression applies to: the comment's own line if it
    /// trails code, otherwise the next non-comment line below it.
    pub target_line: u32,
}

/// A file after lexing + structure analysis, ready for rules.
pub struct SourceFile {
    pub lexed: Lexed,
    /// 1-indexed lines inside `#[cfg(test)]` modules / `#[test]` fns.
    test_lines: BTreeSet<u32>,
    pub suppressions: Vec<Suppression>,
    /// Total line count (for bounds).
    pub last_line: u32,
}

impl SourceFile {
    /// Lex and analyse one file's source text.
    pub fn parse(src: &str) -> SourceFile {
        let lexed = lex(src);
        let last_line = (src.lines().count() as u32).max(1);
        let test_lines = find_test_regions(&lexed.tokens);
        let suppressions = find_suppressions(&lexed, last_line);
        SourceFile {
            lexed,
            test_lines,
            suppressions,
            last_line,
        }
    }

    /// True if `line` is inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// True if a comment covers `line` or either of the two lines above —
    /// the R6 justification window.
    pub fn has_nearby_comment(&self, line: u32) -> bool {
        self.lexed.comment_on_line(line)
            || (line >= 1 && self.lexed.comment_on_line(line - 1))
            || (line >= 2 && self.lexed.comment_on_line(line - 2))
    }

    /// The suppression covering (`rule`, `line`), if any.
    pub fn suppression_for(&self, rule: RuleId, line: u32) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.rule == rule && s.target_line == line)
    }
}

/// Mark every line inside a `#[cfg(test)] mod { .. }` (or any braced item
/// directly following `#[cfg(test)]`) and inside `#[test] fn` bodies.
fn find_test_regions(tokens: &[Token]) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = match_attr(tokens, i, &["cfg", "(", "test", ")"])
            .or_else(|| match_attr(tokens, i, &["test"]))
        {
            // Skip any further attributes (`#[should_panic]`, doc attrs...)
            let mut j = attr_end;
            while let Some(k) = skip_attr(tokens, j) {
                j = k;
            }
            // Find the item's opening brace (or a `;` ending a braceless
            // item, in which case there is no region to mark).
            let mut k = j;
            let mut open = None;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "{" => {
                        open = Some(k);
                        break;
                    }
                    ";" => break,
                    _ => k += 1,
                }
            }
            if let Some(o) = open {
                let close = match_brace(tokens, o);
                let (a, b) = (tokens[o].line, tokens[close.min(tokens.len() - 1)].line);
                for l in a..=b {
                    out.insert(l);
                }
                i = close;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// If tokens at `i` start an attribute `#[ ... ]` whose inner tokens are
/// exactly `body` (text match), return the index just past the closing `]`.
fn match_attr(tokens: &[Token], i: usize, body: &[&str]) -> Option<usize> {
    if tokens.get(i)?.text != "#" {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j)?.text == "!" {
        j += 1;
    }
    if tokens.get(j)?.text != "[" {
        return None;
    }
    j += 1;
    for want in body {
        if tokens.get(j)?.text != *want {
            return None;
        }
        j += 1;
    }
    if tokens.get(j)?.text != "]" {
        return None;
    }
    Some(j + 1)
}

/// If tokens at `i` start *any* attribute, return the index past its `]`.
fn skip_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#" {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j)?.text == "!" {
        j += 1;
    }
    if tokens.get(j)?.text != "[" {
        return None;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or last token if ragged).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len() - 1
}

/// Index of the `)` matching the `(` at `open` (or last token if ragged).
pub fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len() - 1
}

/// Parse `detlint::allow(RULE, "reason")` directives out of comments.
/// A comment that shares its line with code suppresses that line; a
/// standalone comment suppresses the next line that holds any token.
fn find_suppressions(lexed: &Lexed, last_line: u32) -> Vec<Suppression> {
    let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("detlint::allow(") else {
            continue;
        };
        let inner = &c.text[pos + "detlint::allow(".len()..];
        let Some(close) = inner.find(')') else {
            continue;
        };
        let inner = &inner[..close];
        let mut parts = inner.splitn(2, ',');
        let rule_txt = parts.next().unwrap_or("").trim();
        let Some(rule) = RuleId::parse(rule_txt) else {
            continue;
        };
        let reason = parts.next().map(str::trim).and_then(|r| {
            let r = r.trim_matches('"').trim();
            if r.is_empty() {
                None
            } else {
                Some(r.to_string())
            }
        });
        let target_line = if code_lines.contains(&c.line) {
            c.line
        } else {
            // first code line strictly below the comment's end
            (c.end_line + 1..=last_line)
                .find(|l| code_lines.contains(l))
                .unwrap_or(c.end_line + 1)
        };
        out.push(Suppression {
            rule,
            reason,
            line: c.line,
            target_line,
        });
    }
    out
}

/// A run of consecutive `Ident`/`::` tokens read backwards from `i`
/// matches `path` (e.g. `["Instant", "::", "now"]` forward order).
pub fn path_ends_at(tokens: &[Token], i: usize, path: &[&str]) -> bool {
    if path.is_empty() || i + 1 < path.len() {
        return false;
    }
    let start = i + 1 - path.len();
    path.iter()
        .enumerate()
        .all(|(k, want)| tokens[start + k].text == *want)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_lines_are_test_lines() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_fn_with_extra_attrs_is_covered() {
        let src = "#[test]\n#[should_panic(expected = \"x\")]\nfn boom() {\n    panic!();\n}\n";
        let f = SourceFile::parse(src);
        assert!(f.is_test_line(4));
    }

    #[test]
    fn trailing_suppression_targets_its_own_line() {
        let src = "let t = Instant::now(); // detlint::allow(R1, \"io timeout\")\n";
        let f = SourceFile::parse(src);
        let s = f.suppression_for(RuleId::R1, 1).expect("found");
        assert_eq!(s.reason.as_deref(), Some("io timeout"));
    }

    #[test]
    fn standalone_suppression_targets_next_code_line() {
        let src = "// detlint::allow(R3, \"accept loop is io, not compute\")\n// more prose\nlet h = thread::spawn(f);\n";
        let f = SourceFile::parse(src);
        let s = f.suppression_for(RuleId::R3, 3).expect("found");
        assert_eq!(s.line, 1);
        assert!(s.reason.is_some());
    }

    #[test]
    fn reasonless_suppression_parses_with_none() {
        let src = "// detlint::allow(R2)\nfor k in m.keys() {}\n";
        let f = SourceFile::parse(src);
        let s = f.suppression_for(RuleId::R2, 2).expect("found");
        assert!(s.reason.is_none());
    }
}
