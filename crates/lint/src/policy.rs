//! `detlint.toml` — the per-crate lint policy.
//!
//! Parsed with a hand-rolled reader covering exactly the subset the
//! policy needs (the offline `vendor/` rule forbids pulling a TOML crate
//! for this): top-level `exclude = [..]`, and `[crate.<name>]` sections
//! with `allow = ["R1", ...]` lists.
//!
//! ```toml
//! exclude = ["vendor", "target"]
//!
//! [crate.gridsteer_bench]
//! # benches exist to measure wall time
//! allow = ["R1", "R3"]
//! ```

use crate::rules::RuleId;
use std::collections::{BTreeMap, BTreeSet};

/// Parsed policy: path prefixes to skip and per-crate rule waivers.
#[derive(Debug, Default, Clone)]
pub struct Policy {
    /// Workspace-relative path prefixes never walked.
    pub exclude: Vec<String>,
    /// Crate name → rules waived for that crate.
    pub crate_allow: BTreeMap<String, BTreeSet<RuleId>>,
}

/// A policy-file problem worth failing the run over.
#[derive(Debug, PartialEq, Eq)]
pub struct PolicyError {
    pub line: u32,
    pub message: String,
}

impl Policy {
    /// The rules enabled for `crate_name` (all rules minus waivers).
    pub fn enabled_rules(&self, crate_name: &str) -> BTreeSet<RuleId> {
        let waived = self.crate_allow.get(crate_name);
        RuleId::ALL
            .iter()
            .copied()
            .filter(|r| waived.is_none_or(|w| !w.contains(r)))
            .collect()
    }

    /// True if the workspace-relative `path` falls under an excluded
    /// prefix.
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude
            .iter()
            .any(|e| path == e || path.starts_with(&format!("{e}/")))
    }

    /// Parse the policy text.
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        let mut p = Policy::default();
        let mut section: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest.trim_end_matches(']').trim();
                let Some(cr) = name.strip_prefix("crate.") else {
                    return Err(PolicyError {
                        line: lineno,
                        message: format!("unknown section [{name}] (want [crate.<name>])"),
                    });
                };
                section = Some(cr.to_string());
                p.crate_allow.entry(cr.to_string()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(PolicyError {
                    line: lineno,
                    message: format!("expected `key = [..]`, got `{line}`"),
                });
            };
            let key = key.trim();
            let items = parse_string_list(value.trim()).ok_or_else(|| PolicyError {
                line: lineno,
                message: format!("expected a [\"..\"] list for `{key}`"),
            })?;
            match (key, &section) {
                ("exclude", None) => p.exclude = items,
                ("allow", Some(cr)) => {
                    let set = p.crate_allow.entry(cr.clone()).or_default();
                    for it in items {
                        let rule = RuleId::parse(&it).ok_or_else(|| PolicyError {
                            line: lineno,
                            message: format!("unknown rule id `{it}`"),
                        })?;
                        set.insert(rule);
                    }
                }
                _ => {
                    return Err(PolicyError {
                        line: lineno,
                        message: format!("unexpected key `{key}` here"),
                    })
                }
            }
        }
        Ok(p)
    }
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string_list(v: &str) -> Option<Vec<String>> {
    let inner = v.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(part.strip_prefix('"')?.strip_suffix('"')?.to_string());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_exclude_and_crate_sections() {
        let p = Policy::parse(
            "# policy\nexclude = [\"vendor\", \"target\"]\n\n[crate.bench]\nallow = [\"R1\", \"R3\"]\n",
        )
        .unwrap();
        assert!(p.is_excluded("vendor/rand/src/lib.rs"));
        assert!(!p.is_excluded("crates/lbm/src/sim.rs"));
        let bench = p.enabled_rules("bench");
        assert!(!bench.contains(&RuleId::R1));
        assert!(!bench.contains(&RuleId::R3));
        assert!(bench.contains(&RuleId::R2));
        assert_eq!(p.enabled_rules("lbm").len(), RuleId::ALL.len());
    }

    #[test]
    fn unknown_rule_id_is_an_error() {
        let e = Policy::parse("[crate.x]\nallow = [\"R9\"]\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn bad_section_is_an_error() {
        assert!(Policy::parse("[lints]\n").is_err());
    }
}
