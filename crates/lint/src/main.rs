//! `detlint` — the determinism-lint CLI. Exit status is the CI gate:
//! 0 when the tree is clean, 1 when any finding (or a policy/IO error)
//! survives.

use gridsteer_lint::rules::RuleId;
use gridsteer_lint::{lint_tree, lint_workspace, Policy};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut workspace = PathBuf::from(".");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--workspace" => match args.next() {
                Some(d) => workspace = PathBuf::from(d),
                None => return usage("--workspace needs a directory"),
            },
            "--help" | "-h" => {
                println!(
                    "detlint: workspace determinism lint\n\n\
                     USAGE:\n  detlint [--workspace DIR]   lint the workspace under DIR \
                     (default .) with its detlint.toml\n  detlint --root DIR          \
                     lint every .rs under DIR with all rules (fixture mode)"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let findings = if let Some(dir) = root {
        // Fixture mode: every rule, no policy, paths relative to DIR.
        let rules = RuleId::ALL.iter().copied().collect();
        let mut out = Vec::new();
        match lint_tree(&dir, &dir, &rules, &mut out) {
            Ok(()) => out,
            Err(e) => return fail(&format!("detlint: {e}")),
        }
    } else {
        let policy_path = workspace.join("detlint.toml");
        let policy = if policy_path.is_file() {
            let text = match std::fs::read_to_string(&policy_path) {
                Ok(t) => t,
                Err(e) => return fail(&format!("detlint: read {}: {e}", policy_path.display())),
            };
            match Policy::parse(&text) {
                Ok(p) => p,
                Err(e) => {
                    return fail(&format!(
                        "detlint: {}:{}: {}",
                        policy_path.display(),
                        e.line,
                        e.message
                    ))
                }
            }
        } else {
            Policy::default()
        };
        match lint_workspace(&workspace, &policy) {
            Ok(f) => f,
            Err(e) => return fail(&format!("detlint: {e}")),
        }
    };

    for f in &findings {
        println!("{}", f.render());
    }
    if findings.is_empty() {
        println!("detlint: clean");
        ExitCode::SUCCESS
    } else {
        println!("detlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    fail(&format!("detlint: {msg} (--help for usage)"))
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}
