//! A hand-rolled Rust lexer — just enough fidelity for determinism
//! linting: identifiers, punctuation, literals, and lifetimes become
//! tokens; comments are captured on the side (they carry suppression
//! directives and justification evidence for R6). No registry deps, no
//! proc macros — the lexer must work on any `.rs` file in the tree
//! including ones that do not compile.

/// What a token is, coarsely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `unsafe`, ...).
    Ident,
    /// Single punctuation character (`:`, `.`, `(`, `#`, ...).
    Punct,
    /// String / char / byte / numeric literal (content not interpreted).
    Literal,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment with the 1-indexed line it *starts* on and, for block
/// comments, the line it ends on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub end_line: u32,
}

/// Lexer output: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True if any comment covers `line` (start..=end for blocks).
    pub fn comment_on_line(&self, line: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.line <= line && line <= c.end_line)
    }
}

/// Tokenize `src`. Never fails: unrecognized bytes become punctuation.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            // Line comment (also doc comments `///`, `//!`).
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    end_line: line,
                });
            }
            // Block comment, nesting honoured.
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line: start_line,
                    end_line: line,
                });
            }
            // Raw strings: r"...", r#"..."#, br#"..."# (any # count).
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let (ni, nl) = skip_raw_string(b, i, line);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::from("\"raw\""),
                    line,
                });
                i = ni;
                line = nl;
            }
            // Plain and byte strings.
            b'"' => {
                let (ni, nl) = skip_string(b, i, line);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::from("\"str\""),
                    line,
                });
                i = ni;
                line = nl;
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                let (ni, nl) = skip_string(b, i + 1, line);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::from("\"bstr\""),
                    line,
                });
                i = ni;
                line = nl;
            }
            // Lifetime or char literal. `'a` / `'static` vs `'x'` / `'\n'`.
            b'\'' => {
                if is_char_literal(b, i) {
                    i = skip_char_literal(b, i);
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: String::from("'c'"),
                        line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // `1..10` range: stop before a second consecutive dot
                    if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r" r#" br" br#"
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

fn skip_raw_string(b: &[u8], mut i: usize, mut line: u32) -> (usize, u32) {
    if b[i] == b'b' {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return (i + 1 + hashes, line);
            }
        }
        i += 1;
    }
    (i, line)
}

fn skip_string(b: &[u8], mut i: usize, mut line: u32) -> (usize, u32) {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, line),
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, line)
}

/// Distinguish `'x'`/`'\n'` (char literal) from `'a` (lifetime): a char
/// literal closes with `'` within a couple of chars; a lifetime never
/// has a closing quote.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => b.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

fn skip_char_literal(b: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    if b.get(i) == Some(&b'\\') {
        i += 2;
        // \u{...}
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return i + 1;
    }
    i += 1;
    if b.get(i) == Some(&b'\'') {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_paths_tokenize_with_lines() {
        let l = lex("let x = Instant::now();\nlet y = 2;");
        let idents: Vec<(&str, u32)> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(
            idents,
            vec![
                ("let", 1),
                ("x", 1),
                ("Instant", 1),
                ("now", 1),
                ("let", 2),
                ("y", 2)
            ]
        );
    }

    #[test]
    fn string_contents_do_not_leak_identifiers() {
        let l = lex("let s = \"Instant::now() HashMap\";\nlet r = r##\"thread_rng\"##;");
        assert!(l.tokens.iter().all(|t| t.kind != TokKind::Ident
            || (t.text != "Instant" && t.text != "HashMap" && t.text != "thread_rng")));
    }

    #[test]
    fn comments_are_side_channel_not_tokens() {
        let l = lex("// detlint::allow(R1, \"x\")\nlet a = 1; /* block\nspans */ let b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.comments[1].end_line, 3);
        assert!(l.comment_on_line(3));
        assert!(!l.comment_on_line(4));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text == "'c'")
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let l = lex("/* a /* b */ c */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Ident).count(),
            2
        );
    }
}
