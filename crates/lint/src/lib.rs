//! `gridsteer_lint` — the workspace determinism lint (`detlint`).
//!
//! Every subsystem in this tree rests on one contract: **byte-stable
//! digests at any thread count** — seeded RNG, virtual clock, ordered
//! reductions, attach-order fan-out. The dynamic `EXEC_THREADS` 1-vs-8 CI
//! matrix checks that contract probabilistically; this crate checks it
//! *statically*, so a stray `Instant::now()` or hash-order iteration is a
//! review-time error instead of a soak-time heisenbug.
//!
//! The pass is fully self-contained (hand-rolled lexer, no registry
//! deps) and ships as both a library (rule engine over fixture corpora,
//! see `tests/`) and the `detlint` binary wired into CI:
//!
//! ```text
//! cargo run -p gridsteer_lint            # lint the workspace, exit 1 on findings
//! cargo run -p gridsteer_lint -- --root DIR   # lint a bare tree (fixtures)
//! ```
//!
//! Rules (see [`rules::RuleId`]): R1 wall clocks, R2 hash-order
//! iteration, R3 raw threads, R4 unseeded RNG, R5 unordered parallel
//! reduction, R6 unjustified `#[allow]`/`unsafe`, R7 float reassociation
//! (fast-math intrinsics, lane-width-dependent horizontal reductions).
//! Per-crate waivers live
//! in `detlint.toml`; individual sites can carry
//! `// detlint::allow(Rn, "reason")` — the reason string is mandatory.

pub mod engine;
pub mod lexer;
pub mod policy;
pub mod rules;
pub mod source;

pub use engine::{discover_crates, lint_tree, lint_workspace, EngineError, FileFinding};
pub use policy::{Policy, PolicyError};
pub use rules::{lint_source, Finding, RuleId};
