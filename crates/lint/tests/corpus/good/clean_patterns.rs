//! Known-good fixture: the deterministic idioms the lint must accept.

use std::collections::BTreeMap;

pub fn ordered_total(m: &BTreeMap<String, u32>) -> u32 {
    m.values().sum()
}

pub fn seeded_stream(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.next_u64()
}

pub fn lookup_only(table: &std::collections::HashMap<String, u32>, k: &str) -> Option<u32> {
    table.get(k).copied()
}

pub fn ordered_parallel(pool: &ExecPool, v: &[f64]) -> f64 {
    let partials = pool.map(v.len(), |i| v[i] * v[i]);
    partials.iter().sum()
}
