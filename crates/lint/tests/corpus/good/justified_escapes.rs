//! Known-good fixture: escape hatches carrying their justifications.

pub fn socket_deadline_ms() -> u128 {
    // detlint::allow(R1, "socket deadline: the timeout bound is real time")
    let t = std::time::Instant::now();
    t.elapsed().as_millis()
}

// SAFETY: caller guarantees `p` points at a live, aligned u32.
pub unsafe fn read_raw(p: *const u32) -> u32 {
    *p
}

pub fn drain_count(m: &mut std::collections::HashMap<u32, u8>) -> usize {
    m.drain().count() // detlint::allow(R2, "count is order-free")
}

// wire-format padding: kept so struct layout matches the protocol, never read
#[allow(dead_code)]
pub struct Reserved(u8);

pub fn lane_total(v: F64x4) -> f64 {
    // detlint::allow(R7, "hsum is a fixed pairwise tree, identical at every width")
    v.hsum()
}

pub fn ordered_total(v: F64x4) -> f64 {
    // the R7-clean shape: extract lanes and fold them in index order
    let lanes = v.to_array();
    lanes.iter().fold(0.0, |acc, &x| acc + x)
}
