//! Known-good fixture: test-only code is exempt from every rule.

pub fn answer() -> u32 {
    42
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_and_threads_are_fine_in_tests() {
        let t = std::time::Instant::now();
        let h = std::thread::spawn(answer);
        let mut rng = rand::thread_rng();
        let _ = (t, h, rng.gen::<u8>());
    }
}
