//! Known-bad fixture: wall-clock reads on potential digest paths (R1).

pub fn elapsed_ms(start: std::time::Instant) -> u128 {
    let stop = std::time::Instant::now();
    stop.duration_since(start).as_millis()
}

pub fn stamp() -> u64 {
    let wall = std::time::SystemTime::now();
    wall.elapsed().unwrap().as_secs()
}
