//! Known-bad fixture: entropy-seeded RNG sources (R4).

pub fn roll() -> u8 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn fresh_stream() -> u64 {
    let mut rng = StdRng::from_entropy();
    let lucky = OsRng.next_u64();
    rng.next_u64() ^ lucky
}
