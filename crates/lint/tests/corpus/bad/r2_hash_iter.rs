//! Known-bad fixture: iteration over hash-ordered collections (R2).

use std::collections::{HashMap, HashSet};

pub struct Scores {
    by_name: HashMap<String, u32>,
}

impl Scores {
    pub fn total(&self) -> u32 {
        self.by_name.values().sum()
    }

    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = self.by_name.keys().cloned().collect();
        out.sort();
        out
    }

    pub fn tag_bytes() -> Vec<u8> {
        let tags: HashSet<u8> = HashSet::new();
        let mut v = Vec::new();
        for t in &tags {
            v.push(*t);
        }
        v
    }
}
