//! Known-bad fixture: completion-order float accumulation (R5).

pub fn kinetic_energy(pool: &ExecPool, v: &mut [f64]) -> f64 {
    let total = std::sync::Mutex::new(0.0f64);
    pool.parallel_chunks(v, 64, |_, chunk| {
        let partial: f64 = chunk.iter().map(|x| x * x).sum();
        *total.lock().unwrap() += partial;
    });
    total.into_inner().unwrap()
}
