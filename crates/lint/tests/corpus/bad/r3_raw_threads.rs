//! Known-bad fixture: ad-hoc threading outside the executor (R3).

pub fn fan_out(work: Vec<u64>) -> u64 {
    let handle = std::thread::spawn(move || work.iter().sum::<u64>());
    handle.join().unwrap_or(0)
}

pub fn channel_pair() {
    let (tx, rx) = crossbeam::channel::unbounded::<u8>();
    drop((tx, rx));
}
