//! Known-bad fixture: float reassociation hazards (R7) — fast-math
//! intrinsics and lane-width-dependent horizontal reductions.

pub fn fast_dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        // SAFETY: finite inputs by construction
        acc = unsafe { std::intrinsics::fadd_fast(acc, x * y) };
    }
    acc
}

pub fn lattice_mass(rows: &[F64x4]) -> f64 {
    let mut v = F64x4::splat(0.0);
    for r in rows {
        v = v.add(*r);
    }
    v.hsum()
}

pub fn frame_peak(px: &[F32x8]) -> f32 {
    px.iter().fold(F32x8::splat(0.0), |m, &p| m.max(p)).reduce_max()
}
