//! Known-bad fixture: suppression without a reason string (R0).

pub struct Wall;

pub fn deadline_ms() -> u128 {
    // detlint::allow(R1)
    let t = std::time::Instant::now();
    t.elapsed().as_millis()
}
