//! Known-bad fixture: escape hatches without stated reasons (R6).

pub struct Slot(pub u32);

#[allow(dead_code)]
fn never_called() {}

pub fn read_raw(p: *const u32) -> u32 {
    unsafe { *p }
}
