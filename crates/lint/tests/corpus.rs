//! Corpus and workspace meta-tests for the determinism lint.
//!
//! * every `tests/corpus/bad/*.rs` fixture must report exactly the
//!   `rule:line` pairs in its paired `.expect` file;
//! * every `tests/corpus/good/*.rs` fixture must lint clean;
//! * the real workspace (under its `detlint.toml` policy) must lint clean;
//! * the `detlint` binary must exit nonzero on the bad corpus and zero on
//!   the workspace — the exact invocations the CI gate runs.

use gridsteer_lint::rules::RuleId;
use gridsteer_lint::{lint_source, lint_workspace, Policy};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn all_rules() -> BTreeSet<RuleId> {
    RuleId::ALL.iter().copied().collect()
}

fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    out.sort();
    out
}

/// Parse an `.expect` file: one `RULE:LINE` per line, `#` comments allowed.
fn parse_expect(text: &str) -> Vec<(String, u32)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (rule, line) = l.split_once(':').expect("expect line is RULE:LINE");
            (
                rule.trim().to_string(),
                line.trim().parse().expect("line number"),
            )
        })
        .collect()
}

#[test]
fn bad_fixtures_report_exactly_the_expected_findings() {
    let fixtures = rs_files(&corpus_dir().join("bad"));
    // one per rule R1..R6 plus the reasonless-allow meta rule
    assert!(fixtures.len() >= 7, "bad corpus is missing fixtures");
    for rs in fixtures {
        let expect_path = rs.with_extension("expect");
        let src = std::fs::read_to_string(&rs).unwrap();
        let want = parse_expect(
            &std::fs::read_to_string(&expect_path)
                .unwrap_or_else(|e| panic!("missing {}: {e}", expect_path.display())),
        );
        assert!(
            !want.is_empty(),
            "bad fixture {} expects no findings",
            rs.display()
        );
        let got: Vec<(String, u32)> = lint_source(&src, &all_rules())
            .into_iter()
            .map(|f| (f.rule.to_string(), f.line))
            .collect();
        assert_eq!(got, want, "findings mismatch for {}", rs.display());
    }
}

#[test]
fn good_fixtures_lint_clean() {
    let fixtures = rs_files(&corpus_dir().join("good"));
    assert!(fixtures.len() >= 3, "good corpus is missing fixtures");
    for rs in fixtures {
        let src = std::fs::read_to_string(&rs).unwrap();
        let findings: Vec<String> = lint_source(&src, &all_rules())
            .into_iter()
            .map(|f| format!("{}:{}: [{}] {}", rs.display(), f.line, f.rule, f.message))
            .collect();
        assert!(
            findings.is_empty(),
            "good fixture is dirty:\n{}",
            findings.join("\n")
        );
    }
}

/// The meta-test the ISSUE asks for: the real tree, linted under its real
/// policy, stays clean — so `cargo test` fails the moment a hazard lands,
/// even before CI runs the binary.
#[test]
fn workspace_lints_clean() {
    let root = repo_root();
    let policy_text =
        std::fs::read_to_string(root.join("detlint.toml")).expect("detlint.toml at repo root");
    let policy = Policy::parse(&policy_text).expect("valid policy");
    let findings = lint_workspace(&root, &policy).expect("workspace walk");
    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "workspace determinism lint is dirty:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn detlint_binary_gates_bad_corpus_and_passes_workspace() {
    let bin = env!("CARGO_BIN_EXE_detlint");

    let bad = std::process::Command::new(bin)
        .arg("--root")
        .arg(corpus_dir().join("bad"))
        .output()
        .expect("run detlint --root");
    assert!(
        !bad.status.success(),
        "detlint must exit nonzero on the known-bad corpus"
    );
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("finding(s)"), "summary missing:\n{stdout}");

    let ws = std::process::Command::new(bin)
        .arg("--workspace")
        .arg(repo_root())
        .output()
        .expect("run detlint --workspace");
    assert!(
        ws.status.success(),
        "workspace must lint clean:\n{}",
        String::from_utf8_lossy(&ws.stdout)
    );
}
