//! # gridsteer — Application Steering in a Collaborative Environment
//!
//! Umbrella crate for the SC2003 reproduction: re-exports every subsystem
//! so examples and downstream users can depend on one crate.
//!
//! Start with [`steer_core`] for the collaborative steering sessions, or
//! see the runnable examples:
//!
//! * `examples/quickstart.rs` — one simulation, one steering server, two
//!   clients, live miscibility steering over TCP.
//! * `examples/lbm_steering.rs` — the full RealityGrid Figure-1 pipeline:
//!   compute site → isosurface site → thin client, with a steering moment.
//! * `examples/pepc_collab.rs` — PEPC steered through VISIT with a vbroker
//!   fan-out to collaborative viewers.
//! * `examples/building_airflow.rs` — the HLRS demo (§4.7): a COVISE
//!   module network over a building-climate field, param-synced across
//!   sites.
//!
//! ## Workspace
//!
//! Each subsystem is its own crate under `crates/` (the `core` directory
//! holds the package named `steer_core`); external dependencies are
//! vendored API-compatible shims under `vendor/` so the workspace builds
//! offline. See `README.md` for the full layout and the Figure-1 pipeline
//! mapping. Tier-1 verification is:
//!
//! ```text
//! cargo build --release && cargo test -q
//! ```

pub use accessgrid;
pub use covise;
pub use gridsteer_bus as bus;
pub use gridsteer_ckpt as ckpt;
pub use gridsteer_harness as harness;
pub use lbm;
pub use netsim;
pub use ogsa;
pub use pepc;
pub use steer_core;
pub use unicore;
pub use visit;
pub use viz;
